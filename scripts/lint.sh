#!/usr/bin/env bash
# Static checks for the repository, run by CI's lint job and locally before
# sending a change:
#
#   1. go vet          — the stock toolchain checks;
#   2. dsmvet          — the repo's determinism/invariant analyzers
#                        (cmd/dsmvet; see DESIGN.md "Machine-checked
#                        invariants"); -json writes dsmvet_report.json with
#                        the per-protocol domain-safety reports, which CI
#                        uploads as an artifact so the escape inventory is
#                        diffable per PR;
#   3. gofmt           — formatting for tracked Go files, including testdata
#                        fixtures (git ls-files, so untracked scratch
#                        directories like .seedtree/ never fail lint).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== dsmvet =="
go run ./cmd/dsmvet -json ./... > dsmvet_report.json

echo "== gofmt =="
unformatted=$(git ls-files -- '*.go' | xargs -r gofmt -l)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "lint OK"
