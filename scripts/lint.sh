#!/usr/bin/env bash
# Static checks for the repository, run by CI's lint job and locally before
# sending a change:
#
#   1. go vet          — the stock toolchain checks;
#   2. dsmvet          — the repo's determinism/invariant analyzers
#                        (cmd/dsmvet; see DESIGN.md "Machine-checked
#                        invariants");
#   3. gofmt           — formatting, including testdata fixtures.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== dsmvet =="
go run ./cmd/dsmvet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "lint OK"
