#!/usr/bin/env bash
# Schedule-space exploration smoke, run by CI's dsmcheck job next to lint.sh:
#
#   1. the dsmcheck sweep — the memory-model litmus suite (MP/SB/LB/IRIW,
#      with and without acquire/release sync) and the fuzz-corpus
#      differential checker, both polling protocols, fixed seeds so the run
#      is reproducible;
#   2. the self-test — arms the injected TreadMarks diff-loss bug
#      (treadmarks.Config.TestDropDiffRuns) and verifies the harness catches
#      it and shrinks the failure to <= 2 rounds on <= 2 processors.
#
# On a sweep failure the minimized repro lands in dsmcheck_repro.json (CI
# uploads it as an artifact); replay it with `dsmcheck -replay`.
set -euo pipefail
cd "$(dirname "$0")/.."

schedules=${DSMCHECK_SCHEDULES:-200}
diff_schedules=${DSMCHECK_DIFF_SCHEDULES:-25}
seed=${DSMCHECK_SEED:-1}
repro=${DSMCHECK_REPRO:-dsmcheck_repro.json}

go build -o /tmp/dsmcheck.checksh ./cmd/dsmcheck

echo "== dsmcheck sweep (schedules $schedules, diff $diff_schedules, seed $seed) =="
/tmp/dsmcheck.checksh -schedules "$schedules" -diff-schedules "$diff_schedules" \
    -seed "$seed" -repro "$repro"

echo "== dsmcheck selftest (injected diff-loss bug) =="
/tmp/dsmcheck.checksh -selftest -diff-schedules "$diff_schedules" \
    -repro /tmp/dsmcheck_selftest_repro.json

echo "check OK"
