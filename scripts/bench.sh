#!/usr/bin/env bash
# Regenerates BENCH_hotpath.json: runs the tracked hot-path microbenchmarks
# and times the full small sweep, then rewrites the JSON file at the repo
# root. The sweep's "before" number defaults to the previous recording's
# "after" (so each regeneration shifts the window forward); override it with
# BEFORE_SECONDS=<sec> when measuring a specific older commit on the same
# machine. BENCHTIME overrides the per-benchmark time (default 1s).
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_hotpath.json
benchtime=${BENCHTIME:-1s}

# run_bench <pkg> <regex>: emits "pkg<TAB>name<TAB>ns_per_op" per benchmark.
run_bench() {
    go test -run '^$' -bench "$2" -benchtime "$benchtime" "./$1/" |
        awk -v pkg="$1" '/^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            printf "%s\t%s\t%s\n", pkg, name, $3
        }'
}

echo "bench.sh: running microbenchmarks (benchtime $benchtime)" >&2
bench_lines=$(
    run_bench internal/sim 'Yield|DeliverRecv|ParallelSweep'
    run_bench internal/core 'SharedAccess|SharedReadRange'
    run_bench internal/apps/sor 'SORSmallSequential'
)

before=${BEFORE_SECONDS:-$(awk -F'[:,]' '/"after_seconds"/ {gsub(/[ \t]/,"",$2); print $2}' "$out" 2>/dev/null || true)}
before=${before:-0}

echo "bench.sh: timing the full small sweep (-jobs 1)" >&2
go build -o /tmp/dsmbench.benchsh ./cmd/dsmbench
# -strict makes any failed sweep cell exit nonzero, which aborts this script
# (set -e) before it can overwrite $out with partial numbers.
start_ns=$(date +%s%N)
/tmp/dsmbench.benchsh -all -size small -jobs 1 -progress=false -strict >/dev/null
end_ns=$(date +%s%N)
after=$(awk -v s="$start_ns" -v e="$end_ns" 'BEGIN {printf "%.1f", (e - s) / 1e9}')

echo "bench.sh: timing the interconnect sweep (-netsweep, -jobs 1)" >&2
ns_start_ns=$(date +%s%N)
/tmp/dsmbench.benchsh -netsweep -size small -jobs 1 -progress=false -strict >/dev/null
ns_end_ns=$(date +%s%N)
netsweep_after=$(awk -v s="$ns_start_ns" -v e="$ns_end_ns" 'BEGIN {printf "%.1f", (e - s) / 1e9}')

cpu=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
cpu=${cpu:-unknown}

{
    printf '{\n'
    printf '  "schema": "dsmbench-hotpath-bench/v3",\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
    printf '  "goos": "%s",\n' "$(go env GOOS)"
    printf '  "goarch": "%s",\n' "$(go env GOARCH)"
    printf '  "cpu": "%s",\n' "$cpu"
    printf '  "note": "Tracked hot-path numbers; regenerate with scripts/bench.sh. BenchmarkYield ping-pongs two processors (direct handoff); BenchmarkYieldSlowPath is the same workload with fast paths disabled; BenchmarkYieldElided is a lone processor whose yields all elide. BenchmarkSharedReadRange covers 1024 elements per op, so its ns_per_element field (ns_per_op/1024) is the number comparable to element-at-a-time BenchmarkSharedAccess. BenchmarkParallelSweep runs one cross-node messaging workload on the sequential and the node-parallel engine. The sweep section times dsmbench -all -size small -jobs 1; before is the previous recording (or BEFORE_SECONDS). The netsweep section times the interconnect x node-count sweep (dsmbench -netsweep); both sweeps run under -strict so a failed cell aborts the script instead of recording partial numbers.",\n'
    printf '  "benchmarks": [\n'
    first=1
    while IFS=$'\t' read -r pkg name ns; do
        [ -n "$pkg" ] || continue
        [ $first -eq 1 ] || printf ',\n'
        first=0
        extra=""
        if [ "$name" = "BenchmarkSharedReadRange" ]; then
            extra=$(awk -v n="$ns" 'BEGIN {printf ", \"elements_per_op\": 1024, \"ns_per_element\": %.3f", n / 1024}')
        fi
        printf '    {"pkg": "%s", "name": "%s", "ns_per_op": %s%s}' "$pkg" "$name" "$ns" "$extra"
    done <<<"$bench_lines"
    printf '\n  ],\n'
    printf '  "sweep": {\n'
    printf '    "command": "dsmbench -all -size small -jobs 1 -strict",\n'
    printf '    "before_seconds": %s,\n' "$before"
    printf '    "after_seconds": %s,\n' "$after"
    awk -v b="$before" -v a="$after" 'BEGIN {
        pct = (b > 0) ? (b - a) / b * 100 : 0
        printf "    \"improvement_percent\": %.1f\n", pct
    }'
    printf '  },\n'
    printf '  "netsweep": {\n'
    printf '    "command": "dsmbench -netsweep -size small -jobs 1 -strict",\n'
    printf '    "interconnects": ["memchan", "rdma", "switched"],\n'
    printf '    "nodes": [8, 16, 32, 64],\n'
    printf '    "seconds": %s\n' "$netsweep_after"
    printf '  }\n'
    printf '}\n'
} >"$out"

echo "bench.sh: wrote $out (sweep ${before}s -> ${after}s)" >&2
