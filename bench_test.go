// Package repro's top-level benchmarks regenerate the paper's tables and
// figures through testing.B, one benchmark per experiment:
//
//	go test -bench=. -benchmem                 # everything at small scale
//	go test -bench=BenchmarkFig5/SOR -benchsize=default
//
// Each benchmark reports the simulated execution time of the measured
// configuration as "sim-ms/op" in addition to the host-side wall costs that
// -benchmem reports. The dataset scale defaults to "small" so the whole
// suite completes quickly; pass -benchsize=default for the paper-shaped
// datasets (the cmd/dsmbench tool is the full-fidelity harness).
package repro

import (
	"flag"
	"fmt"
	"io"
	"testing"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/variants"
)

var benchSize = flag.String("benchsize", "small", "dataset size for benchmarks: small or default")

func size() apps.Size { return apps.Size(*benchSize) }

// runOnce executes one app/variant/procs configuration and reports the
// simulated time.
func runOnce(b *testing.B, app, variant string, procs int) {
	b.Helper()
	entry, err := apps.Get(app)
	if err != nil {
		b.Fatal(err)
	}
	nodes, ppn := 1, 1
	if variant != variants.Sequential {
		l, err := variants.LayoutFor(procs)
		if err != nil {
			b.Fatal(err)
		}
		if !variants.Feasible(variant, l) {
			b.Skipf("%s infeasible at %d procs", variant, procs)
		}
		nodes, ppn = l.Nodes, l.PerNode
	}
	cfg, err := variants.Config(variant, nodes, ppn, variants.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var simMS float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg, entry.New(size()))
		if err != nil {
			b.Fatal(err)
		}
		simMS = float64(res.Time) / 1e6
	}
	b.ReportMetric(simMS, "sim-ms/op")
}

// BenchmarkTable1 regenerates the basic-operation cost table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard, variants.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 runs the sequential baseline of every application (the
// denominator of every speedup in Figure 5).
func BenchmarkTable2(b *testing.B) {
	for _, app := range apps.Names() {
		b.Run(app, func(b *testing.B) { runOnce(b, app, variants.Sequential, 1) })
	}
}

// BenchmarkFig5 regenerates the speedup grid: application x variant x procs.
func BenchmarkFig5(b *testing.B) {
	for _, app := range apps.Names() {
		for _, v := range variants.Names {
			for _, procs := range []int{2, 8, 32} {
				b.Run(fmt.Sprintf("%s/%s/p%d", app, v, procs), func(b *testing.B) {
					runOnce(b, app, v, procs)
				})
			}
		}
	}
}

// BenchmarkFig6 runs the two polling variants at the paper's breakdown
// configuration for every application.
func BenchmarkFig6(b *testing.B) {
	for _, app := range apps.Names() {
		procs := 32
		if app == "Barnes" {
			procs = 16
		}
		for _, v := range []string{"csm_poll", "tmk_mc_poll"} {
			b.Run(fmt.Sprintf("%s/%s", app, v), func(b *testing.B) {
				runOnce(b, app, v, procs)
			})
		}
	}
}

// BenchmarkTable3 mirrors Fig6's configurations (Table 3 reports statistics
// from the same runs).
func BenchmarkTable3(b *testing.B) {
	for _, app := range apps.Names() {
		procs := 32
		if app == "Barnes" {
			procs = 16
		}
		b.Run(fmt.Sprintf("%s/csm_poll", app), func(b *testing.B) { runOnce(b, app, "csm_poll", procs) })
		b.Run(fmt.Sprintf("%s/tmk_mc_poll", app), func(b *testing.B) { runOnce(b, app, "tmk_mc_poll", procs) })
	}
}

// BenchmarkAblation regenerates the design-choice ablations.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablations(io.Discard, bench.Options{Size: size()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanExecute measures the runner executing one application's
// Figure 5 plan end to end at different host-parallelism levels. The cache
// is reset each iteration so every run is a real simulation; the ratio of
// jobs1 to jobsN wall time is the harness's host-level speedup.
func BenchmarkPlanExecute(b *testing.B) {
	opts := bench.Options{Size: size(), Apps: []string{"SOR"}, Procs: []int{1, 2, 4, 8}}
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runner.ResetCache()
				plan := runner.NewPlan()
				plan.Add(bench.Fig5Specs(opts)...)
				if _, err := runner.Execute(plan, runner.Options{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCached measures serving a fully cached plan (the steady
// state when several tables share one sweep).
func BenchmarkPlanCached(b *testing.B) {
	opts := bench.Options{Size: size(), Apps: []string{"SOR"}, Procs: []int{1, 2, 4, 8}}
	plan := runner.NewPlan()
	plan.Add(bench.Fig5Specs(opts)...)
	if _, err := runner.Execute(plan, runner.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Execute(plan, runner.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
