package main

import (
	"os/exec"
	"testing"
)

// TestDsmvetCleanOnRepo runs the checker over the whole repository exactly
// the way CI's lint job does — `go run ./cmd/dsmvet ./...` from the module
// root — and requires a zero exit status with no output.
func TestDsmvetCleanOnRepo(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	cmd := exec.Command(goBin, "run", "./cmd/dsmvet", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dsmvet failed (%v); output:\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("dsmvet exited 0 but produced output:\n%s", out)
	}
}
