package main

import (
	"encoding/json"
	"os/exec"
	"testing"
)

// TestDsmvetCleanOnRepo runs the checker over the whole repository exactly
// the way CI's lint job does — `go run ./cmd/dsmvet ./...` from the module
// root — and requires a zero exit status with no output.
func TestDsmvetCleanOnRepo(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	cmd := exec.Command(goBin, "run", "./cmd/dsmvet", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dsmvet failed (%v); output:\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("dsmvet exited 0 but produced output:\n%s", out)
	}
}

// TestDsmvetJSONReport checks the -json output shape CI archives: schema 1,
// a diagnostics array, and the per-protocol domain-safety reports.
func TestDsmvetJSONReport(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	cmd := exec.Command(goBin, "run", "./cmd/dsmvet", "-json", "./internal/core", "./internal/cashmere")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("dsmvet -json failed (%v); output:\n%s", err, out)
	}
	var rep jsonReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("unmarshaling -json output: %v\n%s", err, out)
	}
	if rep.Schema != 1 {
		t.Errorf("schema = %d, want 1", rep.Schema)
	}
	if rep.Diagnostics == nil {
		t.Errorf("diagnostics field missing (want empty array, not null)")
	}
	types := map[string]int{}
	for _, pr := range rep.DomainSafety {
		types[pr.Package+"."+pr.Type] = len(pr.Escaping)
	}
	if n, ok := types["repro/internal/core.NullProtocol"]; !ok || n != 0 {
		t.Errorf("NullProtocol report missing or non-empty escaping (%v)", types)
	}
	if n, ok := types["repro/internal/cashmere.Protocol"]; !ok || n == 0 {
		t.Errorf("cashmere Protocol report missing or empty escaping (%v)", types)
	}
}
