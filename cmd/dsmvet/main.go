// Command dsmvet runs the dsmvet static-analysis suite — the machine checks
// behind the simulator's determinism and virtual-time invariants (DESIGN.md
// "Machine-checked invariants") — over packages of this module.
//
// Usage:
//
//	go run ./cmd/dsmvet [flags] [packages]
//
// Packages default to ./... (the whole module). Each analyzer can be
// disabled individually, e.g. -maporder=false. Exit status: 0 clean, 1 when
// any diagnostic is reported, 2 on a loading or internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	all := analysis.Analyzers()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dsmvet [flags] [packages]\n\nAnalyzers (all on by default):\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var run []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}

	loader, err := analysis.NewModuleLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
