// Command dsmvet runs the dsmvet static-analysis suite — the machine checks
// behind the simulator's determinism and virtual-time invariants (DESIGN.md
// "Machine-checked invariants") — over packages of this module.
//
// Usage:
//
//	go run ./cmd/dsmvet [flags] [packages]
//
// Packages default to ./... (the whole module). Each analyzer can be
// disabled individually, e.g. -maporder=false. Exit status: 0 clean, 1 when
// any diagnostic is reported, 2 on a loading or internal error.
//
// With -json, stdout carries a machine-readable report — the diagnostics
// plus the per-protocol domain-safety reports the domainescape analyzer
// builds (the escape inventory behind each DomainSafe() declaration) — and
// the human-readable diagnostics go to stderr. CI uploads this report as an
// artifact so the escape inventory is diffable per PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

// jsonReport is the -json output schema.
type jsonReport struct {
	Schema       int                       `json:"schema"`
	Diagnostics  []jsonDiag                `json:"diagnostics"`
	DomainSafety []analysis.ProtocolReport `json:"domainSafety"`
}

type jsonDiag struct {
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	all := analysis.Analyzers()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	jsonOut := flag.Bool("json", false, "emit diagnostics and the domain-safety report as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dsmvet [flags] [packages]\n\nAnalyzers (all on by default):\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var run []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}

	loader, err := analysis.NewModuleLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmvet:", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := jsonReport{Schema: 1, Diagnostics: []jsonDiag{}}
		for _, d := range diags {
			out.Diagnostics = append(out.Diagnostics, jsonDiag{
				Pos:      d.Pos.String(),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			fmt.Fprintln(os.Stderr, d)
		}
		if *enabled[analysis.DomainEscape.Name] {
			reports, err := analysis.DomainEscapeReports(pkgs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dsmvet:", err)
				os.Exit(2)
			}
			out.DomainSafety = reports
		}
		if out.DomainSafety == nil {
			out.DomainSafety = []analysis.ProtocolReport{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dsmvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
