// Command dsmbench regenerates the paper's evaluation section: every table
// and figure, plus the ablations DESIGN.md calls out.
//
// Planning is decoupled from rendering: the selected sections contribute
// their runs to one combined plan, the plan executes on a bounded pool of
// host workers (-jobs, default all cores) with identical configurations
// simulated exactly once, and the sections then render from the shared
// result set — so e.g. the sequential baseline behind Table 2, Figure 5,
// and the ablations runs a single time. Every simulation is deterministic
// in virtual time, so the text output is byte-identical at any -jobs value.
//
// Usage:
//
//	dsmbench -all                # everything (takes a while at default size)
//	dsmbench -all -jobs 8 -json  # parallel sweep + results/dsmbench_default.json
//	dsmbench -table1 -costs
//	dsmbench -fig5 -apps SOR,LU -procs 1,4,8,32
//	dsmbench -table3 -size small
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/interconnect"
	"repro/internal/runner"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every table, figure, and ablation")
		costs      = flag.Bool("costs", false, "print basic operation costs (§4.1)")
		table1     = flag.Bool("table1", false, "Table 1: basic operation costs per variant")
		table2     = flag.Bool("table2", false, "Table 2: data sets and sequential times")
		table3     = flag.Bool("table3", false, "Table 3: detailed statistics at 32 procs")
		fig5       = flag.Bool("fig5", false, "Figure 5: speedups")
		fig6       = flag.Bool("fig6", false, "Figure 6: execution-time breakdown")
		abl        = flag.Bool("ablations", false, "design-choice ablations")
		netsweep   = flag.Bool("netsweep", false, "interconnect x node-count sweep (8..64 nodes, every interconnect; not part of -all)")
		nsNodes    = flag.String("netsweep-nodes", "", "comma-separated node-count ladder for -netsweep (default 8,16,32,64)")
		netF       = flag.String("interconnect", "", "interconnect for the paper tables: memchan (default), rdma, or switched")
		strict     = flag.Bool("strict", false, "exit nonzero if any planned run errors (infeasible layouts are not errors)")
		size       = flag.String("size", "default", "dataset size: small or default")
		appsF      = flag.String("apps", "", "comma-separated application subset")
		procsF     = flag.String("procs", "", "comma-separated processor counts for fig5")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "concurrent simulations (host workers)")
		par        = flag.Bool("par", false, "request the node-parallel simulation engine per run (falls back to sequential unless the protocol is domain-safe; results are identical either way)")
		cacheDir   = flag.String("cache-dir", "", "persistent result cache directory: successful runs are stored there and reused by later invocations")
		jsonF      = flag.Bool("json", false, "write the full result set as JSON (see -json-out)")
		jsonOut    = flag.String("json-out", "", "path for -json output (default results/dsmbench_<size>.json)")
		progress   = flag.Bool("progress", true, "print a progress line to stderr while executing")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit (pprof)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dsmbench:", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dsmbench:", err)
			}
			f.Close()
		}()
	}

	opts := bench.Options{Size: apps.Size(*size)}
	if *netF != "" {
		kind, err := interconnect.ParseKind(*netF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		if kind != interconnect.MemoryChannel {
			opts.VariantOpts.Net = &interconnect.Spec{Kind: kind}
		}
	}
	if *appsF != "" {
		opts.Apps = strings.Split(*appsF, ",")
	}
	if *procsF != "" {
		for _, s := range strings.Split(*procsF, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dsmbench: bad -procs:", err)
				os.Exit(1)
			}
			opts.Procs = append(opts.Procs, n)
		}
	}

	// Phase 1: collect the enabled sections and their specs into one plan.
	type section struct {
		enabled bool
		specs   []runner.RunSpec
		render  func(io.Writer, *runner.ResultSet) error
	}
	sections := []section{
		{*costs, nil, func(w io.Writer, _ *runner.ResultSet) error { bench.Costs(w); return nil }},
		{*table1, bench.Table1Specs(opts.VariantOpts), func(w io.Writer, rs *runner.ResultSet) error {
			return bench.Table1Render(w, opts.VariantOpts, rs)
		}},
		{*table2, bench.Table2Specs(opts), func(w io.Writer, rs *runner.ResultSet) error {
			return bench.Table2Render(w, opts, rs)
		}},
		{*fig5, bench.Fig5Specs(opts), func(w io.Writer, rs *runner.ResultSet) error {
			return bench.Fig5Render(w, opts, rs)
		}},
		{*fig6, bench.Fig6Specs(opts), func(w io.Writer, rs *runner.ResultSet) error {
			return bench.Fig6Render(w, opts, rs)
		}},
		{*table3, bench.Table3Specs(opts), func(w io.Writer, rs *runner.ResultSet) error {
			return bench.Table3Render(w, opts, rs)
		}},
		{*abl, bench.AblationSpecs(opts), func(w io.Writer, rs *runner.ResultSet) error {
			return bench.AblationsRender(w, opts, rs)
		}},
	}
	plan := runner.NewPlan()
	any := false
	for _, s := range sections {
		if s.enabled || *all {
			any = true
			plan.Add(s.specs...)
		}
	}
	// The interconnect sweep stays outside -all: the paper's evaluation is
	// Memory Channel only and the -all output is pinned by golden tests.
	if *netsweep {
		any = true
		if *nsNodes != "" {
			var ladder []int
			for _, s := range strings.Split(*nsNodes, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fmt.Fprintln(os.Stderr, "dsmbench: bad -netsweep-nodes:", s)
					os.Exit(1)
				}
				ladder = append(ladder, n)
			}
			bench.NetSweepNodes = ladder
		}
		plan.Add(bench.NetSweepSpecs(opts)...)
		sections = append(sections, section{true, nil, func(w io.Writer, rs *runner.ResultSet) error {
			return bench.NetSweepRender(w, opts, rs)
		}})
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}

	// Phase 2: execute the combined, deduplicated plan in parallel.
	var rs *runner.ResultSet
	if plan.Len() > 0 {
		effJobs := *jobs
		if *par {
			// Jobs x domains budgeting: a node-parallel run occupies up to
			// one host worker per scheduling domain, so unless -jobs was
			// given explicitly, shrink the pool to keep the total number of
			// active goroutines near the core count. With the current
			// protocols every run's potential is 1 domain (all DSM
			// protocols are domain-unsafe), so this is a no-op until a
			// domain-safe protocol exists.
			jobsExplicit := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "jobs" {
					jobsExplicit = true
				}
			})
			if !jobsExplicit {
				maxDom := 1
				for _, s := range plan.Specs() {
					if d := runner.PotentialDomains(s); d > maxDom {
						maxDom = d
					}
				}
				if effJobs = runtime.NumCPU() / maxDom; effJobs < 1 {
					effJobs = 1
				}
			}
		}
		ropts := runner.Options{Jobs: effJobs, Parallel: *par, CacheDir: *cacheDir}
		if *progress {
			ropts.OnProgress = func(done, total int, spec runner.RunSpec, info runner.RunInfo) {
				mode := "seq"
				switch {
				case info.DiskCached:
					mode = "disk"
				case info.Parallel:
					mode = fmt.Sprintf("par:%d", info.Domains)
				}
				fmt.Fprintf(os.Stderr, "\rdsmbench: %d/%d runs (last: %s/%s/p%d [%s])\x1b[K", done, total, spec.App, spec.Variant, spec.Procs, mode)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		var err error
		rs, err = runner.Execute(plan, ropts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
	}

	// -strict: refuse to emit partial output (tables or JSON with error
	// cells) when any planned run failed. Infeasible layouts are expected
	// holes, not failures.
	if *strict && rs != nil {
		failed := 0
		for _, s := range plan.Specs() {
			if _, err := rs.Get(s); err != nil && !errors.Is(err, runner.ErrInfeasible) {
				failed++
				fmt.Fprintf(os.Stderr, "dsmbench: run failed: %s: %v\n", s.Key(), err)
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "dsmbench: -strict: %d of %d runs failed\n", failed, plan.Len())
			os.Exit(1)
		}
	}

	// Phase 3: render each enabled section from the shared result set.
	w := os.Stdout
	for _, s := range sections {
		if !s.enabled && !*all {
			continue
		}
		if err := s.render(w, rs); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
	}

	if *jsonF && rs != nil {
		path := *jsonOut
		if path == "" {
			path = filepath.Join("results", fmt.Sprintf("dsmbench_%s.json", *size))
		}
		if err := writeJSON(path, rs); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dsmbench: wrote %s (%d specs)\n", path, rs.Len())
	}
}

func writeJSON(path string, rs *runner.ResultSet) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rs.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
