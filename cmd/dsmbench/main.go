// Command dsmbench regenerates the paper's evaluation section: every table
// and figure, plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	dsmbench -all                # everything (takes a while at default size)
//	dsmbench -table1 -costs
//	dsmbench -fig5 -apps SOR,LU -procs 1,4,8,32
//	dsmbench -table3 -size small
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/bench"
)

func main() {
	var (
		all    = flag.Bool("all", false, "run every table, figure, and ablation")
		costs  = flag.Bool("costs", false, "print basic operation costs (§4.1)")
		table1 = flag.Bool("table1", false, "Table 1: basic operation costs per variant")
		table2 = flag.Bool("table2", false, "Table 2: data sets and sequential times")
		table3 = flag.Bool("table3", false, "Table 3: detailed statistics at 32 procs")
		fig5   = flag.Bool("fig5", false, "Figure 5: speedups")
		fig6   = flag.Bool("fig6", false, "Figure 6: execution-time breakdown")
		abl    = flag.Bool("ablations", false, "design-choice ablations")
		size   = flag.String("size", "default", "dataset size: small or default")
		appsF  = flag.String("apps", "", "comma-separated application subset")
		procsF = flag.String("procs", "", "comma-separated processor counts for fig5")
	)
	flag.Parse()

	opts := bench.Options{Size: apps.Size(*size)}
	if *appsF != "" {
		opts.Apps = strings.Split(*appsF, ",")
	}
	if *procsF != "" {
		for _, s := range strings.Split(*procsF, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dsmbench: bad -procs:", err)
				os.Exit(1)
			}
			opts.Procs = append(opts.Procs, n)
		}
	}

	any := false
	run := func(enabled bool, f func() error) {
		if !enabled && !*all {
			return
		}
		any = true
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			os.Exit(1)
		}
	}
	w := os.Stdout
	run(*costs, func() error { bench.Costs(w); return nil })
	run(*table1, func() error { return bench.Table1(w, opts.VariantOpts) })
	run(*table2, func() error { return bench.Table2(w, opts) })
	run(*fig5, func() error { return bench.Fig5(w, opts) })
	run(*fig6, func() error { return bench.Fig6(w, opts) })
	run(*table3, func() error { return bench.Table3(w, opts) })
	run(*abl, func() error { return bench.Ablations(w, opts) })
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
