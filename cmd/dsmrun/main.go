// Command dsmrun executes one benchmark application under one or more
// protocol variants and prints statistics: execution time, speedup-relevant
// breakdown, fault and message counts, and Memory Channel traffic.
//
// With a single variant it prints the full detailed report; with a
// comma-separated variant list it runs all of them (plus the shared
// sequential baseline) through the parallel runner pool and prints a
// side-by-side comparison.
//
// Usage:
//
//	dsmrun -app SOR -variant csm_poll -procs 8 [-size small]
//	dsmrun -app SOR -variant csm_poll,tmk_mc_poll,tmk_udp_int -procs 8
//	dsmrun -app LU -variant tmk_mc_poll -nodes 4 -ppn 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/variants"
)

func main() {
	var (
		app     = flag.String("app", "SOR", "application name")
		variant = flag.String("variant", "csm_poll", "comma-separated protocol variants (or 'sequential')")
		procs   = flag.Int("procs", 0, "total compute processors (uses the paper's node layout)")
		nodes   = flag.Int("nodes", 1, "nodes (ignored when -procs is set)")
		ppn     = flag.Int("ppn", 1, "compute processors per node (ignored when -procs is set)")
		size    = flag.String("size", "default", "dataset size: small or default")
		seq     = flag.Bool("seq-baseline", true, "also run the sequential baseline and report speedup")
		jobs    = flag.Int("jobs", runtime.NumCPU(), "concurrent simulations (host workers)")
		netF    = flag.String("interconnect", "", "interconnect: memchan (default), rdma, or switched")
	)
	flag.Parse()
	vs := strings.Split(*variant, ",")
	for i := range vs {
		vs[i] = strings.TrimSpace(vs[i])
	}
	var opts variants.Options
	if *netF != "" {
		kind, err := interconnect.ParseKind(*netF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
		if kind != interconnect.MemoryChannel {
			opts.Net = &interconnect.Spec{Kind: kind}
		}
	}
	if err := run(*app, vs, *procs, *nodes, *ppn, apps.Size(*size), *seq, *jobs, opts); err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(1)
	}
}

// specFor builds the run spec for one variant at the requested shape.
func specFor(app, variant string, procs, nodes, ppn int, size apps.Size, opts variants.Options) runner.RunSpec {
	s := runner.RunSpec{App: app, Variant: variant, Size: size, Opts: opts}
	if procs > 0 {
		s.Procs = procs
	} else {
		s.Nodes, s.PPN = nodes, ppn
	}
	return s
}

func run(app string, vs []string, procs, nodes, ppn int, size apps.Size, seqBaseline bool, jobs int, opts variants.Options) error {
	entry, err := apps.Get(app)
	if err != nil {
		return err
	}

	plan := runner.NewPlan()
	specs := make([]runner.RunSpec, len(vs))
	for i, v := range vs {
		specs[i] = specFor(app, v, procs, nodes, ppn, size, opts)
		plan.Add(specs[i])
	}
	needSeq := false
	seqSpec := runner.RunSpec{App: app, Variant: variants.Sequential, Procs: 1, Size: size}
	for _, v := range vs {
		if seqBaseline && v != variants.Sequential {
			needSeq = true
		}
	}
	if needSeq {
		plan.Add(seqSpec)
	}

	rs, err := runner.Execute(plan, runner.Options{Jobs: jobs})
	if err != nil {
		return err
	}
	var seqRes *core.Result
	if needSeq {
		if seqRes, err = rs.Get(seqSpec); err != nil {
			return fmt.Errorf("sequential baseline: %w", err)
		}
	}

	if len(vs) == 1 {
		res, err := rs.Get(specs[0])
		if err != nil {
			return err
		}
		return printDetailed(entry, app, vs[0], size, specs[0], res, seqRes)
	}
	return printComparison(entry, app, vs, size, specs, rs, seqRes)
}

// printDetailed is the single-variant report.
func printDetailed(entry apps.Entry, app, variant string, size apps.Size, spec runner.RunSpec, res *core.Result, seqRes *core.Result) error {
	nodes, ppn := shapeOf(spec, res)
	fmt.Printf("%s (%s) on %s, %d processors (%dx%d)\n",
		app, entry.Problem(size), variant, res.Procs, nodes, ppn)
	fmt.Printf("  execution time: %s\n", fmtTime(res.Time))
	if seqRes != nil && variant != variants.Sequential {
		fmt.Printf("  sequential:     %s  (speedup %.2f)\n",
			fmtTime(seqRes.Time), float64(seqRes.Time)/float64(res.Time))
	}
	tot := res.Total
	fmt.Printf("  barriers %d  locks %d  read faults %d  write faults %d\n",
		tot.Barriers, tot.LockAcquires, tot.ReadFaults, tot.WriteFaults)
	fmt.Printf("  page transfers %d  page copies %d  twins %d  diffs %d/%d  messages %d  data %.1f KB\n",
		tot.PageTransfers, tot.PageCopies, tot.Twins, tot.DiffsCreated, tot.DiffsApplied,
		tot.Messages, float64(tot.DataBytes)/1024)
	var catSum sim.Time
	for c := core.Category(0); c < core.NumCategories; c++ {
		catSum += tot.Cat[c]
	}
	elapsed := sim.Time(0)
	for _, st := range res.PerProc {
		elapsed += st.FinishedAt
	}
	if elapsed > 0 {
		fmt.Printf("  breakdown:")
		for c := core.Category(0); c < core.NumCategories; c++ {
			fmt.Printf(" %s %.1f%%", c, 100*float64(tot.Cat[c])/float64(elapsed))
		}
		fmt.Printf(" Comm&Wait %.1f%%\n", 100*float64(elapsed-catSum)/float64(elapsed))
	}
	fmt.Printf("  MC traffic:")
	keys := make([]string, 0, len(res.Traffic))
	for k := range res.Traffic {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf(" %s %.1fKB", k, float64(res.Traffic[k])/1024)
	}
	fmt.Println()
	if len(res.Checks) > 0 {
		fmt.Printf("  checks:")
		ckeys := make([]string, 0, len(res.Checks))
		for k := range res.Checks {
			ckeys = append(ckeys, k)
		}
		sort.Strings(ckeys)
		for _, k := range ckeys {
			fmt.Printf(" %s=%g", k, res.Checks[k])
		}
		fmt.Println()
	}
	return nil
}

// printComparison renders a side-by-side metric table, one column per
// variant.
func printComparison(entry apps.Entry, app string, vs []string, size apps.Size, specs []runner.RunSpec, rs *runner.ResultSet, seqRes *core.Result) error {
	results := make([]*core.Result, len(vs))
	for i, s := range specs {
		res, err := rs.Get(s)
		if err != nil {
			return fmt.Errorf("%s: %w", vs[i], err)
		}
		results[i] = res
	}
	fmt.Printf("%s (%s), %d processors, size %s\n", app, entry.Problem(size), results[0].Procs, size)
	if seqRes != nil {
		fmt.Printf("sequential baseline: %s\n", fmtTime(seqRes.Time))
	}

	fmt.Printf("%-22s", "metric")
	for _, v := range vs {
		fmt.Printf("%16s", v)
	}
	fmt.Println()
	row := func(label string, f func(*core.Result) string) {
		fmt.Printf("%-22s", label)
		for _, r := range results {
			fmt.Printf("%16s", f(r))
		}
		fmt.Println()
	}
	row("time (ms)", func(r *core.Result) string { return fmt.Sprintf("%.3f", float64(r.Time)/1e6) })
	if seqRes != nil {
		row("speedup", func(r *core.Result) string {
			return fmt.Sprintf("%.2f", float64(seqRes.Time)/float64(r.Time))
		})
	}
	i64 := func(f func(*core.Result) int64) func(*core.Result) string {
		return func(r *core.Result) string { return fmt.Sprintf("%d", f(r)) }
	}
	row("barriers", i64(func(r *core.Result) int64 { return r.Total.Barriers }))
	row("locks", i64(func(r *core.Result) int64 { return r.Total.LockAcquires }))
	row("read faults", i64(func(r *core.Result) int64 { return r.Total.ReadFaults }))
	row("write faults", i64(func(r *core.Result) int64 { return r.Total.WriteFaults }))
	row("page transfers", i64(func(r *core.Result) int64 { return r.Total.PageTransfers }))
	row("page copies", i64(func(r *core.Result) int64 { return r.Total.PageCopies }))
	row("twins", i64(func(r *core.Result) int64 { return r.Total.Twins }))
	row("diffs created", i64(func(r *core.Result) int64 { return r.Total.DiffsCreated }))
	row("messages", i64(func(r *core.Result) int64 { return r.Total.Messages }))
	row("data (KB)", func(r *core.Result) string { return fmt.Sprintf("%.1f", float64(r.Total.DataBytes)/1024) })
	row("MC traffic (KB)", func(r *core.Result) string {
		var total int64
		for _, b := range r.Traffic {
			total += b
		}
		return fmt.Sprintf("%.1f", float64(total)/1024)
	})
	return nil
}

// shapeOf reconstructs the nodes x ppn shape for display.
func shapeOf(spec runner.RunSpec, res *core.Result) (nodes, ppn int) {
	spec = spec.Normalize()
	if spec.Variant == variants.Sequential {
		return 1, 1
	}
	if spec.Nodes > 0 {
		return spec.Nodes, spec.PPN
	}
	if l, err := variants.LayoutFor(res.Procs); err == nil {
		return l.Nodes, l.PerNode
	}
	return res.Procs, 1
}

func fmtTime(t sim.Time) string {
	return fmt.Sprintf("%.3f ms", float64(t)/1e6)
}
