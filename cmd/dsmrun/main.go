// Command dsmrun executes one benchmark application under one protocol
// variant and prints its statistics: execution time, speedup-relevant
// breakdown, fault and message counts, and Memory Channel traffic.
//
// Usage:
//
//	dsmrun -app SOR -variant csm_poll -procs 8 [-size small]
//	dsmrun -app LU -variant tmk_mc_poll -nodes 4 -ppn 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/variants"
)

func main() {
	var (
		app     = flag.String("app", "SOR", "application name")
		variant = flag.String("variant", "csm_poll", "protocol variant or 'sequential'")
		procs   = flag.Int("procs", 0, "total compute processors (uses the paper's node layout)")
		nodes   = flag.Int("nodes", 1, "nodes (ignored when -procs is set)")
		ppn     = flag.Int("ppn", 1, "compute processors per node (ignored when -procs is set)")
		size    = flag.String("size", "default", "dataset size: small or default")
		seq     = flag.Bool("seq-baseline", true, "also run the sequential baseline and report speedup")
	)
	flag.Parse()
	if err := run(*app, *variant, *procs, *nodes, *ppn, apps.Size(*size), *seq); err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(1)
	}
}

func run(app, variant string, procs, nodes, ppn int, size apps.Size, seqBaseline bool) error {
	entry, err := apps.Get(app)
	if err != nil {
		return err
	}
	if procs > 0 {
		l, err := variants.LayoutFor(procs)
		if err != nil {
			return err
		}
		nodes, ppn = l.Nodes, l.PerNode
	}
	cfg, err := variants.Config(variant, nodes, ppn, variants.Options{})
	if err != nil {
		return err
	}
	res, err := core.Run(cfg, entry.New(size))
	if err != nil {
		return err
	}

	fmt.Printf("%s (%s) on %s, %d processors (%dx%d)\n",
		app, entry.Problem(size), variant, res.Procs, nodes, ppn)
	fmt.Printf("  execution time: %s\n", fmtTime(res.Time))
	if seqBaseline && variant != variants.Sequential {
		seqCfg, err := variants.Config(variants.Sequential, 1, 1, variants.Options{})
		if err != nil {
			return err
		}
		seqRes, err := core.Run(seqCfg, entry.New(size))
		if err != nil {
			return err
		}
		fmt.Printf("  sequential:     %s  (speedup %.2f)\n",
			fmtTime(seqRes.Time), float64(seqRes.Time)/float64(res.Time))
	}
	tot := res.Total
	fmt.Printf("  barriers %d  locks %d  read faults %d  write faults %d\n",
		tot.Barriers, tot.LockAcquires, tot.ReadFaults, tot.WriteFaults)
	fmt.Printf("  page transfers %d  page copies %d  twins %d  diffs %d/%d  messages %d  data %.1f KB\n",
		tot.PageTransfers, tot.PageCopies, tot.Twins, tot.DiffsCreated, tot.DiffsApplied,
		tot.Messages, float64(tot.DataBytes)/1024)
	var catSum sim.Time
	for c := core.Category(0); c < core.NumCategories; c++ {
		catSum += tot.Cat[c]
	}
	elapsed := sim.Time(0)
	for _, st := range res.PerProc {
		elapsed += st.FinishedAt
	}
	if elapsed > 0 {
		fmt.Printf("  breakdown:")
		for c := core.Category(0); c < core.NumCategories; c++ {
			fmt.Printf(" %s %.1f%%", c, 100*float64(tot.Cat[c])/float64(elapsed))
		}
		fmt.Printf(" Comm&Wait %.1f%%\n", 100*float64(elapsed-catSum)/float64(elapsed))
	}
	fmt.Printf("  MC traffic:")
	keys := make([]string, 0, len(res.Traffic))
	for k := range res.Traffic {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf(" %s %.1fKB", k, float64(res.Traffic[k])/1024)
	}
	fmt.Println()
	if len(res.Checks) > 0 {
		fmt.Printf("  checks:")
		ckeys := make([]string, 0, len(res.Checks))
		for k := range res.Checks {
			ckeys = append(ckeys, k)
		}
		sort.Strings(ckeys)
		for _, k := range ckeys {
			fmt.Printf(" %s=%g", k, res.Checks[k])
		}
		fmt.Println()
	}
	return nil
}

func fmtTime(t sim.Time) string {
	return fmt.Sprintf("%.3f ms", float64(t)/1e6)
}
