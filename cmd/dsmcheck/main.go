// Command dsmcheck explores the simulator's schedule space: it runs the
// memory-model litmus suite and the fuzz-corpus differential checker under
// many perturbed — but individually bit-reproducible — event schedules, on
// both DSM protocols. Forbidden litmus outcomes must never appear, key
// permitted outcomes must each appear at least once, and the data-race-free
// corpus programs must produce oracle-exact results under every schedule.
//
// On a differential or litmus failure, the first failing (program, schedule)
// pair is shrunk to a minimal repro and written as JSON (-repro); replay it
// with -replay. -selftest arms a deliberate TreadMarks diff-loss bug and
// verifies the harness catches and shrinks it.
//
// Exit status: 0 all checks pass (or -selftest caught the bug), 1 a check
// failed (repro written), 2 usage or internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/sim"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		schedules     = flag.Int("schedules", 200, "perturbed schedules per litmus (test, variant)")
		diffSchedules = flag.Int("diff-schedules", 25, "perturbed schedules per differential (program, variant)")
		seed          = flag.Uint64("seed", 1, "base schedule seed (schedule i uses seed+i)")
		jitter        = flag.Float64("jitter", 0.75, "per-event cost jitter fraction (protocols tolerate up to 1.0)")
		staggerUS     = flag.Int64("stagger-us", 3000, "max seed-derived per-processor start offset, microseconds")
		variantsCSV   = flag.String("variants", strings.Join(check.DefaultVariants(), ","), "comma-separated protocol variants to sweep")
		jobs          = flag.Int("jobs", 0, "parallel simulations (0 = GOMAXPROCS)")
		jsonOut       = flag.Bool("json", false, "emit the full report as JSON instead of tables")
		reproPath     = flag.String("repro", "dsmcheck_repro.json", "file to write the minimized repro to on failure")
		replayPath    = flag.String("replay", "", "replay a repro JSON file and exit")
		selftest      = flag.Bool("selftest", false, "arm the injected TreadMarks diff-loss bug and verify it is caught and shrunk")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "dsmcheck: unexpected arguments %q\n", flag.Args())
		return 2
	}

	params := check.Params{
		Schedules: *schedules,
		BaseSeed:  *seed,
		Jitter:    *jitter,
		Stagger:   sim.Time(*staggerUS) * sim.Microsecond,
		Variants:  splitCSV(*variantsCSV),
		Jobs:      *jobs,
	}

	if *replayPath != "" {
		return replay(*replayPath)
	}
	if *selftest {
		return selfTest(params, *diffSchedules, *reproPath)
	}
	return sweep(params, *diffSchedules, *jsonOut, *reproPath)
}

// sweep is the default mode: litmus suite plus differential checker.
func sweep(params check.Params, diffSchedules int, jsonOut bool, reproPath string) int {
	litmus, err := check.RunLitmus(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: litmus sweep:", err)
		return 2
	}
	diffParams := params
	diffParams.Schedules = diffSchedules
	diff, err := check.RunDifferential(diffParams)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: differential sweep:", err)
		return 2
	}

	if jsonOut {
		payload := struct {
			Litmus       *check.LitmusReport
			Differential *check.DiffReport
		}{litmus, diff}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmcheck:", err)
			return 2
		}
		fmt.Println(string(data))
	} else {
		printLitmus(litmus)
		fmt.Printf("differential: %d runs, %d failures\n", diff.Runs, len(diff.Failures))
	}

	if !litmus.Failed() && !diff.Failed() {
		if !jsonOut {
			fmt.Println("dsmcheck: all checks passed")
		}
		return 0
	}

	// Pick the repro to shrink: a concrete differential failure first (it
	// carries a full program configuration), else the litmus violation.
	var repro check.Repro
	switch {
	case diff.Failed():
		repro = diff.Failures[0].Repro(0)
	case litmus.FirstViolation != nil:
		repro = *litmus.FirstViolation
	default:
		// Litmus "failed" on missing coverage only — nothing to replay.
		fmt.Fprintln(os.Stderr, "dsmcheck: FAIL (missing litmus coverage; see tables above)")
		return 1
	}
	min, spent, err := check.Shrink(repro, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: shrink:", err)
		min = repro // fall back to the unshrunk repro
	} else {
		fmt.Fprintf(os.Stderr, "dsmcheck: shrunk repro in %d replays\n", spent)
	}
	if err := min.WriteFile(reproPath); err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: write repro:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "dsmcheck: FAIL: %s\n  reason: %s\n  repro written to %s\n", min, min.Reason, reproPath)
	return 1
}

// replay re-runs a repro file.
func replay(path string) int {
	repro, err := check.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck:", err)
		return 2
	}
	reason, err := check.Replay(repro)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck:", err)
		return 2
	}
	if reason == "" {
		fmt.Printf("%s: does not reproduce (run passes)\n", repro)
		return 0
	}
	fmt.Printf("%s: reproduces\n  reason: %s\n", repro, reason)
	return 1
}

// selfTest proves the harness end to end: with the injected TreadMarks
// diff-loss bug armed, the differential checker must fail and the shrinker
// must reduce the failure to a tiny configuration.
func selfTest(params check.Params, diffSchedules int, reproPath string) int {
	params.Schedules = diffSchedules
	params.Variants = []string{"tmk_mc_poll"}
	params.InjectDropDiffRuns = 3
	diff, err := check.RunDifferential(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: selftest sweep:", err)
		return 2
	}
	if !diff.Failed() {
		fmt.Fprintf(os.Stderr, "dsmcheck: selftest FAILED: injected diff-loss bug survived %d runs undetected\n", diff.Runs)
		return 1
	}
	min, spent, err := check.Shrink(diff.Failures[0].Repro(params.InjectDropDiffRuns), 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: selftest shrink:", err)
		return 1
	}
	if err := min.WriteFile(reproPath); err != nil {
		fmt.Fprintln(os.Stderr, "dsmcheck: write repro:", err)
		return 2
	}
	procs := min.Nodes * min.PPN
	if min.Fuzz.Rounds > 2 || procs > 2 {
		fmt.Fprintf(os.Stderr, "dsmcheck: selftest FAILED: shrink stopped at %d rounds on %d processors (want <=2 and <=2)\n",
			min.Fuzz.Rounds, procs)
		return 1
	}
	fmt.Printf("selftest OK: injected bug caught in %d/%d runs, shrunk to %d round(s) on %d processors in %d replays\n",
		len(diff.Failures), diff.Runs, min.Fuzz.Rounds, procs, spent)
	fmt.Printf("  minimized: %s\n  reason: %s\n  repro written to %s\n", min, min.Reason, reproPath)
	return 0
}

// printLitmus renders the outcome tables.
func printLitmus(r *check.LitmusReport) {
	fmt.Printf("litmus: %d runs\n", r.Runs)
	for _, row := range r.Rows {
		status := "ok"
		if row.Failed() {
			status = "FAIL"
		}
		fmt.Printf("%-10s %-12s runs=%-4d %s  (%s)\n", row.Test, row.Variant, row.Runs, status, row.Doc)
		for _, o := range row.Outcomes {
			mark := ""
			if o.Forbidden {
				mark = "  << FORBIDDEN"
			}
			fmt.Printf("    %-28s %5d%s\n", o.Outcome, o.Count, mark)
		}
		for _, v := range row.Violations {
			fmt.Println("    VIOLATION:", v)
		}
		for _, m := range row.Missing {
			fmt.Println("    MISSING:", m)
		}
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
