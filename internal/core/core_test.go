package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

func seqConfig() Config {
	return Config{
		Nodes:        1,
		ProcsPerNode: 1,
		MC:           interconnect.MCFirstGeneration(),
		Msg:          msg.DefaultParams(msg.ModePoll),
		Costs:        DefaultCosts(),
		NewProtocol:  NewNullProtocol,
		Variant:      "sequential",
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCosts()
	if err := c.Validate(); err != nil {
		t.Fatalf("default costs invalid: %v", err)
	}
	bad := c
	bad.PageFault = 0
	if bad.Validate() == nil {
		t.Error("zero PageFault accepted")
	}
	bad = c
	bad.DiffCreateMax = c.DiffCreateMin - 1
	if bad.Validate() == nil {
		t.Error("inverted diff range accepted")
	}
	if got := c.DiffCreate(0, vm.PageSize); got != c.DiffCreateMin {
		t.Errorf("DiffCreate(0) = %d, want min %d", got, c.DiffCreateMin)
	}
	if got := c.DiffCreate(vm.PageSize, vm.PageSize); got != c.DiffCreateMax {
		t.Errorf("DiffCreate(full) = %d, want max %d", got, c.DiffCreateMax)
	}
	if got := c.DiffCreate(2*vm.PageSize, vm.PageSize); got != c.DiffCreateMax {
		t.Errorf("DiffCreate clamping failed: %d", got)
	}
	if got := c.DiffCreate(-4, vm.PageSize); got != c.DiffCreateMin {
		t.Errorf("DiffCreate negative clamping failed: %d", got)
	}
	if c.Copy(1000) != 1000*c.CopyPerByte {
		t.Error("Copy cost wrong")
	}
}

func TestCategoryString(t *testing.T) {
	for cat, want := range map[Category]string{
		CatUser: "User", CatProtocol: "Protocol", CatPolling: "Polling",
		CatDoubling: "Write doubling", NumCategories: "unknown",
	} {
		if got := cat.String(); got != want {
			t.Errorf("Category(%d) = %q, want %q", cat, got, want)
		}
	}
}

func TestLayoutAllocation(t *testing.T) {
	l := NewLayout()
	a := l.F64(10)
	if a.Base != 0 || a.N != 10 {
		t.Errorf("first array at %d len %d", a.Base, a.N)
	}
	b := l.I64(3)
	if b.Base != 80 {
		t.Errorf("second array at %d, want 80", b.Base)
	}
	c := l.F64Pages(2)
	if c.Base != vm.PageSize {
		t.Errorf("page-aligned array at %d, want %d", c.Base, vm.PageSize)
	}
	if l.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", l.Pages())
	}
	if got := a.Addr(3); got != 24 {
		t.Errorf("Addr(3) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Addr did not panic")
		}
	}()
	a.Addr(10)
}

func TestLayoutBadAlign(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad align did not panic")
		}
	}()
	NewLayout().Alloc(8, 3)
}

func TestSequentialRoundTrip(t *testing.T) {
	l := NewLayout()
	arr := l.F64Pages(1000)
	cnt := l.I64(4)
	prog := &Program{
		Name:        "roundtrip",
		SharedBytes: l.Size(),
		Init: func(w *ImageWriter) {
			for i := 0; i < arr.N; i++ {
				arr.Init(w, i, float64(i)*1.5)
			}
			cnt.Init(w, 0, 7)
			if w.ReadI64(cnt.Addr(0)) != 7 {
				t.Error("image read-back failed")
			}
			if w.ReadF64(arr.Addr(2)) != 3.0 {
				t.Error("image f64 read-back failed")
			}
		},
		Body: func(p *Proc) {
			sum := 0.0
			for i := 0; i < arr.N; i++ {
				sum += arr.At(p, i)
			}
			want := 1.5 * float64(arr.N*(arr.N-1)) / 2
			if sum != want {
				t.Errorf("sum = %v, want %v", sum, want)
			}
			arr.Set(p, 0, 42)
			if arr.At(p, 0) != 42 {
				t.Error("write lost")
			}
			cnt.Set(p, 1, cnt.At(p, 0)+1)
			if cnt.At(p, 1) != 8 {
				t.Error("i64 write lost")
			}
			p.Compute(100 * sim.Microsecond)
			p.PollPoint()
			p.Lock(0)
			p.Unlock(0)
			p.Barrier(0)
			p.Finish()
			p.ReportCheck("sum", sum)
		},
		Locks:    1,
		Barriers: 1,
	}
	res, err := Run(seqConfig(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 1 {
		t.Errorf("Procs = %d", res.Procs)
	}
	if res.Time <= 0 {
		t.Errorf("Time = %d", res.Time)
	}
	st := res.PerProc[0]
	if st.ReadFaults == 0 {
		t.Error("no read faults recorded")
	}
	if st.Cat[CatUser] <= 100*sim.Microsecond {
		t.Errorf("user time %d too small", st.Cat[CatUser])
	}
	if st.LockAcquires != 1 || st.Barriers != 1 {
		t.Errorf("sync counters: %d locks, %d barriers", st.LockAcquires, st.Barriers)
	}
	if res.Checks["sum"] == 0 {
		t.Error("check not reported")
	}
	if res.Variant != "sequential" || res.Program != "roundtrip" {
		t.Errorf("labels: %q %q", res.Variant, res.Program)
	}
}

func TestSequentialDeterminism(t *testing.T) {
	l := NewLayout()
	arr := l.F64Pages(500)
	mk := func() *Program {
		return &Program{
			Name:        "det",
			SharedBytes: l.Size(),
			Body: func(p *Proc) {
				for i := 0; i < arr.N; i++ {
					arr.Set(p, i, float64(i))
					p.Compute(50 * sim.Nanosecond)
				}
				p.Finish()
			},
		}
	}
	r1, err := Run(seqConfig(), mk())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(seqConfig(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time {
		t.Errorf("nondeterministic: %d vs %d", r1.Time, r2.Time)
	}
}

func TestCacheModelCharges(t *testing.T) {
	l := NewLayout()
	arr := l.F64Pages(8192) // 64 KB: four 16 KB caches' worth
	run := func(withCache bool) *Result {
		cfg := seqConfig()
		if withCache {
			c := cache.Alpha21064A
			cfg.Cache = &c
		}
		prog := &Program{
			Name:        "cache",
			SharedBytes: l.Size(),
			Body: func(p *Proc) {
				for pass := 0; pass < 4; pass++ {
					for i := 0; i < arr.N; i++ {
						arr.Set(p, i, 1)
					}
				}
				p.Finish()
			},
		}
		res, err := Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(true), run(false)
	if with.Time <= without.Time {
		t.Errorf("cache-model run %d not slower than no-cache %d", with.Time, without.Time)
	}
	if with.PerProc[0].CacheMisses == 0 {
		t.Error("no cache misses recorded")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := seqConfig()
	cfg.Nodes = 0
	if _, err := Run(cfg, &Program{Body: func(p *Proc) {}}); err == nil {
		t.Error("bad shape accepted")
	}
	cfg = seqConfig()
	cfg.NewProtocol = nil
	if _, err := Run(cfg, &Program{Body: func(p *Proc) {}}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := Run(seqConfig(), &Program{Name: "nobody"}); err == nil {
		t.Error("nil body accepted")
	}
}

func TestNullProtocolRequiresOneProc(t *testing.T) {
	cfg := seqConfig()
	cfg.ProcsPerNode = 2
	_, err := Run(cfg, &Program{Body: func(p *Proc) {}})
	if err == nil {
		t.Error("NullProtocol with 2 procs accepted")
	}
}

func TestStatsCommWaitAndAdd(t *testing.T) {
	var s Stats
	s.FinishedAt = 1000
	s.Cat[CatUser] = 300
	s.Cat[CatProtocol] = 200
	if s.CommWait() != 500 {
		t.Errorf("CommWait = %d, want 500", s.CommWait())
	}
	var tot Stats
	tot.Add(&s)
	tot.Add(&s)
	if tot.Cat[CatUser] != 600 || tot.FinishedAt != 1000 {
		t.Errorf("Add wrong: %+v", tot)
	}
	s2 := s
	s2.FinishedAt = 100 // over-charged: clamp to zero
	if s2.CommWait() != 0 {
		t.Errorf("CommWait clamp failed: %d", s2.CommWait())
	}
}

func TestImageWriterOutOfRangePanics(t *testing.T) {
	l := NewLayout()
	l.F64(1)
	prog := &Program{
		Name:        "oob",
		SharedBytes: l.Size(),
		Init: func(w *ImageWriter) {
			w.WriteF64(1<<30, 1) // far outside
		},
		Body: func(p *Proc) {},
	}
	if _, err := Run(seqConfig(), prog); err == nil {
		t.Error("out-of-segment init write did not fail the run")
	}
}

func TestSpinWaitServicesAndBounds(t *testing.T) {
	// SpinWait must advance virtual time while waiting and panic (failing
	// the run) when the condition never becomes true.
	cfg := seqConfig()
	prog := &Program{
		Name:        "spin",
		SharedBytes: vmPageSize,
		Body: func(p *Proc) {
			deadline := p.Sim().Now() + 100*sim.Microsecond
			p.SpinWait("until deadline", func() bool { return p.Sim().Now() >= deadline })
			if p.Sim().Now() < deadline {
				t.Error("SpinWait returned early")
			}
		},
	}
	if _, err := Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	hang := &Program{
		Name:        "spinhang",
		SharedBytes: vmPageSize,
		Body: func(p *Proc) {
			p.SpinWait("never", func() bool { return false })
		},
	}
	if _, err := Run(cfg, hang); err == nil {
		t.Error("livelocked SpinWait did not fail the run")
	}
}

func TestChargeCategories(t *testing.T) {
	cfg := seqConfig()
	prog := &Program{
		Name:        "cats",
		SharedBytes: vmPageSize,
		Body: func(p *Proc) {
			p.Charge(CatProtocol, 100)
			p.ChargeProtocol(50)
			p.Charge(CatDoubling, 25)
			p.Finish()
			st := p.Snapshot()
			if st.Cat[CatProtocol] != 150 || st.Cat[CatDoubling] != 25 {
				t.Errorf("categories: %+v", st.Cat)
			}
		},
	}
	if _, err := Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializedFrame(t *testing.T) {
	cfg := seqConfig()
	l := NewLayout()
	arr := l.F64Pages(4)
	prog := &Program{
		Name:        "mat",
		SharedBytes: l.Size(),
		Init:        func(w *ImageWriter) { arr.Init(w, 2, 9.5) },
		Body: func(p *Proc) {
			fr := p.MaterializedFrame(0)
			if fr == nil {
				t.Fatal("nil frame")
			}
			if got := arr.At(p, 2); got != 9.5 {
				t.Errorf("image value = %v", got)
			}
			if &p.MaterializedFrame(0)[0] != &fr[0] {
				t.Error("MaterializedFrame reallocated")
			}
		},
	}
	if _, err := Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
}

const vmPageSize = 8192

// BenchmarkSharedAccess measures the simulator's shared-memory fast path
// (page-table check, cache model, cost accounting).
func BenchmarkSharedAccess(b *testing.B) {
	cfg := seqConfig()
	c := cache.Alpha21064A
	cfg.Cache = &c
	l := NewLayout()
	arr := l.F64Pages(8192)
	n := b.N
	prog := &Program{
		Name:        "hotpath",
		SharedBytes: l.Size(),
		Body: func(p *Proc) {
			for i := 0; i < n; i++ {
				arr.Set(p, i%arr.N, float64(i))
			}
		},
	}
	b.ResetTimer()
	if _, err := Run(cfg, prog); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSharedReadRange measures the bulk read accessor; one op covers a
// 1024-element (one-page) run, so compare per-element cost against
// BenchmarkSharedAccess after dividing by 1024.
func BenchmarkSharedReadRange(b *testing.B) {
	cfg := seqConfig()
	c := cache.Alpha21064A
	cfg.Cache = &c
	l := NewLayout()
	arr := l.F64Pages(8192)
	n := b.N
	prog := &Program{
		Name:        "hotpath-range",
		SharedBytes: l.Size(),
		Body: func(p *Proc) {
			buf := make([]float64, 1024)
			for i := 0; i < n; i++ {
				p.ReadF64Range(arr.Addr((i%8)*1024), buf)
			}
		},
	}
	b.ResetTimer()
	if _, err := Run(cfg, prog); err != nil {
		b.Fatal(err)
	}
}
