package core

import "repro/internal/sim"

// Category classifies charged virtual time for the Figure 6 execution-time
// breakdown. Time not charged to any category (blocking in synchronization,
// waiting for replies, spin loops) is communication-and-wait time, computed
// as elapsed minus the sum of charged categories.
type Category int

const (
	// CatUser is application computation and shared-memory access time.
	CatUser Category = iota
	// CatProtocol is coherence-protocol work: fault handling, directory
	// updates, twin/diff operations, write-notice processing.
	CatProtocol
	// CatPolling is the instrumentation overhead of message polling.
	CatPolling
	// CatDoubling is the instruction overhead of write doubling (Cashmere).
	CatDoubling
	// NumCategories is the number of charge categories.
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatUser:
		return "User"
	case CatProtocol:
		return "Protocol"
	case CatPolling:
		return "Polling"
	case CatDoubling:
		return "Write doubling"
	}
	return "unknown"
}

// Stats are one processor's counters and time breakdown. The protocol
// implementations increment the event counters; the kernel charges the time
// categories.
type Stats struct {
	// Cat accumulates charged time per category.
	Cat [NumCategories]sim.Time
	// FinishedAt is the processor's clock when Finish was called (or when
	// its body returned).
	FinishedAt sim.Time

	// Shared counters (paper Table 3).
	ReadFaults   int64
	WriteFaults  int64
	LockAcquires int64
	Barriers     int64

	// Cashmere counters.
	PageTransfers int64
	WriteNotices  int64
	PageCopies    int64 // includes same-node copies

	// TreadMarks counters.
	Twins        int64
	DiffsCreated int64
	DiffsApplied int64
	PageFetches  int64

	// Messaging (filled from the endpoint at snapshot time).
	Messages  int64
	DataBytes int64

	// Cache model results (filled at snapshot time).
	CacheHits, CacheMisses uint64
}

// CommWait returns the communication-and-wait time implied by the breakdown:
// elapsed time not charged to any category.
func (s *Stats) CommWait() sim.Time {
	w := s.FinishedAt
	for _, t := range s.Cat {
		w -= t
	}
	if w < 0 {
		w = 0
	}
	return w
}

// Add accumulates other into s (for cluster-wide aggregates). FinishedAt
// takes the maximum.
func (s *Stats) Add(other *Stats) {
	for i := range s.Cat {
		s.Cat[i] += other.Cat[i]
	}
	if other.FinishedAt > s.FinishedAt {
		s.FinishedAt = other.FinishedAt
	}
	s.ReadFaults += other.ReadFaults
	s.WriteFaults += other.WriteFaults
	s.LockAcquires += other.LockAcquires
	s.Barriers += other.Barriers
	s.PageTransfers += other.PageTransfers
	s.WriteNotices += other.WriteNotices
	s.PageCopies += other.PageCopies
	s.Twins += other.Twins
	s.DiffsCreated += other.DiffsCreated
	s.DiffsApplied += other.DiffsApplied
	s.PageFetches += other.PageFetches
	s.Messages += other.Messages
	s.DataBytes += other.DataBytes
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
}
