// Package core is the DSM kernel shared by both protocol implementations: it
// owns the simulated cluster runtime (processors, address spaces, caches,
// Memory Channel, messaging endpoints), the cost model with the paper's
// measured operation costs (§4.1), the shared-memory access path that stands
// in for VM hardware, and the per-processor statistics behind the paper's
// Table 3 and Figure 6.
package core

import (
	"fmt"

	"repro/internal/sim"
)

// CostModel collects the per-operation virtual-time costs. Defaults come
// from the paper's §4.1 measurements on the AlphaServer 2100 4/233 cluster;
// where the source text is ambiguous the value and its reconstruction are
// noted in DESIGN.md.
type CostModel struct {
	// PageFault is the cost of taking a page fault and delivering it to the
	// user-level handler (hardware fault ~9 µs plus local signal delivery
	// ~69 µs).
	PageFault sim.Time
	// ProtChange is one memory-protection (mprotect) operation: 62 µs.
	ProtChange sim.Time
	// MemAccess is one shared-memory access that hits the first-level cache.
	MemAccess sim.Time
	// CacheMiss is the additional penalty for a first-level cache miss.
	CacheMiss sim.Time
	// PollCheck is one polling check (load, branch; Figure 2): charged at
	// instrumented poll points in the polling variants.
	PollCheck sim.Time
	// WriteDouble is the instruction overhead of one doubled write (address
	// arithmetic plus the extra store; Figure 4).
	WriteDouble sim.Time
	// TwinCopy is creating a twin of an 8 KB page (TreadMarks): 362 µs.
	TwinCopy sim.Time
	// DiffCreateMin/Max bound diff creation cost per page: "29 to 53 µs
	// per page, depending on the size of the diff" — charged proportionally
	// to the dirty fraction.
	DiffCreateMin, DiffCreateMax sim.Time
	// DiffApplyBase is the fixed cost of merging one diff into a page;
	// the per-byte copy cost is added on top.
	DiffApplyBase sim.Time
	// CopyPerByte is the local memory copy cost per byte (page copies,
	// diff application payloads).
	CopyPerByte sim.Time
	// DirectoryModLocked is a directory entry modification that must take
	// the entry lock (home-node relocation): 16 µs.
	DirectoryModLocked sim.Time
	// DirectoryMod is a directory entry modification without locking: 5 µs.
	DirectoryMod sim.Time
	// LLSC is an intra-node load-linked/store-conditional acquisition of a
	// directory word or per-node lock flag.
	LLSC sim.Time
	// HandlerWork is the baseline cost of running a protocol request
	// handler (argument decode, bookkeeping) beyond explicit charges.
	HandlerWork sim.Time
}

// DefaultCosts returns the paper-calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		PageFault:          78 * sim.Microsecond, // 9 µs fault + 69 µs signal
		ProtChange:         62 * sim.Microsecond,
		MemAccess:          10 * sim.Nanosecond, // ~2 cycles at 233 MHz
		CacheMiss:          80 * sim.Nanosecond,
		PollCheck:          15 * sim.Nanosecond, // 3-instruction check
		WriteDouble:        30 * sim.Nanosecond, // 6-instruction sequence
		TwinCopy:           362 * sim.Microsecond,
		DiffCreateMin:      29 * sim.Microsecond,
		DiffCreateMax:      53 * sim.Microsecond,
		DiffApplyBase:      15 * sim.Microsecond,
		CopyPerByte:        4 * sim.Nanosecond, // ~250 MB/s local copy
		DirectoryModLocked: 16 * sim.Microsecond,
		DirectoryMod:       5 * sim.Microsecond,
		LLSC:               1 * sim.Microsecond,
		HandlerWork:        3 * sim.Microsecond,
	}
}

// Validate reports whether all costs are usable.
func (c CostModel) Validate() error {
	checks := []struct {
		name string
		v    sim.Time
	}{
		{"PageFault", c.PageFault}, {"ProtChange", c.ProtChange},
		{"MemAccess", c.MemAccess}, {"CacheMiss", c.CacheMiss},
		{"PollCheck", c.PollCheck}, {"WriteDouble", c.WriteDouble},
		{"TwinCopy", c.TwinCopy}, {"DiffCreateMin", c.DiffCreateMin},
		{"DiffCreateMax", c.DiffCreateMax}, {"DiffApplyBase", c.DiffApplyBase},
		{"CopyPerByte", c.CopyPerByte}, {"DirectoryModLocked", c.DirectoryModLocked},
		{"DirectoryMod", c.DirectoryMod}, {"LLSC", c.LLSC}, {"HandlerWork", c.HandlerWork},
	}
	for _, ch := range checks {
		if ch.v <= 0 {
			return fmt.Errorf("core: cost %s = %d must be positive", ch.name, ch.v)
		}
	}
	if c.DiffCreateMax < c.DiffCreateMin {
		return fmt.Errorf("core: DiffCreateMax %d < DiffCreateMin %d", c.DiffCreateMax, c.DiffCreateMin)
	}
	return nil
}

// DiffCreate returns the diff-creation cost for a page with the given number
// of dirty bytes, interpolating the paper's 29–53 µs range.
func (c CostModel) DiffCreate(dirtyBytes, pageBytes int) sim.Time {
	if dirtyBytes < 0 {
		dirtyBytes = 0
	}
	if dirtyBytes > pageBytes {
		dirtyBytes = pageBytes
	}
	span := c.DiffCreateMax - c.DiffCreateMin
	return c.DiffCreateMin + sim.Time(int64(span)*int64(dirtyBytes)/int64(pageBytes))
}

// Copy returns the local memory-copy cost for n bytes.
func (c CostModel) Copy(n int) sim.Time { return sim.Time(int64(c.CopyPerByte) * int64(n)) }
