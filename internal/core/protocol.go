package core

import (
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Protocol is the coherence protocol interface. Cashmere and TreadMarks
// implement it; the kernel invokes it from the shared-memory access path and
// the synchronization entry points. All methods run on the calling
// processor's goroutine and charge costs to that processor.
type Protocol interface {
	// Name identifies the protocol variant (e.g. "csm_poll").
	Name() string
	// Setup allocates protocol-global state (directories, lock arrays).
	// Called once before processors start.
	Setup(rt *Runtime)
	// OnReadFault handles a read access to a page without read permission.
	// On return the page must be readable on p.
	OnReadFault(p *Proc, page int)
	// OnWriteFault handles a write access to a page without write
	// permission. On return the page must be writable on p.
	OnWriteFault(p *Proc, page int)
	// OnSharedWrite runs after every successful shared-memory store
	// (Cashmere doubles the write to the home node). Only called when
	// WantsWriteHook reports true.
	OnSharedWrite(p *Proc, addr Addr, size int)
	// WantsWriteHook reports whether OnSharedWrite must be invoked; keeps
	// the store fast path free of an interface call for protocols that do
	// not need it.
	WantsWriteHook() bool
	// Lock acquires the application lock with the given id.
	Lock(p *Proc, id int)
	// Unlock releases the application lock with the given id.
	Unlock(p *Proc, id int)
	// Barrier blocks until all compute processors reach barrier id.
	Barrier(p *Proc, id int)
	// Service handles one protocol request directed at processor p.
	Service(p *Proc, m sim.Msg, req msg.Request)
	// Finalize runs when a processor's application body has completed.
	Finalize(p *Proc)
	// Counters returns protocol-specific aggregate counters for reporting.
	Counters() map[string]int64
}

// DomainSafety is an optional interface a Protocol may implement to declare
// whether its host-level state sharing is confined to scheduling domains. The
// node-parallel engine (sim.SetParallel) runs each node's processors on a
// separate host goroutine concurrently with the other nodes; that is only
// sound if every piece of Go state a protocol touches is either private to
// one node or reached through the simulator's cross-domain channels
// (timestamped messages carrying at least the declared lookahead). Protocols
// that mutate cluster-global Go structures directly from the accessing
// processor — remote home-node frames, global directories, shared lock words,
// the interconnect link-occupancy model — must answer false, and core.Run then
// falls back to the sequential engine regardless of Config.Parallel.
//
// Protocols that do not implement the interface are treated as unsafe.
type DomainSafety interface {
	// DomainSafe reports whether the protocol's Go-level state accesses are
	// confined to the accessing processor's node (scheduling domain).
	DomainSafe() bool
}

// SchedulePerturbable is an optional interface a Protocol may implement to
// declare its legal cost range under schedule perturbation
// (sim.Schedule.CostJitter): the maximum fraction by which every charged
// operation cost may be inflated without making the protocol's behavior
// illegal. The declaration is a statement about timing-independence: a
// protocol may answer a non-zero tolerance only if no decision it takes
// depends on an operation completing within a bounded virtual time — all
// waiting is condition-based (spin until the flag flips, block until the
// reply arrives), never timeout-based. core.Run refuses to run a perturbed
// schedule against a protocol that does not implement this interface, and
// rejects any requested jitter above the declared tolerance.
type SchedulePerturbable interface {
	// MaxCostJitter returns the largest legal Schedule.CostJitter for this
	// protocol (0 = cannot be perturbed).
	MaxCostJitter() float64
}

// NullProtocol runs shared memory with no coherence actions and no cost:
// every fault maps the page read-write from the initial image. It is the
// sequential baseline ("running each application sequentially without
// linking it to either TreadMarks or Cashmere", §4.2) and is only valid on a
// single processor.
type NullProtocol struct {
	rt *Runtime
}

// NewNullProtocol is a Config.NewProtocol factory for the baseline.
func NewNullProtocol(rt *Runtime) Protocol { return &NullProtocol{rt: rt} }

// Name implements Protocol.
func (n *NullProtocol) Name() string { return "sequential" }

// Setup implements Protocol.
func (n *NullProtocol) Setup(rt *Runtime) {
	if len(rt.ComputeProcs()) != 1 {
		panic("core: NullProtocol requires exactly one compute processor")
	}
}

func (n *NullProtocol) mapPage(p *Proc, page int) {
	fr := p.Space().EnsureFrame(page)
	if img := n.rt.InitialPage(page); img != nil {
		copy(fr, img)
	}
	p.Space().SetProt(page, vm.ProtReadWrite)
}

// OnReadFault implements Protocol.
func (n *NullProtocol) OnReadFault(p *Proc, page int) { n.mapPage(p, page) }

// OnWriteFault implements Protocol.
func (n *NullProtocol) OnWriteFault(p *Proc, page int) { n.mapPage(p, page) }

// OnSharedWrite implements Protocol.
func (n *NullProtocol) OnSharedWrite(p *Proc, addr Addr, size int) {}

// WantsWriteHook implements Protocol.
func (n *NullProtocol) WantsWriteHook() bool { return false }

// Lock implements Protocol (single processor: uncontended, free).
func (n *NullProtocol) Lock(p *Proc, id int) {}

// Unlock implements Protocol.
func (n *NullProtocol) Unlock(p *Proc, id int) {}

// Barrier implements Protocol (single processor: immediate).
func (n *NullProtocol) Barrier(p *Proc, id int) {}

// Service implements Protocol.
func (n *NullProtocol) Service(p *Proc, m sim.Msg, req msg.Request) {
	panic("core: NullProtocol received a request")
}

// Finalize implements Protocol.
func (n *NullProtocol) Finalize(p *Proc) {}

// Counters implements Protocol.
func (n *NullProtocol) Counters() map[string]int64 { return nil }

// MaxCostJitter implements SchedulePerturbable. The baseline runs a single
// processor with zero-cost synchronization: there is no timing-dependent
// decision anywhere, so any in-range jitter is legal.
func (n *NullProtocol) MaxCostJitter() float64 { return 1.0 }

// DomainSafe implements DomainSafety. The baseline is trivially confined: it
// runs exactly one compute processor and only reads the immutable initial
// image, so there is no cross-node Go state at all. (With a single node the
// engine never parallelizes anyway; the declaration records the analysis.)
func (n *NullProtocol) DomainSafe() bool { return true }
