package core

import (
	"fmt"

	"repro/internal/vm"
)

// Addr is a byte address in the shared virtual address space, which starts
// at 0 and is identical on every processor.
type Addr = uint64

// Layout is a deterministic bump allocator for the shared address space.
// Applications build one layout up front (before processors start); because
// allocation order is fixed, every processor computes identical addresses
// and no allocation messages are needed at run time — matching the static
// shared-segment setup of the original systems.
type Layout struct {
	next Addr
}

// NewLayout returns an empty layout.
func NewLayout() *Layout { return &Layout{} }

// Alloc reserves size bytes with the given alignment (which must be a power
// of two) and returns the base address.
func (l *Layout) Alloc(size int, align int) Addr {
	if size < 0 {
		panic(fmt.Sprintf("core: Alloc size %d", size))
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("core: Alloc align %d must be a positive power of two", align))
	}
	a := uint64(align)
	l.next = (l.next + a - 1) &^ (a - 1)
	base := l.next
	l.next += uint64(size)
	return base
}

// AllocPageAligned reserves size bytes starting on a page boundary. Used for
// arrays whose partitioning should not share pages with neighbours.
func (l *Layout) AllocPageAligned(size int) Addr { return l.Alloc(size, vm.PageSize) }

// Size returns the total bytes allocated so far.
func (l *Layout) Size() int { return int(l.next) }

// Pages returns the number of pages needed to cover the layout.
func (l *Layout) Pages() int { return (l.Size() + vm.PageSize - 1) / vm.PageSize }

// F64 allocates an n-element float64 array (8-byte aligned, contiguous).
func (l *Layout) F64(n int) F64Array {
	return F64Array{Base: l.Alloc(8*n, 8), N: n}
}

// F64Pages allocates an n-element float64 array starting on a page boundary.
func (l *Layout) F64Pages(n int) F64Array {
	return F64Array{Base: l.AllocPageAligned(8 * n), N: n}
}

// I64 allocates an n-element int64 array (8-byte aligned, contiguous).
func (l *Layout) I64(n int) I64Array {
	return I64Array{Base: l.Alloc(8*n, 8), N: n}
}

// I64Pages allocates an n-element int64 array starting on a page boundary.
func (l *Layout) I64Pages(n int) I64Array {
	return I64Array{Base: l.AllocPageAligned(8 * n), N: n}
}

// F64Array is a typed view of shared memory.
type F64Array struct {
	Base Addr
	N    int
}

// Addr returns the address of element i.
func (a F64Array) Addr(i int) Addr {
	if i < 0 || i >= a.N {
		panic(fmt.Sprintf("core: F64Array index %d out of range [0,%d)", i, a.N))
	}
	return a.Base + Addr(i)*8
}

// At reads element i through processor p.
func (a F64Array) At(p *Proc, i int) float64 { return p.ReadF64(a.Addr(i)) }

// Set writes element i through processor p.
func (a F64Array) Set(p *Proc, i int, v float64) { p.WriteF64(a.Addr(i), v) }

// Init writes element i into the initial image (untimed setup).
func (a F64Array) Init(w *ImageWriter, i int, v float64) { w.WriteF64(a.Addr(i), v) }

// I64Array is a typed view of shared memory.
type I64Array struct {
	Base Addr
	N    int
}

// Addr returns the address of element i.
func (a I64Array) Addr(i int) Addr {
	if i < 0 || i >= a.N {
		panic(fmt.Sprintf("core: I64Array index %d out of range [0,%d)", i, a.N))
	}
	return a.Base + Addr(i)*8
}

// At reads element i through processor p.
func (a I64Array) At(p *Proc, i int) int64 { return p.ReadI64(a.Addr(i)) }

// Set writes element i through processor p.
func (a I64Array) Set(p *Proc, i int, v int64) { p.WriteI64(a.Addr(i), v) }

// Init writes element i into the initial image (untimed setup).
func (a I64Array) Init(w *ImageWriter, i int, v int64) { w.WriteI64(a.Addr(i), v) }
