package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Quantum bounds how far a processor's clock may run ahead between
// scheduling points; it also slices Compute so interrupt-mode requests are
// noticed with bounded delay (the real interrupt latency dominates it).
const Quantum = 5 * sim.Microsecond

// Proc is one simulated processor's DSM context: the simulation processor,
// its page table and frames, its L1 model, its messaging endpoint, and its
// statistics. Application bodies receive a *Proc and perform all shared
// accesses, synchronization, and computation through it.
type Proc struct {
	sp    *sim.Proc
	ep    *msg.Endpoint
	space *vm.Space
	l1    *cache.L1
	rt    *Runtime

	rank  int // compute rank, or -1 for a dedicated protocol processor
	costs CostModel

	proto     Protocol
	writeHook bool

	// doubleBit/mcRegion synthesize the cache-visible address of a doubled
	// write (paper §3.3.1): the MC copy region is far away (different tag)
	// with the page-offset index bit flipped.
	stats    Stats
	snap     Stats // frozen copy taken at Finish
	finished bool

	checks map[string]float64
}

// Rank returns the processor's compute rank (0-based), or -1 for a dedicated
// protocol processor.
func (p *Proc) Rank() int { return p.rank }

// NumProcs returns the number of compute processors in the run.
func (p *Proc) NumProcs() int { return len(p.rt.computeProcs) }

// Node returns the processor's SMP node.
func (p *Proc) Node() int { return p.sp.Node }

// Sim returns the underlying simulation processor.
func (p *Proc) Sim() *sim.Proc { return p.sp }

// EP returns the processor's messaging endpoint (for protocol use).
func (p *Proc) EP() *msg.Endpoint { return p.ep }

// Space returns the processor's page table (for protocol use).
func (p *Proc) Space() *vm.Space { return p.space }

// Runtime returns the owning runtime.
func (p *Proc) Runtime() *Runtime { return p.rt }

// Costs returns the cost model.
func (p *Proc) Costs() CostModel { return p.costs }

// Stats returns the processor's statistics (live; snapshot at Finish).
func (p *Proc) Stats() *Stats { return &p.stats }

// Charge adds virtual time in the given category.
func (p *Proc) Charge(cat Category, d sim.Time) {
	p.sp.Advance(d)
	p.stats.Cat[cat] += d
}

// ChargeProtocol is shorthand for Charge(CatProtocol, d), the common case in
// protocol code.
func (p *Proc) ChargeProtocol(d sim.Time) { p.Charge(CatProtocol, d) }

// checkpoint services eligible incoming requests and yields if the clock has
// run a quantum ahead. Called from poll points, compute slices, and every
// shared access.
func (p *Proc) checkpoint() {
	p.ep.PollVisible()
	p.sp.YieldIfQuantum(Quantum)
}

// Compute charges d nanoseconds of application computation, sliced into
// quanta with checkpoints so that the processor stays responsive to
// protocol requests.
func (p *Proc) Compute(d sim.Time) {
	for d > 0 {
		step := d
		if step > Quantum {
			step = Quantum
		}
		p.Charge(CatUser, step)
		p.checkpoint()
		d -= step
	}
}

// PollPoint marks an instrumented polling site (top of an application loop,
// §3.2). In polling variants it charges the check cost; in all variants it
// is a checkpoint.
func (p *Proc) PollPoint() {
	if p.rt.cfg.PollingInstrumented {
		p.Charge(CatPolling, p.costs.PollCheck)
	}
	p.checkpoint()
}

// access charges one shared-memory reference, including the L1 model.
func (p *Proc) access(a Addr) {
	c := p.costs.MemAccess
	if p.l1 != nil && !p.l1.Access(a) {
		c += p.costs.CacheMiss
	}
	p.Charge(CatUser, c)
	p.checkpoint()
}

// readable returns the frame for the page containing a, running the
// protocol's read-fault handler first if the page is not readable.
func (p *Proc) readable(a Addr) []byte {
	page := vm.PageOf(a)
	if !p.space.Prot(page).CanRead() {
		p.stats.ReadFaults++
		p.sp.Yield() // faults are globally visible protocol actions
		p.proto.OnReadFault(p, page)
		if !p.space.Prot(page).CanRead() {
			panic(fmt.Sprintf("core: proc %d page %d still unreadable after fault", p.sp.ID, page))
		}
	}
	fr := p.space.Frame(page)
	if fr == nil {
		fr = p.materialize(page)
	}
	return fr
}

// writable returns the frame for the page containing a, running the
// protocol's write-fault handler first if the page is not writable.
func (p *Proc) writable(a Addr) []byte {
	page := vm.PageOf(a)
	if !p.space.Prot(page).CanWrite() {
		p.stats.WriteFaults++
		p.sp.Yield()
		p.proto.OnWriteFault(p, page)
		if !p.space.Prot(page).CanWrite() {
			panic(fmt.Sprintf("core: proc %d page %d still unwritable after fault", p.sp.ID, page))
		}
	}
	fr := p.space.Frame(page)
	if fr == nil {
		fr = p.materialize(page)
	}
	return fr
}

// materialize lazily creates a frame for a page whose protection allows
// access but whose data was never copied in: the page still holds the
// initial image distributed (untimed) at startup, as in real TreadMarks,
// where every processor starts with an identical valid copy. No cost is
// charged — the copy logically happened during setup.
func (p *Proc) materialize(page int) []byte {
	fr := p.space.EnsureFrame(page)
	if img := p.rt.InitialPage(page); img != nil {
		copy(fr, img)
	}
	return fr
}

// MaterializedFrame returns the page's local frame, creating it from the
// initial image if it was never touched. Protocol fault handlers use this
// when they need the page contents (e.g. to twin a page whose first local
// access is the faulting write).
func (p *Proc) MaterializedFrame(page int) []byte {
	if fr := p.space.Frame(page); fr != nil {
		return fr
	}
	return p.materialize(page)
}

// ReadF64 reads a float64 from shared memory.
func (p *Proc) ReadF64(a Addr) float64 {
	fr := p.readable(a)
	p.access(a)
	return math.Float64frombits(binary.LittleEndian.Uint64(fr[vm.Offset(a):]))
}

// WriteF64 writes a float64 to shared memory.
func (p *Proc) WriteF64(a Addr, v float64) {
	fr := p.writable(a)
	binary.LittleEndian.PutUint64(fr[vm.Offset(a):], math.Float64bits(v))
	p.access(a)
	if p.writeHook {
		p.proto.OnSharedWrite(p, a, 8)
	}
}

// ReadI64 reads an int64 from shared memory.
func (p *Proc) ReadI64(a Addr) int64 {
	fr := p.readable(a)
	p.access(a)
	return int64(binary.LittleEndian.Uint64(fr[vm.Offset(a):]))
}

// WriteI64 writes an int64 to shared memory.
func (p *Proc) WriteI64(a Addr, v int64) {
	fr := p.writable(a)
	binary.LittleEndian.PutUint64(fr[vm.Offset(a):], uint64(v))
	p.access(a)
	if p.writeHook {
		p.proto.OnSharedWrite(p, a, 8)
	}
}

// CacheTouch runs an extra address through the L1 model without reading data
// (the doubled write's second store, charged by Cashmere).
func (p *Proc) CacheTouch(a uint64) bool {
	if p.l1 == nil {
		return true
	}
	return p.l1.Access(a)
}

// SpinWait polls cond until it returns true, servicing eligible protocol
// requests between polls (the paper hand-instruments the protocol libraries,
// so spin loops poll too) and advancing the clock with exponential backoff.
// The wait time lands in Comm&Wait (uncharged). SpinWait panics if no
// progress is made for a long virtual-time bound (protocol livelock).
func (p *Proc) SpinWait(what string, cond func() bool) {
	const (
		stepMin = 500 * sim.Nanosecond
		stepMax = 20 * sim.Microsecond
		// Long enough that heavy lock congestion (32 processors queueing on
		// millisecond critical sections under interrupt-based variants) is
		// not mistaken for a livelock.
		limit = 120 * sim.Second
	)
	deadline := p.sp.Now() + limit
	step := stepMin
	for !cond() {
		if p.sp.Now() > deadline {
			panic(fmt.Sprintf("core: proc %d spun %dns on %q without progress", p.sp.ID, limit, what))
		}
		p.ep.PollVisible()
		p.sp.Sleep(step)
		if step < stepMax {
			step *= 2
		}
	}
}

// Lock acquires application lock id.
func (p *Proc) Lock(id int) {
	p.stats.LockAcquires++
	p.sp.Yield()
	p.proto.Lock(p, id)
}

// Unlock releases application lock id.
func (p *Proc) Unlock(id int) {
	p.sp.Yield()
	p.proto.Unlock(p, id)
}

// Barrier blocks until all compute processors reach barrier id.
func (p *Proc) Barrier(id int) {
	p.stats.Barriers++
	p.sp.Yield()
	p.proto.Barrier(p, id)
}

// Finish snapshots the measurement point: the paper's execution times end at
// the final barrier; verification reads afterwards are neither timed nor
// counted. If the body never calls Finish, it is taken at body return.
func (p *Proc) Finish() {
	if p.finished {
		return
	}
	p.finished = true
	p.stats.FinishedAt = p.sp.Now()
	p.stats.Messages = p.ep.MessagesSent()
	p.stats.DataBytes = p.ep.BytesSent()
	if p.l1 != nil {
		p.stats.CacheHits = p.l1.Hits()
		p.stats.CacheMisses = p.l1.Misses()
	}
	p.snap = p.stats
}

// Snapshot returns the statistics frozen at Finish (the live statistics if
// Finish has not run yet).
func (p *Proc) Snapshot() Stats {
	if p.finished {
		return p.snap
	}
	return p.stats
}

// ReportCheck records a named validation value (e.g. a residual or checksum)
// surfaced in the run's Result. Typically called by rank 0 after Finish.
func (p *Proc) ReportCheck(name string, v float64) {
	if p.checks == nil {
		p.checks = make(map[string]float64)
	}
	p.checks[name] = v
}
