package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Quantum bounds how far a processor's clock may run ahead between
// scheduling points; it also slices Compute so interrupt-mode requests are
// noticed with bounded delay (the real interrupt latency dominates it).
const Quantum = 5 * sim.Microsecond

// tlbSize is the number of entries in the per-processor translation cache
// (direct-mapped by page number; must be a power of two). Sized so a stencil
// touching a handful of rows plus its write target stays fully cached.
const tlbSize = 16

// tlbEntry caches one page translation: the protection and frame observed at
// a given mapping epoch. The entry is valid only while the space's epoch is
// unchanged (any SetProt/DropFrame/frame allocation bumps it), which makes
// hits provably equivalent to a fresh table walk.
type tlbEntry struct {
	page  int
	epoch uint64
	prot  vm.Prot
	frame []byte
}

// Proc is one simulated processor's DSM context: the simulation processor,
// its page table and frames, its L1 model, its messaging endpoint, and its
// statistics. Application bodies receive a *Proc and perform all shared
// accesses, synchronization, and computation through it.
type Proc struct {
	sp    *sim.Proc
	ep    *msg.Endpoint
	space *vm.Space
	l1    *cache.L1
	rt    *Runtime

	rank  int // compute rank, or -1 for a dedicated protocol processor
	costs CostModel

	proto     Protocol
	writeHook bool

	// tlb is the translation fast path: sequential same-page accesses skip
	// the page-table walk and nil-frame check. noFastPath (SIM_NO_FASTPATH)
	// keeps the original walk-every-access path alive so tests can assert
	// the two produce byte-identical results.
	tlb        [tlbSize]tlbEntry
	noFastPath bool

	// doubleBit/mcRegion synthesize the cache-visible address of a doubled
	// write (paper §3.3.1): the MC copy region is far away (different tag)
	// with the page-offset index bit flipped.
	stats    Stats
	snap     Stats // frozen copy taken at Finish
	finished bool

	checks map[string]float64
}

// Rank returns the processor's compute rank (0-based), or -1 for a dedicated
// protocol processor.
func (p *Proc) Rank() int { return p.rank }

// NumProcs returns the number of compute processors in the run.
func (p *Proc) NumProcs() int { return len(p.rt.computeProcs) }

// Node returns the processor's SMP node.
func (p *Proc) Node() int { return p.sp.Node }

// Sim returns the underlying simulation processor.
func (p *Proc) Sim() *sim.Proc { return p.sp }

// EP returns the processor's messaging endpoint (for protocol use).
func (p *Proc) EP() *msg.Endpoint { return p.ep }

// Space returns the processor's page table (for protocol use).
func (p *Proc) Space() *vm.Space { return p.space }

// Runtime returns the owning runtime.
func (p *Proc) Runtime() *Runtime { return p.rt }

// Costs returns the cost model.
func (p *Proc) Costs() CostModel { return p.costs }

// Stats returns the processor's statistics (live; snapshot at Finish).
func (p *Proc) Stats() *Stats { return &p.stats }

// Charge adds virtual time in the given category.
func (p *Proc) Charge(cat Category, d sim.Time) {
	p.sp.Advance(d)
	p.stats.Cat[cat] += d
}

// ChargeProtocol is shorthand for Charge(CatProtocol, d), the common case in
// protocol code.
func (p *Proc) ChargeProtocol(d sim.Time) { p.Charge(CatProtocol, d) }

// checkpoint services eligible incoming requests and yields if the clock has
// run a quantum ahead. Called from poll points, compute slices, and every
// shared access. The quiet guard is exact — PollVisible is a no-op when no
// message is visible and YieldIfQuantum is a no-op under quantum — so
// skipping cannot change any virtual-time result.
func (p *Proc) checkpoint() {
	if !p.noFastPath && p.sp.CheckpointQuiet(Quantum) {
		return
	}
	p.ep.PollVisible()
	p.sp.YieldIfQuantum(Quantum)
}

// Compute charges d nanoseconds of application computation, sliced into
// quanta with checkpoints so that the processor stays responsive to
// protocol requests.
func (p *Proc) Compute(d sim.Time) {
	for d > 0 {
		step := d
		if step > Quantum {
			step = Quantum
		}
		p.Charge(CatUser, step)
		p.checkpoint()
		d -= step
	}
}

// PollPoint marks an instrumented polling site (top of an application loop,
// §3.2). In polling variants it charges the check cost; in all variants it
// is a checkpoint.
func (p *Proc) PollPoint() {
	if p.rt.cfg.PollingInstrumented {
		p.Charge(CatPolling, p.costs.PollCheck)
	}
	p.checkpoint()
}

// access charges one shared-memory reference, including the L1 model.
func (p *Proc) access(a Addr) {
	c := p.costs.MemAccess
	if p.l1 != nil && !p.l1.Access(a) {
		c += p.costs.CacheMiss
	}
	p.Charge(CatUser, c)
	p.checkpoint()
}

// fillTLB caches the translation for a page whose frame is materialized.
// The entry records the current epoch; any later mapping mutation on the
// space invalidates it wholesale.
func (p *Proc) fillTLB(page int, fr []byte) {
	if p.noFastPath {
		return
	}
	p.tlb[page&(tlbSize-1)] = tlbEntry{page: page, epoch: p.space.Epoch(), prot: p.space.Prot(page), frame: fr}
}

// readable returns the frame for the page containing a, running the
// protocol's read-fault handler first if the page is not readable.
func (p *Proc) readable(a Addr) []byte {
	page := vm.PageOf(a)
	if !p.noFastPath {
		if e := &p.tlb[page&(tlbSize-1)]; e.page == page && e.frame != nil &&
			e.epoch == p.space.Epoch() && e.prot.CanRead() {
			// Same mapping epoch: the walk below would observe exactly the
			// cached protection and frame.
			return e.frame
		}
	}
	if !p.space.Prot(page).CanRead() {
		p.stats.ReadFaults++
		p.sp.Yield() // faults are globally visible protocol actions
		p.proto.OnReadFault(p, page)
		if !p.space.Prot(page).CanRead() {
			panic(fmt.Sprintf("core: proc %d page %d still unreadable after fault", p.sp.ID, page))
		}
	}
	fr := p.space.Frame(page)
	if fr == nil {
		fr = p.materialize(page)
	}
	p.fillTLB(page, fr)
	return fr
}

// writable returns the frame for the page containing a, running the
// protocol's write-fault handler first if the page is not writable.
func (p *Proc) writable(a Addr) []byte {
	page := vm.PageOf(a)
	if !p.noFastPath {
		if e := &p.tlb[page&(tlbSize-1)]; e.page == page && e.frame != nil &&
			e.epoch == p.space.Epoch() && e.prot.CanWrite() {
			return e.frame
		}
	}
	if !p.space.Prot(page).CanWrite() {
		p.stats.WriteFaults++
		p.sp.Yield()
		p.proto.OnWriteFault(p, page)
		if !p.space.Prot(page).CanWrite() {
			panic(fmt.Sprintf("core: proc %d page %d still unwritable after fault", p.sp.ID, page))
		}
	}
	fr := p.space.Frame(page)
	if fr == nil {
		fr = p.materialize(page)
	}
	p.fillTLB(page, fr)
	return fr
}

// materialize lazily creates a frame for a page whose protection allows
// access but whose data was never copied in: the page still holds the
// initial image distributed (untimed) at startup, as in real TreadMarks,
// where every processor starts with an identical valid copy. No cost is
// charged — the copy logically happened during setup.
func (p *Proc) materialize(page int) []byte {
	fr := p.space.EnsureFrame(page)
	if img := p.rt.InitialPage(page); img != nil {
		copy(fr, img)
	}
	return fr
}

// MaterializedFrame returns the page's local frame, creating it from the
// initial image if it was never touched. Protocol fault handlers use this
// when they need the page contents (e.g. to twin a page whose first local
// access is the faulting write).
func (p *Proc) MaterializedFrame(page int) []byte {
	if fr := p.space.Frame(page); fr != nil {
		return fr
	}
	return p.materialize(page)
}

// ReadF64 reads a float64 from shared memory.
func (p *Proc) ReadF64(a Addr) float64 {
	fr := p.readable(a)
	p.access(a)
	return math.Float64frombits(binary.LittleEndian.Uint64(fr[vm.Offset(a):]))
}

// WriteF64 writes a float64 to shared memory.
func (p *Proc) WriteF64(a Addr, v float64) {
	fr := p.writable(a)
	binary.LittleEndian.PutUint64(fr[vm.Offset(a):], math.Float64bits(v))
	p.access(a)
	if p.writeHook {
		p.proto.OnSharedWrite(p, a, 8)
	}
}

// ReadI64 reads an int64 from shared memory.
func (p *Proc) ReadI64(a Addr) int64 {
	fr := p.readable(a)
	p.access(a)
	return int64(binary.LittleEndian.Uint64(fr[vm.Offset(a):]))
}

// WriteI64 writes an int64 to shared memory.
func (p *Proc) WriteI64(a Addr, v int64) {
	fr := p.writable(a)
	binary.LittleEndian.PutUint64(fr[vm.Offset(a):], uint64(v))
	p.access(a)
	if p.writeHook {
		p.proto.OnSharedWrite(p, a, 8)
	}
}

// ReadF64Range reads len(dst) consecutive float64 elements starting at a
// into dst. It is semantically identical to len(dst) individual ReadF64
// calls at a, a+8, ...: the same faults are taken, the same per-element
// access and L1 costs are charged in the same order, and the same
// checkpoints fire at the same clock values. The fast path checks
// protection once per page run instead of once per element, re-translating
// only when protocol work inside a checkpoint moved the mapping epoch.
func (p *Proc) ReadF64Range(a Addr, dst []float64) {
	if p.noFastPath {
		for i := range dst {
			dst[i] = p.ReadF64(a + Addr(i)*8)
		}
		return
	}
	i := 0
outer:
	for i < len(dst) {
		addr := a + Addr(i)*8
		fr := p.readable(addr)
		epoch := p.space.Epoch()
		off := vm.Offset(addr)
		run := (vm.PageSize - off) / 8
		if run <= 0 {
			// Element straddles the end of its page: defer to the scalar
			// path so the failure mode is identical.
			dst[i] = p.ReadF64(addr)
			i++
			continue
		}
		if rem := len(dst) - i; run > rem {
			run = rem
		}
		for k := 0; k < run; k++ {
			p.access(addr + Addr(k)*8)
			dst[i+k] = math.Float64frombits(binary.LittleEndian.Uint64(fr[off+8*k:]))
			if p.space.Epoch() != epoch {
				// A checkpoint inside access ran protocol work that changed
				// the mapping; re-translate before the next element.
				i += k + 1
				continue outer
			}
		}
		i += run
	}
}

// WriteF64Range writes len(src) consecutive float64 elements starting at a.
// Like ReadF64Range, it is bit-exact with the equivalent sequence of
// WriteF64 calls, including per-element write hooks for protocols that
// request them.
func (p *Proc) WriteF64Range(a Addr, src []float64) {
	if p.noFastPath {
		for i, v := range src {
			p.WriteF64(a+Addr(i)*8, v)
		}
		return
	}
	i := 0
outer:
	for i < len(src) {
		addr := a + Addr(i)*8
		fr := p.writable(addr)
		epoch := p.space.Epoch()
		off := vm.Offset(addr)
		run := (vm.PageSize - off) / 8
		if run <= 0 {
			p.WriteF64(addr, src[i])
			i++
			continue
		}
		if rem := len(src) - i; run > rem {
			run = rem
		}
		for k := 0; k < run; k++ {
			ea := addr + Addr(k)*8
			binary.LittleEndian.PutUint64(fr[off+8*k:], math.Float64bits(src[i+k]))
			p.access(ea)
			if p.writeHook {
				p.proto.OnSharedWrite(p, ea, 8)
			}
			if p.space.Epoch() != epoch {
				i += k + 1
				continue outer
			}
		}
		i += run
	}
}

// CacheTouch runs an extra address through the L1 model without reading data
// (the doubled write's second store, charged by Cashmere).
func (p *Proc) CacheTouch(a uint64) bool {
	if p.l1 == nil {
		return true
	}
	return p.l1.Access(a)
}

// SpinWait polls cond until it returns true, servicing eligible protocol
// requests between polls (the paper hand-instruments the protocol libraries,
// so spin loops poll too) and advancing the clock with exponential backoff.
// The wait time lands in Comm&Wait (uncharged). SpinWait panics if no
// progress is made for a long virtual-time bound (protocol livelock).
func (p *Proc) SpinWait(what string, cond func() bool) {
	const (
		stepMin = 500 * sim.Nanosecond
		stepMax = 20 * sim.Microsecond
		// Long enough that heavy lock congestion (32 processors queueing on
		// millisecond critical sections under interrupt-based variants) is
		// not mistaken for a livelock.
		limit = 120 * sim.Second
	)
	deadline := p.sp.Now() + limit
	step := stepMin
	// PollWait lets whichever goroutine dispatches this processor's queue
	// entry probe the condition inline, so a contended spin costs no host
	// goroutine switches. The closure must not yield or block: cond reads
	// memory (charging access costs) and PollVisible only services handlers
	// that charge and reply, which holds for every protocol that spins
	// (Cashmere's locks and barriers; TreadMarks waits in Recv instead).
	p.sp.PollWait(func() (bool, sim.Time) {
		if cond() {
			return true, 0
		}
		if p.sp.Now() > deadline {
			panic(fmt.Sprintf("core: proc %d spun %dns on %q without progress", p.sp.ID, limit, what))
		}
		p.ep.PollVisible()
		p.sp.Advance(step)
		if step < stepMax {
			step *= 2
		}
		return false, p.sp.Now()
	})
}

// Lock acquires application lock id.
func (p *Proc) Lock(id int) {
	p.stats.LockAcquires++
	p.sp.Yield()
	p.proto.Lock(p, id)
}

// Unlock releases application lock id.
func (p *Proc) Unlock(id int) {
	p.sp.Yield()
	p.proto.Unlock(p, id)
}

// Barrier blocks until all compute processors reach barrier id.
func (p *Proc) Barrier(id int) {
	p.stats.Barriers++
	p.sp.Yield()
	p.proto.Barrier(p, id)
}

// Finish snapshots the measurement point: the paper's execution times end at
// the final barrier; verification reads afterwards are neither timed nor
// counted. If the body never calls Finish, it is taken at body return.
func (p *Proc) Finish() {
	if p.finished {
		return
	}
	p.finished = true
	p.stats.FinishedAt = p.sp.Now()
	p.stats.Messages = p.ep.MessagesSent()
	p.stats.DataBytes = p.ep.BytesSent()
	if p.l1 != nil {
		p.stats.CacheHits = p.l1.Hits()
		p.stats.CacheMisses = p.l1.Misses()
	}
	p.snap = p.stats
}

// Snapshot returns the statistics frozen at Finish (the live statistics if
// Finish has not run yet).
func (p *Proc) Snapshot() Stats {
	if p.finished {
		return p.snap
	}
	return p.stats
}

// ReportCheck records a named validation value (e.g. a residual or checksum)
// surfaced in the run's Result. Typically called by rank 0 after Finish.
func (p *Proc) ReportCheck(name string, v float64) {
	if p.checks == nil {
		p.checks = make(map[string]float64)
	}
	p.checks[name] = v
}
