package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Config describes one simulated DSM run: cluster shape, protocol variant,
// and model parameters.
type Config struct {
	// Nodes and ProcsPerNode give the compute-processor layout (the paper's
	// configurations range from 1x1 to 8x4).
	Nodes        int
	ProcsPerNode int
	// DedicatedServer adds one extra processor per node that only services
	// remote requests (the csm_pp variant, emulating hardware remote reads).
	DedicatedServer bool
	// PollingInstrumented charges the poll-check cost at application poll
	// points (the polling variants' instrumentation overhead).
	PollingInstrumented bool
	// MC configures the Memory Channel model (used when Net selects it,
	// which the zero Net value does).
	MC interconnect.MCParams
	// Net selects the cluster interconnect. The zero value is the Memory
	// Channel (with the MC parameters above), so legacy configurations are
	// unchanged; other kinds carry their parameters inside the spec.
	Net interconnect.Spec
	// Msg configures the messaging layer (notification mechanism).
	Msg msg.Params
	// Costs is the operation cost model.
	Costs CostModel
	// Cache, if non-nil, enables the per-processor L1 model.
	Cache *cache.Config
	// NewProtocol constructs the coherence protocol for this run.
	NewProtocol func(rt *Runtime) Protocol
	// Variant is the reporting name (e.g. "csm_poll", "tmk_udp_int").
	Variant string
	// Parallel requests the node-parallel simulation engine for this run.
	// It only engages when the protocol declares itself domain-safe (see
	// DomainSafety) and the cluster has more than one node; otherwise the
	// run silently falls back to the sequential engine. Either way the
	// Result is identical byte for byte — parallel execution is an engine
	// implementation detail, never a model change.
	Parallel bool
	// Schedule requests a seed-derived perturbation of the simulated event
	// schedule (schedule-space exploration; internal/check, cmd/dsmcheck).
	// The zero value runs the canonical order. Run rejects a CostJitter
	// beyond the protocol's declared tolerance (SchedulePerturbable) — a
	// protocol that declares no tolerance cannot run perturbed at all.
	Schedule sim.Schedule
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.ProcsPerNode <= 0 {
		return fmt.Errorf("core: bad cluster shape %dx%d", c.Nodes, c.ProcsPerNode)
	}
	if err := c.clusterSpec().Validate(); err != nil {
		return err
	}
	if err := c.Msg.Validate(); err != nil {
		return err
	}
	if err := c.Costs.Validate(); err != nil {
		return err
	}
	if c.Cache != nil {
		if err := c.Cache.Validate(); err != nil {
			return err
		}
	}
	if c.NewProtocol == nil {
		return fmt.Errorf("core: NewProtocol not set")
	}
	if err := c.Schedule.Validate(); err != nil {
		return err
	}
	return nil
}

// clusterSpec is the validated cluster description Run builds the engine
// and interconnect from: ProcsPerNode counts every engine processor,
// including the dedicated protocol processor when the variant adds one.
func (c Config) clusterSpec() interconnect.ClusterSpec {
	ppn := c.ProcsPerNode
	if c.DedicatedServer {
		ppn++
	}
	return interconnect.ClusterSpec{Nodes: c.Nodes, ProcsPerNode: ppn, MC: c.MC, Net: c.Net}
}

// Program is one application: its shared-memory footprint, synchronization
// object counts, untimed initialization, and per-processor body.
type Program struct {
	// Name identifies the application ("SOR", "LU", ...).
	Name string
	// SharedBytes is the size of the shared segment the program uses.
	SharedBytes int
	// Locks and Barriers are the number of application lock and barrier ids
	// the body uses.
	Locks, Barriers int
	// Init writes initial shared data into the image (untimed; models setup
	// completed before the measured phase, after which first-touch home
	// assignment applies).
	Init func(w *ImageWriter)
	// Body runs on every compute processor.
	Body func(p *Proc)
}

// Result is the outcome of one run.
type Result struct {
	Program string
	Variant string
	// Procs is the number of compute processors.
	Procs int
	// Time is the parallel execution time: the maximum Finish time over
	// compute processors.
	Time sim.Time
	// PerProc holds each compute processor's statistics snapshot.
	PerProc []Stats
	// Total aggregates PerProc.
	Total Stats
	// Traffic is Memory Channel bytes by traffic class name.
	Traffic map[string]int64
	// Counters are protocol-specific aggregates.
	Counters map[string]int64
	// Checks are application-reported validation values.
	Checks map[string]float64

	// EngineParallel and EngineDomains record the engine mode the run
	// actually committed to (after domain-safety and cluster-shape gating).
	// They are observability only and are excluded from JSON so that
	// serialized results stay byte-identical across engine modes.
	EngineParallel bool `json:"-"`
	EngineDomains  int  `json:"-"`
	// Schedule records the perturbation the run executed under (zero value:
	// canonical order). Observability only, excluded from JSON: measured
	// result files never embed schedule metadata — a perturbed run's
	// serialized shape is indistinguishable from a canonical one, and cache
	// separation is the run key's job (internal/runner), not the payload's.
	Schedule sim.Schedule `json:"-"`
}

// Runtime wires one run together. Protocol implementations use its accessors
// to reach the cluster, the network, and the other processors.
type Runtime struct {
	cfg  Config
	prog *Program

	eng   *sim.Engine
	net   interconnect.Interconnect
	proto Protocol

	computeProcs []*Proc // by rank
	serverProcs  []*Proc // by node (nil entries when DedicatedServer off)
	allProcs     []*Proc // by engine proc id

	image    [][]byte // initial page contents; nil pages are all-zero
	numPages int

	finished int
	checks   map[string]float64
}

// Engine returns the simulation engine.
func (rt *Runtime) Engine() *sim.Engine { return rt.eng }

// Net returns the cluster interconnect (the Memory Channel model unless the
// configuration selected another kind).
func (rt *Runtime) Net() interconnect.Interconnect { return rt.net }

// Config returns the run configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Program returns the running program (for its lock/barrier counts).
func (rt *Runtime) Program() *Program { return rt.prog }

// NumPages returns the number of shared pages.
func (rt *Runtime) NumPages() int { return rt.numPages }

// ComputeProcs returns the compute processors in rank order.
func (rt *Runtime) ComputeProcs() []*Proc { return rt.computeProcs }

// ProcByRank returns the compute processor with the given rank.
func (rt *Runtime) ProcByRank(rank int) *Proc { return rt.computeProcs[rank] }

// ServerProc returns node's dedicated protocol processor, or nil.
func (rt *Runtime) ServerProc(node int) *Proc {
	if rt.serverProcs == nil {
		return nil
	}
	return rt.serverProcs[node]
}

// ProcBySimID returns the Proc wrapping the given engine processor id.
func (rt *Runtime) ProcBySimID(id int) *Proc { return rt.allProcs[id] }

// ComputeProcsOnNode returns the compute processors on the given node, in
// rank order.
func (rt *Runtime) ComputeProcsOnNode(node int) []*Proc {
	var out []*Proc
	for _, p := range rt.computeProcs {
		if p.sp.Node == node {
			out = append(out, p)
		}
	}
	return out
}

// InitialPage returns the initial image of a page, or nil if it was never
// initialized (all zeros).
func (rt *Runtime) InitialPage(page int) []byte {
	if page < 0 || page >= rt.numPages {
		panic(fmt.Sprintf("core: page %d out of range [0,%d)", page, rt.numPages))
	}
	return rt.image[page]
}

// ImageWriter writes the initial shared-memory image during untimed setup.
type ImageWriter struct {
	rt *Runtime
}

func (w *ImageWriter) page(a Addr) []byte {
	pg := vm.PageOf(a)
	if pg < 0 || pg >= w.rt.numPages {
		panic(fmt.Sprintf("core: init write at %#x outside shared segment (%d pages)", a, w.rt.numPages))
	}
	if w.rt.image[pg] == nil {
		w.rt.image[pg] = make([]byte, vm.PageSize)
	}
	return w.rt.image[pg]
}

// WriteF64 stores a float64 into the initial image.
func (w *ImageWriter) WriteF64(a Addr, v float64) {
	binary.LittleEndian.PutUint64(w.page(a)[vm.Offset(a):], math.Float64bits(v))
}

// WriteI64 stores an int64 into the initial image.
func (w *ImageWriter) WriteI64(a Addr, v int64) {
	binary.LittleEndian.PutUint64(w.page(a)[vm.Offset(a):], uint64(v))
}

// ReadF64 reads back from the initial image (useful in Init phases that
// build data incrementally).
func (w *ImageWriter) ReadF64(a Addr) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(w.page(a)[vm.Offset(a):]))
}

// ReadI64 reads back from the initial image.
func (w *ImageWriter) ReadI64(a Addr) int64 {
	return int64(binary.LittleEndian.Uint64(w.page(a)[vm.Offset(a):]))
}

// Run executes the program under the configuration and returns the result.
// Panics during protocol setup and program initialization are converted to
// errors (panics inside processor bodies are already captured by the engine).
func Run(cfg Config, prog *Program) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: %s on %s: setup panic: %v", prog.Name, cfg.Variant, r)
		}
	}()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prog.Body == nil {
		return nil, fmt.Errorf("core: program %q has no body", prog.Name)
	}
	cs := cfg.clusterSpec()
	eng, err := sim.NewEngine(cs.EngineConfig())
	if err != nil {
		return nil, err
	}
	net, err := cs.Build(eng)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:      cfg,
		prog:     prog,
		eng:      eng,
		net:      net,
		numPages: (prog.SharedBytes + vm.PageSize - 1) / vm.PageSize,
		checks:   make(map[string]float64),
	}
	rt.image = make([][]byte, rt.numPages)
	rt.allProcs = make([]*Proc, eng.NumProcs())
	if cfg.DedicatedServer {
		rt.serverProcs = make([]*Proc, cfg.Nodes)
	}

	noFastPath := !sim.FastPathEnabled()
	for _, sp := range eng.Procs() {
		ep, err := msg.NewEndpoint(sp, net, cfg.Msg)
		if err != nil {
			return nil, err
		}
		p := &Proc{
			sp:         sp,
			ep:         ep,
			space:      vm.NewSpace(rt.numPages),
			rt:         rt,
			costs:      cfg.Costs,
			rank:       -1,
			noFastPath: noFastPath,
		}
		if cfg.Cache != nil {
			l1, err := cache.New(*cfg.Cache)
			if err != nil {
				return nil, err
			}
			p.l1 = l1
		}
		if sp.CPU < cfg.ProcsPerNode {
			p.rank = len(rt.computeProcs)
			rt.computeProcs = append(rt.computeProcs, p)
		} else {
			rt.serverProcs[sp.Node] = p
		}
		rt.allProcs[sp.ID] = p
	}

	rt.proto = cfg.NewProtocol(rt)

	// Engine-mode selection. Parallel execution is requested by the config
	// (or the SIM_PARALLEL environment override) but gated on the protocol
	// declaring its host-level state domain-confined; protocols that do not
	// implement DomainSafety are treated as unsafe. The explicit SetParallel
	// also suppresses an environment request the protocol cannot honor. The
	// lookahead is owned by the network model: no cross-node interaction the
	// interconnect mediates arrives sooner than MinCrossNodeLatency.
	safe := false
	if ds, ok := rt.proto.(DomainSafety); ok {
		safe = ds.DomainSafe()
	}
	eng.SetParallel((cfg.Parallel || sim.ParallelRequested()) && safe)
	if safe {
		eng.SetLookahead(net.MinCrossNodeLatency())
	}
	if cfg.Schedule.Enabled() {
		// A perturbed schedule stretches protocol operation costs; that is
		// only legal inside the range the protocol itself declares tolerable.
		// The engine then pins the sequential slow path for the run (see
		// sim.Engine.SetSchedule), overriding the parallel request above.
		sp, ok := rt.proto.(SchedulePerturbable)
		if !ok {
			return nil, fmt.Errorf("core: %s on %s: protocol declares no schedule-perturbation tolerance; cannot run perturbed",
				prog.Name, cfg.Variant)
		}
		if max := sp.MaxCostJitter(); cfg.Schedule.CostJitter > max {
			return nil, fmt.Errorf("core: %s on %s: schedule cost jitter %v exceeds the protocol's declared tolerance %v",
				prog.Name, cfg.Variant, cfg.Schedule.CostJitter, max)
		}
		eng.SetSchedule(cfg.Schedule)
	}

	rt.proto.Setup(rt)
	for _, p := range rt.allProcs {
		p.proto = rt.proto
		p.writeHook = rt.proto.WantsWriteHook()
		pp := p
		p.ep.SetHandler(func(m sim.Msg, req msg.Request) {
			rt.proto.Service(pp, m, req)
		})
	}

	if prog.Init != nil {
		prog.Init(&ImageWriter{rt: rt})
	}

	for _, p := range rt.computeProcs {
		pp := p
		eng.Go(p.sp, func(sp *sim.Proc) {
			prog.Body(pp)
			pp.Finish()
			rt.proto.Finalize(pp)
			rt.procDone(pp)
		})
	}
	if cfg.DedicatedServer {
		for _, p := range rt.serverProcs {
			pp := p
			eng.Go(p.sp, func(sp *sim.Proc) {
				pp.ep.ServeUntilShutdown()
			})
		}
	}

	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("core: %s on %s: %w", prog.Name, cfg.Variant, err)
	}
	return rt.result(), nil
}

// procDone runs at the end of each compute body: the last processor to
// finish releases everyone parked in a service loop.
func (rt *Runtime) procDone(p *Proc) {
	for name, v := range p.checks {
		rt.checks[name] = v
	}
	rt.finished++
	if rt.finished < len(rt.computeProcs) {
		// Keep servicing protocol requests (page fetches, diff requests)
		// until the whole run completes.
		p.ep.ServeUntilShutdown()
		return
	}
	for _, other := range rt.allProcs {
		if other != p {
			p.ep.Shutdown(other.ep)
		}
	}
}

func (rt *Runtime) result() *Result {
	res := &Result{
		Program:  rt.prog.Name,
		Variant:  rt.cfg.Variant,
		Procs:    len(rt.computeProcs),
		Traffic:  make(map[string]int64),
		Counters: rt.proto.Counters(),
		Checks:   rt.checks,

		EngineParallel: rt.eng.ParallelActive(),
		EngineDomains:  rt.eng.Domains(),
		Schedule:       rt.cfg.Schedule,
	}
	for _, p := range rt.computeProcs {
		st := p.Snapshot()
		res.PerProc = append(res.PerProc, st)
		res.Total.Add(&st)
		if st.FinishedAt > res.Time {
			res.Time = st.FinishedAt
		}
	}
	for tc := interconnect.TrafficClass(0); tc < interconnect.NumTrafficClasses; tc++ {
		res.Traffic[tc.String()] = rt.net.TrafficBytes(tc)
	}
	return res
}
