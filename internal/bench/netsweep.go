package bench

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/interconnect"
	"repro/internal/runner"
)

// The interconnect sweep goes beyond the paper's 8-node AlphaServer cluster:
// it fixes one compute processor per node and scales the node count 8 -> 64
// under every interconnect model, asking how the protocols behave when the
// fabric — not the node — is the variable. It is deliberately not part of
// -all: the paper's evaluation is Memory Channel only, and the -all output
// is pinned by golden tests.

// NetSweepNodes is the node-count ladder: one compute processor per node
// keeps Cashmere inside its 64-processor sharing-set bitmask at the top end.
var NetSweepNodes = []int{8, 16, 32, 64}

// NetSweepVariants are the protocols the sweep contrasts: one Cashmere
// configuration (which uses one-sided remote page reads where the fabric
// offers them) and one TreadMarks configuration.
var NetSweepVariants = []string{"csm_poll", "tmk_mc_poll"}

// netSweepApps defaults the sweep to SOR: with three interconnects, four
// node counts, and two variants per application, a full-app sweep would
// dwarf the paper tables. It must see the options BEFORE defaults(), which
// expands an empty Apps to all eight applications.
func netSweepApps(opts Options) []string {
	if len(opts.Apps) > 0 {
		return opts.Apps
	}
	return []string{"SOR"}
}

// netSweepSpec pins the explicit nodes x 1 shape and selects the
// interconnect; the Memory Channel stays the zero spec so its runs share
// cache entries with every other Memory Channel table.
func netSweepSpec(app, variant string, nodes int, kind interconnect.Kind, opts Options) runner.RunSpec {
	s := runner.RunSpec{App: app, Variant: variant, Nodes: nodes, PPN: 1, Size: opts.Size, Opts: opts.VariantOpts}
	if kind != interconnect.MemoryChannel {
		s.Opts.Net = &interconnect.Spec{Kind: kind}
	}
	return s
}

// NetSweepSpecs enumerates the interconnect x node-count sweep.
func NetSweepSpecs(opts Options) []runner.RunSpec {
	sweepApps := netSweepApps(opts)
	opts = opts.defaults()
	var specs []runner.RunSpec
	for _, app := range sweepApps {
		for _, v := range NetSweepVariants {
			for _, nodes := range NetSweepNodes {
				for _, kind := range interconnect.Kinds {
					specs = append(specs, netSweepSpec(app, v, nodes, kind, opts))
				}
			}
		}
	}
	return specs
}

// NetSweepRender formats one block per application and variant: execution
// time in seconds per node count (rows) and interconnect (columns).
func NetSweepRender(w io.Writer, opts Options, rs *runner.ResultSet) error {
	sweepApps := netSweepApps(opts)
	opts = opts.defaults()
	for _, app := range sweepApps {
		for _, v := range NetSweepVariants {
			header(w, fmt.Sprintf("Interconnect sweep: %s / %s (1 proc/node, seconds)", app, v))
			fmt.Fprintf(w, "%-8s", "nodes")
			for _, kind := range interconnect.Kinds {
				fmt.Fprintf(w, "%12s", string(kind))
			}
			fmt.Fprintln(w)
			for _, nodes := range NetSweepNodes {
				fmt.Fprintf(w, "%-8d", nodes)
				for _, kind := range interconnect.Kinds {
					res, err := rs.Get(netSweepSpec(app, v, nodes, kind, opts))
					if errors.Is(err, runner.ErrInfeasible) {
						fmt.Fprintf(w, "%12s", "-")
						continue
					}
					if err != nil {
						return fmt.Errorf("%s on %s, %d nodes, %s: %w", app, v, nodes, kind, err)
					}
					fmt.Fprintf(w, "%12.3f", seconds(res.Time))
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}

// NetSweep plans, executes, and renders the interconnect sweep in one call.
func NetSweep(w io.Writer, opts Options) error {
	rs, err := execute(NetSweepSpecs(opts))
	if err != nil {
		return err
	}
	return NetSweepRender(w, opts, rs)
}
