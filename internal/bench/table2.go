package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/runner"
	"repro/internal/variants"
)

// Table2Specs enumerates Table 2's runs: the sequential baseline of every
// application. These are the same specs Figure 5 and the ablations key
// their baselines on, so a combined plan simulates each exactly once.
func Table2Specs(opts Options) []runner.RunSpec {
	opts = opts.defaults()
	var specs []runner.RunSpec
	for _, name := range opts.Apps {
		specs = append(specs, spec(name, variants.Sequential, 1, opts))
	}
	return specs
}

// Table2Render reproduces the paper's Table 2: data set sizes and sequential
// execution time of each application, measured without linking to either
// protocol (the NullProtocol baseline).
func Table2Render(w io.Writer, opts Options, rs *runner.ResultSet) error {
	opts = opts.defaults()
	header(w, "Table 2: Data set sizes and sequential execution time")
	fmt.Fprintf(w, "%-8s  %-34s %14s %12s\n", "Program", "Problem Size", "Shared (MB)", "Time (s)")
	for _, name := range opts.Apps {
		entry, err := apps.Get(name)
		if err != nil {
			return err
		}
		res, err := rs.Get(spec(name, variants.Sequential, 1, opts))
		if err != nil {
			return fmt.Errorf("%s sequential: %w", name, err)
		}
		prog := entry.New(opts.Size)
		fmt.Fprintf(w, "%-8s  %-34s %14.2f %12.3f\n",
			name, entry.Problem(opts.Size),
			float64(prog.SharedBytes)/(1<<20), seconds(res.Time))
	}
	return nil
}

// Table2 plans, executes, and renders Table 2 in one call.
func Table2(w io.Writer, opts Options) error {
	rs, err := execute(Table2Specs(opts))
	if err != nil {
		return err
	}
	return Table2Render(w, opts, rs)
}
