package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/variants"
)

// Table2 reproduces the paper's Table 2: data set sizes and sequential
// execution time of each application, measured without linking to either
// protocol (the NullProtocol baseline).
func Table2(w io.Writer, opts Options) error {
	opts = opts.defaults()
	header(w, "Table 2: Data set sizes and sequential execution time")
	fmt.Fprintf(w, "%-8s  %-34s %14s %12s\n", "Program", "Problem Size", "Shared (MB)", "Time (s)")
	for _, name := range opts.Apps {
		entry, err := apps.Get(name)
		if err != nil {
			return err
		}
		res, err := runApp(name, variants.Sequential, 1, opts.Size, opts.VariantOpts)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", name, err)
		}
		prog := entry.New(opts.Size)
		fmt.Fprintf(w, "%-8s  %-34s %14.2f %12.3f\n",
			name, entry.Problem(opts.Size),
			float64(prog.SharedBytes)/(1<<20), seconds(res.Time))
	}
	return nil
}
