package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
)

// Costs prints the §4.1 basic operation costs the model is calibrated to,
// next to the paper's measured values, so calibration drift is visible.
func Costs(w io.Writer) {
	c := core.DefaultCosts()
	mc := interconnect.MCFirstGeneration()
	mp := msg.DefaultParams(msg.ModePoll)
	header(w, "Basic operation costs (model vs paper §4.1)")
	rows := []struct {
		name  string
		model string
		paper string
	}{
		{"Memory protection change", fmt.Sprintf("%.0f us", us(c.ProtChange)), "62 us"},
		{"Page fault delivery", fmt.Sprintf("%.0f us", us(c.PageFault)), "9 us fault + 69 us signal"},
		{"Local signal delivery", fmt.Sprintf("%.0f us", us(mp.LocalSignalCost)), "69 us"},
		{"Remote signal (sender / end-to-end)", fmt.Sprintf("%.0f us / %.0f us", us(mc.InterruptSendCost), us(mc.InterruptLatency)), "5 us / ~1 ms"},
		{"MC write latency", fmt.Sprintf("%.1f us", us(mc.Latency)), "5.2 us"},
		{"MC per-link bandwidth", fmt.Sprintf("%.0f MB/s", float64(mc.LinkBandwidth)/1e6), "~30 MB/s"},
		{"MC aggregate bandwidth", fmt.Sprintf("%.0f MB/s", float64(mc.AggregateBandwidth)/1e6), "~32 MB/s"},
		{"Directory mod (locked / unlocked)", fmt.Sprintf("%.0f us / %.0f us", us(c.DirectoryModLocked), us(c.DirectoryMod)), "16 us / 5 us"},
		{"Twin creation (8 KB page)", fmt.Sprintf("%.0f us", us(c.TwinCopy)), "362 us"},
		{"Diff creation", fmt.Sprintf("%.0f-%.0f us", us(c.DiffCreateMin), us(c.DiffCreateMax)), "29-53 us"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-38s %-24s (paper: %s)\n", r.name, r.model, r.paper)
	}
}
