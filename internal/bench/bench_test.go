package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/variants"
)

func TestCostsPrints(t *testing.T) {
	var buf bytes.Buffer
	Costs(&buf)
	for _, want := range []string{"5.2 us", "62 us", "30 MB/s", "362 us"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("costs output missing %q", want)
		}
	}
}

func TestTable2Small(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{Size: apps.SizeSmall, Apps: []string{"SOR", "Water"}}
	if err := Table2(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SOR", "Water", "Problem Size"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5SmallSubset(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{
		Size:     apps.SizeSmall,
		Apps:     []string{"SOR"},
		Procs:    []int{1, 4},
		Variants: []string{"csm_poll", "tmk_mc_poll"},
	}
	if err := Fig5(&buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SOR speedups") {
		t.Errorf("fig5 output:\n%s", buf.String())
	}
}

func TestFig5InfeasibleMarked(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{
		Size:     apps.SizeSmall,
		Apps:     []string{"Water"},
		Procs:    []int{32},
		Variants: []string{"csm_pp"},
	}
	if err := Fig5(&buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Error("csm_pp at 32 not marked infeasible")
	}
}

func TestTable3AndFig6Small(t *testing.T) {
	opts := Options{Size: apps.SizeSmall, Apps: []string{"Water"}}
	var buf bytes.Buffer
	if err := Table3(&buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Page transfers") {
		t.Errorf("table 3 output:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig6(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Water", "CSM", "TMK", "Comm&Wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3ProcsRule(t *testing.T) {
	if table3Procs("Barnes") != 16 || table3Procs("SOR") != 32 {
		t.Error("Table 3 processor rule wrong")
	}
}

func TestMicrobenchmarksRun(t *testing.T) {
	if v, err := measureLock("csm_poll", variants.Options{}); err != nil || v <= 0 {
		t.Errorf("lock microbench: %v %v", v, err)
	}
	if v, err := measureBarrier("tmk_mc_poll", 2, variants.Options{}); err != nil || v <= 0 {
		t.Errorf("barrier microbench: %v %v", v, err)
	}
	if v, err := measurePageTransfer("csm_poll", variants.Options{}); err != nil || v <= 0 {
		t.Errorf("page microbench: %v %v", v, err)
	}
}

// TestTable1Shape checks the paper's qualitative Table 1 relationships.
func TestTable1Shape(t *testing.T) {
	csmLock, err := measureLock("csm_poll", variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmkIntLock, err := measureLock("tmk_mc_int", variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmkPollLock, err := measureLock("tmk_mc_poll", variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cashmere locks are MC-word operations (~tens of us); interrupt-based
	// TreadMarks locks pay ~1 ms signal latency; polling TMK locks are
	// message round trips (tens of us).
	if csmLock > 60 {
		t.Errorf("csm lock acquire %v us, want tens of us", csmLock)
	}
	if tmkIntLock < 900 {
		t.Errorf("tmk_mc_int lock acquire %v us, want ~1 ms", tmkIntLock)
	}
	if tmkPollLock > 200 {
		t.Errorf("tmk_mc_poll lock acquire %v us, want well below interrupts", tmkPollLock)
	}
}
