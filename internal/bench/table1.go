package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/variants"
	"repro/internal/vm"
)

// Microbenchmark program names registered with the runner, so Table 1's
// measurements flow through the same plan/execute/cache machinery as the
// application runs.
const (
	microLock    = "micro:lock"
	microBarrier = "micro:barrier"
	microPage    = "micro:page"
)

func init() {
	runner.RegisterProgram(microLock, func(apps.Size) *core.Program { return lockProgram() })
	runner.RegisterProgram(microBarrier, func(apps.Size) *core.Program { return barrierProgram() })
	runner.RegisterProgram(microPage, func(apps.Size) *core.Program { return pageProgram() })
}

// microSpec builds the RunSpec for one microbenchmark measurement.
func microSpec(prog, variant string, procs int, vo variants.Options) runner.RunSpec {
	return runner.RunSpec{App: prog, Variant: variant, Procs: procs, Size: apps.SizeSmall, Opts: vo}
}

// Table1Specs enumerates Table 1's measurements: lock acquire, barrier at 2
// and at 16 processors, and page transfer, for every protocol variant.
func Table1Specs(vo variants.Options) []runner.RunSpec {
	var specs []runner.RunSpec
	for _, v := range variants.Names {
		specs = append(specs,
			microSpec(microLock, v, 2, vo),
			microSpec(microBarrier, v, 2, vo),
			microSpec(microBarrier, v, 16, vo),
			microSpec(microPage, v, 2, vo))
	}
	return specs
}

// Table1Render reproduces the paper's Table 1: the minimum cost of page
// transfers and user-level synchronization operations for the six protocol
// implementations. Lock acquire and page transfer are measured between two
// processors on separate nodes; barrier costs are measured at 2 and at 16
// processors (the parenthesized figures in the paper).
func Table1Render(w io.Writer, vo variants.Options, rs *runner.ResultSet) error {
	type row struct {
		lockAcq  float64
		barrier2 float64
		barrier  float64
		pageXfer float64
	}
	rows := map[string]row{}
	for _, v := range variants.Names {
		la, err := microCheck(rs, microSpec(microLock, v, 2, vo))
		if err != nil {
			return fmt.Errorf("lock acquire on %s: %w", v, err)
		}
		b2, err := microCheck(rs, microSpec(microBarrier, v, 2, vo))
		if err != nil {
			return fmt.Errorf("barrier(2) on %s: %w", v, err)
		}
		b16, err := microCheck(rs, microSpec(microBarrier, v, 16, vo))
		if err != nil {
			return fmt.Errorf("barrier(16) on %s: %w", v, err)
		}
		px, err := microCheck(rs, microSpec(microPage, v, 2, vo))
		if err != nil {
			return fmt.Errorf("page transfer on %s: %w", v, err)
		}
		rows[v] = row{lockAcq: la, barrier2: b2, barrier: b16, pageXfer: px}
	}
	header(w, "Table 1: Cost of basic operations (microseconds; barrier shows 2-proc with 16-proc in parens)")
	fmt.Fprintf(w, "%-14s", "Operation")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%16s", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "Lock Acquire")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%16.0f", rows[v].lockAcq)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "Barrier")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%10.0f (%3.0f)", rows[v].barrier2, rows[v].barrier)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "Page Transfer")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%16.0f", rows[v].pageXfer)
	}
	fmt.Fprintln(w)
	return nil
}

// Table1 plans, executes, and renders Table 1 in one call.
func Table1(w io.Writer, vo variants.Options) error {
	rs, err := execute(Table1Specs(vo))
	if err != nil {
		return err
	}
	return Table1Render(w, vo, rs)
}

// lockProgram times an uncontended lock acquire by a processor that is not
// the lock's last owner (the remote-acquire path).
func lockProgram() *core.Program {
	const iters = 20
	l := core.NewLayout()
	l.Alloc(vm.PageSize, vm.PageSize) // nonempty shared segment
	return &core.Program{
		Name:        "bench-lock",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    2,
		Body: func(p *core.Proc) {
			var total sim.Time
			for i := 0; i < iters; i++ {
				// Alternate ownership: rank (i%2) acquires, so each acquire
				// is remote with respect to the previous owner.
				if p.Rank() == i%2 {
					start := p.Sim().Now()
					p.Lock(0)
					total += p.Sim().Now() - start
					p.Unlock(0)
				}
				p.Barrier(0)
			}
			p.Finish()
			if p.Rank() == 0 {
				p.ReportCheck("us", us(total*2/iters))
			}
		},
	}
}

// barrierProgram times a barrier crossed by all processors.
func barrierProgram() *core.Program {
	const iters = 20
	l := core.NewLayout()
	l.Alloc(vm.PageSize, vm.PageSize)
	return &core.Program{
		Name:        "bench-barrier",
		SharedBytes: l.Size(),
		Barriers:    1,
		Body: func(p *core.Proc) {
			p.Barrier(0) // warm up
			start := p.Sim().Now()
			for i := 0; i < iters; i++ {
				p.Barrier(0)
			}
			total := p.Sim().Now() - start
			p.Finish()
			if p.Rank() == 0 {
				p.ReportCheck("us", us(total/iters))
			}
		},
	}
}

// pageProgram times the fault servicing a first remote read of a page
// dirtied by a processor on another node.
func pageProgram() *core.Program {
	const pages = 16
	l := core.NewLayout()
	arrs := make([]core.F64Array, pages)
	for i := range arrs {
		arrs[i] = l.F64Pages(vm.PageSize / 8)
	}
	return &core.Program{
		Name:        "bench-page",
		SharedBytes: l.Size(),
		Barriers:    2,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				for i := range arrs {
					for j := 0; j < arrs[i].N; j += 64 {
						arrs[i].Set(p, j, float64(i+j))
					}
				}
			}
			p.Barrier(0)
			var total sim.Time
			if p.Rank() == 1 {
				for i := range arrs {
					start := p.Sim().Now()
					_ = arrs[i].At(p, 0) // faults and transfers the page
					total += p.Sim().Now() - start
				}
				p.ReportCheck("us", us(total/pages))
			}
			p.Barrier(1)
			p.Finish()
		},
	}
}

// microCheck extracts a microbenchmark's reported measurement from a result
// set.
func microCheck(rs *runner.ResultSet, s runner.RunSpec) (float64, error) {
	res, err := rs.Get(s)
	if err != nil {
		return 0, err
	}
	v, ok := res.Checks["us"]
	if !ok {
		return 0, fmt.Errorf("bench: %s reported no measurement", res.Program)
	}
	return v, nil
}

// runMicro executes one microbenchmark spec on its own (used by the
// measure* helpers and tests).
func runMicro(s runner.RunSpec) (float64, error) {
	rs, err := execute([]runner.RunSpec{s})
	if err != nil {
		return 0, err
	}
	return microCheck(rs, s)
}

// measureLock times the remote lock-acquire path under one variant.
func measureLock(variant string, vo variants.Options) (float64, error) {
	return runMicro(microSpec(microLock, variant, 2, vo))
}

// measureBarrier times a barrier crossed by all processors.
func measureBarrier(variant string, procs int, vo variants.Options) (float64, error) {
	return runMicro(microSpec(microBarrier, variant, procs, vo))
}

// measurePageTransfer times the first remote read of a dirty page.
func measurePageTransfer(variant string, vo variants.Options) (float64, error) {
	return runMicro(microSpec(microPage, variant, 2, vo))
}
