package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/variants"
	"repro/internal/vm"
)

// Table1 reproduces the paper's Table 1: the minimum cost of page transfers
// and user-level synchronization operations for the six protocol
// implementations. Lock acquire and page transfer are measured between two
// processors on separate nodes; barrier costs are measured at 2 and at 16
// processors (the parenthesized figures in the paper).
func Table1(w io.Writer, vo variants.Options) error {
	type row struct {
		lockAcq  float64
		barrier2 float64
		barrier  float64
		pageXfer float64
	}
	rows := map[string]row{}
	for _, v := range variants.Names {
		la, err := measureLock(v, vo)
		if err != nil {
			return fmt.Errorf("lock acquire on %s: %w", v, err)
		}
		b2, err := measureBarrier(v, 2, vo)
		if err != nil {
			return fmt.Errorf("barrier(2) on %s: %w", v, err)
		}
		b16, err := measureBarrier(v, 16, vo)
		if err != nil {
			return fmt.Errorf("barrier(16) on %s: %w", v, err)
		}
		px, err := measurePageTransfer(v, vo)
		if err != nil {
			return fmt.Errorf("page transfer on %s: %w", v, err)
		}
		rows[v] = row{lockAcq: la, barrier2: b2, barrier: b16, pageXfer: px}
	}
	header(w, "Table 1: Cost of basic operations (microseconds; barrier shows 2-proc with 16-proc in parens)")
	fmt.Fprintf(w, "%-14s", "Operation")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%16s", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "Lock Acquire")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%16.0f", rows[v].lockAcq)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "Barrier")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%10.0f (%3.0f)", rows[v].barrier2, rows[v].barrier)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "Page Transfer")
	for _, v := range variants.Names {
		fmt.Fprintf(w, "%16.0f", rows[v].pageXfer)
	}
	fmt.Fprintln(w)
	return nil
}

// measureLock times an uncontended lock acquire by a processor that is not
// the lock's last owner (the remote-acquire path).
func measureLock(variant string, vo variants.Options) (float64, error) {
	const iters = 20
	l := core.NewLayout()
	l.Alloc(vm.PageSize, vm.PageSize) // nonempty shared segment
	prog := &core.Program{
		Name:        "bench-lock",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    2,
		Body: func(p *core.Proc) {
			var total sim.Time
			for i := 0; i < iters; i++ {
				// Alternate ownership: rank (i%2) acquires, so each acquire
				// is remote with respect to the previous owner.
				if p.Rank() == i%2 {
					start := p.Sim().Now()
					p.Lock(0)
					total += p.Sim().Now() - start
					p.Unlock(0)
				}
				p.Barrier(0)
			}
			p.Finish()
			if p.Rank() == 0 {
				p.ReportCheck("us", us(total*2/iters))
			}
		},
	}
	return runMicro(variant, 2, 1, prog, vo)
}

// measureBarrier times a barrier crossed by all processors.
func measureBarrier(variant string, procs int, vo variants.Options) (float64, error) {
	const iters = 20
	layout, err := variants.LayoutFor(procs)
	if err != nil {
		return 0, err
	}
	if !variants.Feasible(variant, layout) {
		layout, _ = variants.LayoutFor(procs) // csm_pp is feasible at 2 and 16
	}
	l := core.NewLayout()
	l.Alloc(vm.PageSize, vm.PageSize)
	prog := &core.Program{
		Name:        "bench-barrier",
		SharedBytes: l.Size(),
		Barriers:    1,
		Body: func(p *core.Proc) {
			p.Barrier(0) // warm up
			start := p.Sim().Now()
			for i := 0; i < iters; i++ {
				p.Barrier(0)
			}
			total := p.Sim().Now() - start
			p.Finish()
			if p.Rank() == 0 {
				p.ReportCheck("us", us(total/iters))
			}
		},
	}
	return runMicro(variant, layout.Nodes, layout.PerNode, prog, vo)
}

// measurePageTransfer times the fault servicing a first remote read of a
// page dirtied by a processor on another node.
func measurePageTransfer(variant string, vo variants.Options) (float64, error) {
	const pages = 16
	l := core.NewLayout()
	arrs := make([]core.F64Array, pages)
	for i := range arrs {
		arrs[i] = l.F64Pages(vm.PageSize / 8)
	}
	prog := &core.Program{
		Name:        "bench-page",
		SharedBytes: l.Size(),
		Barriers:    2,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				for i := range arrs {
					for j := 0; j < arrs[i].N; j += 64 {
						arrs[i].Set(p, j, float64(i+j))
					}
				}
			}
			p.Barrier(0)
			var total sim.Time
			if p.Rank() == 1 {
				for i := range arrs {
					start := p.Sim().Now()
					_ = arrs[i].At(p, 0) // faults and transfers the page
					total += p.Sim().Now() - start
				}
				p.ReportCheck("us", us(total/pages))
			}
			p.Barrier(1)
			p.Finish()
		},
	}
	return runMicro(variant, 2, 1, prog, vo)
}

func runMicro(variant string, nodes, ppn int, prog *core.Program, vo variants.Options) (float64, error) {
	cfg, err := variants.Config(variant, nodes, ppn, vo)
	if err != nil {
		return 0, err
	}
	res, err := core.Run(cfg, prog)
	if err != nil {
		return 0, err
	}
	v, ok := res.Checks["us"]
	if !ok {
		return 0, fmt.Errorf("bench: %s reported no measurement", prog.Name)
	}
	return v, nil
}
