// Package bench regenerates the paper's evaluation: Table 1 (basic operation
// costs), Table 2 (data sets and sequential times), Table 3 (detailed
// statistics), Figure 5 (speedups), Figure 6 (execution-time breakdown), and
// ablations of the design choices DESIGN.md calls out. Output is text tables
// in the paper's layout; absolute values come from the simulation's cost
// model, so shapes — who wins, by what factor, where crossovers fall — are
// the reproduction target, not exact numbers.
package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/variants"
)

// Options configure a harness run.
type Options struct {
	// Size selects the dataset scale.
	Size apps.Size
	// Procs lists processor counts for the speedup sweep (defaults to the
	// paper's 1..32 ladder).
	Procs []int
	// Apps restricts the applications (defaults to all eight).
	Apps []string
	// Variants restricts the protocol variants (defaults to all six).
	Variants []string
	// VariantOpts adjusts the model for every run.
	VariantOpts variants.Options
}

func (o Options) defaults() Options {
	if o.Size == "" {
		o.Size = apps.SizeDefault
	}
	if len(o.Procs) == 0 {
		for _, l := range variants.PaperLayouts {
			o.Procs = append(o.Procs, l.Procs)
		}
	}
	if len(o.Apps) == 0 {
		o.Apps = apps.Names()
	}
	if len(o.Variants) == 0 {
		o.Variants = variants.Names
	}
	return o
}

// runApp executes one application under one variant and processor count.
func runApp(name, variant string, procs int, size apps.Size, vo variants.Options) (*core.Result, error) {
	entry, err := apps.Get(name)
	if err != nil {
		return nil, err
	}
	var nodes, ppn int
	if variant == variants.Sequential {
		nodes, ppn = 1, 1
	} else {
		l, err := variants.LayoutFor(procs)
		if err != nil {
			return nil, err
		}
		if !variants.Feasible(variant, l) {
			return nil, errInfeasible
		}
		nodes, ppn = l.Nodes, l.PerNode
	}
	cfg, err := variants.Config(variant, nodes, ppn, vo)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg, entry.New(size))
}

var errInfeasible = fmt.Errorf("bench: variant infeasible at this layout")

// us renders virtual nanoseconds as microseconds.
func us(t sim.Time) float64 { return float64(t) / 1000 }

// seconds renders virtual nanoseconds as seconds.
func seconds(t sim.Time) float64 { return float64(t) / 1e9 }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}
