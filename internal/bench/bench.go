// Package bench regenerates the paper's evaluation: Table 1 (basic operation
// costs), Table 2 (data sets and sequential times), Table 3 (detailed
// statistics), Figure 5 (speedups), Figure 6 (execution-time breakdown), and
// ablations of the design choices DESIGN.md calls out. Output is text tables
// in the paper's layout; absolute values come from the simulation's cost
// model, so shapes — who wins, by what factor, where crossovers fall — are
// the reproduction target, not exact numbers.
//
// Every table and figure is a pure two-phase function: XxxSpecs(opts)
// enumerates the runs it needs as runner.RunSpecs, and XxxRender(w, opts,
// rs) formats a ResultSet that contains them. The one-shot Xxx(w, opts)
// wrappers plan, execute (parallel, cached), and render; callers that draw
// several tables from one sweep build a combined plan instead and render
// each section from the shared ResultSet, so overlapping configurations
// (e.g. the sequential baseline) are simulated once.
package bench

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/variants"
)

// Options configure a harness run.
type Options struct {
	// Size selects the dataset scale.
	Size apps.Size
	// Procs lists processor counts for the speedup sweep (defaults to the
	// paper's 1..32 ladder).
	Procs []int
	// Apps restricts the applications (defaults to all eight).
	Apps []string
	// Variants restricts the protocol variants (defaults to all six).
	Variants []string
	// VariantOpts adjusts the model for every run.
	VariantOpts variants.Options
}

func (o Options) defaults() Options {
	if o.Size == "" {
		o.Size = apps.SizeDefault
	}
	if len(o.Procs) == 0 {
		for _, l := range variants.PaperLayouts {
			o.Procs = append(o.Procs, l.Procs)
		}
	}
	if len(o.Apps) == 0 {
		o.Apps = apps.Names()
	}
	if len(o.Variants) == 0 {
		o.Variants = variants.Names
	}
	return o
}

// spec builds the RunSpec for one application cell of a table.
func spec(app, variant string, procs int, opts Options) runner.RunSpec {
	return runner.RunSpec{App: app, Variant: variant, Procs: procs, Size: opts.Size, Opts: opts.VariantOpts}
}

// execute plans and runs a spec list with default runner options (all host
// cores, process-wide cache).
func execute(specs []runner.RunSpec) (*runner.ResultSet, error) {
	plan := runner.NewPlan()
	plan.Add(specs...)
	return runner.Execute(plan, runner.Options{})
}

// us renders virtual nanoseconds as microseconds.
func us(t sim.Time) float64 { return float64(t) / 1000 }

// seconds renders virtual nanoseconds as seconds.
func seconds(t sim.Time) float64 { return float64(t) / 1e9 }

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}
