package bench

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/cashmere"
	"repro/internal/interconnect"
	"repro/internal/runner"
)

// Ablations exercises the design choices DESIGN.md calls out:
//
//	(a) Cashmere's exclusive-mode optimization (the replacement for the
//	    simulated protocol's "weak state", §2.1) on vs off;
//	(b) first-touch vs round-robin home assignment (§2.1);
//	(c) the second-generation Memory Channel projection (half the latency,
//	    10x the bandwidth, §1);
//	(d) first-level cache size: the 21064A's 16 KB vs a 21264-class 256 KB
//	    (the paper expects the larger cache to "largely eliminate" the
//	    write-doubling working-set problem, §4.3);
//	(e) doubling writes to a single dummy address (the paper's §4.3
//	    single-processor diagnostic for LU and Gauss).
//
// Each ablation derives its modified-model specs with a deterministic
// option transform, so AblationSpecs and AblationsRender agree on spec
// identity and the unmodified runs share the cache with Fig 5 / Table 3.

// withCashmere returns opts with the Cashmere ablation knobs replaced.
func (o Options) withCashmere(c cashmere.Config) Options {
	o.VariantOpts.Cashmere = c
	return o
}

// withSecondGenMC returns opts projected onto the second-generation Memory
// Channel.
func (o Options) withSecondGenMC() Options {
	mc2 := interconnect.MCSecondGeneration()
	o.VariantOpts.MC = &mc2
	return o
}

// withBigCache returns opts with a 21264-class 256 KB first-level cache.
func (o Options) withBigCache() Options {
	big := cache.Alpha21264
	o.VariantOpts.Cache = &big
	return o
}

// AblationSpecs enumerates every run the ablation suite needs.
func AblationSpecs(opts Options) []runner.RunSpec {
	opts = opts.defaults()
	var specs []runner.RunSpec
	// (a) exclusive mode on/off.
	for _, app := range []string{"SOR", "Water"} {
		specs = append(specs,
			spec(app, "csm_poll", 8, opts),
			spec(app, "csm_poll", 8, opts.withCashmere(cashmere.Config{DisableExclusive: true})))
	}
	// (b) home assignment policy.
	for _, app := range []string{"SOR", "Em3d"} {
		specs = append(specs,
			spec(app, "csm_poll", 8, opts),
			spec(app, "csm_poll", 8, opts.withCashmere(cashmere.Config{RoundRobinHomes: true})))
	}
	// (c) second-generation Memory Channel.
	for _, app := range []string{"SOR", "LU", "Em3d"} {
		for _, v := range []string{"csm_poll", "tmk_mc_poll"} {
			specs = append(specs,
				spec(app, v, 16, opts),
				spec(app, v, 16, opts.withSecondGenMC()))
		}
	}
	// (d) first-level cache size.
	for _, app := range []string{"LU", "Gauss"} {
		specs = append(specs,
			spec(app, "csm_poll", 1, opts),
			spec(app, "csm_poll", 1, opts.withBigCache()))
	}
	// (e) dummy doubling diagnostic.
	for _, app := range []string{"LU", "Gauss"} {
		specs = append(specs,
			spec(app, "csm_poll", 1, opts),
			spec(app, "csm_poll", 1, opts.withCashmere(cashmere.Config{DummyDoubling: true})),
			spec(app, "tmk_mc_poll", 1, opts))
	}
	return specs
}

// AblationsRender formats all five ablations from an executed result set.
func AblationsRender(w io.Writer, opts Options, rs *runner.ResultSet) error {
	opts = opts.defaults()
	if err := ablationExclusive(w, opts, rs); err != nil {
		return err
	}
	if err := ablationHomes(w, opts, rs); err != nil {
		return err
	}
	if err := ablationSecondGen(w, opts, rs); err != nil {
		return err
	}
	if err := ablationCache(w, opts, rs); err != nil {
		return err
	}
	return ablationDummyDoubling(w, opts, rs)
}

// Ablations plans, executes, and renders the ablation suite in one call.
func Ablations(w io.Writer, opts Options) error {
	rs, err := execute(AblationSpecs(opts))
	if err != nil {
		return err
	}
	return AblationsRender(w, opts, rs)
}

func ablationExclusive(w io.Writer, opts Options, rs *runner.ResultSet) error {
	header(w, "Ablation (a): Cashmere exclusive mode (SOR, Water at 8 processors, csm_poll)")
	fmt.Fprintf(w, "%-8s %14s %14s %16s %16s\n", "App", "on (s)", "off (s)", "wfaults on", "wfaults off")
	for _, app := range []string{"SOR", "Water"} {
		on, err := rs.Get(spec(app, "csm_poll", 8, opts))
		if err != nil {
			return err
		}
		off, err := rs.Get(spec(app, "csm_poll", 8, opts.withCashmere(cashmere.Config{DisableExclusive: true})))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %14.3f %14.3f %16d %16d\n", app,
			seconds(on.Time), seconds(off.Time), on.Total.WriteFaults, off.Total.WriteFaults)
	}
	return nil
}

func ablationHomes(w io.Writer, opts Options, rs *runner.ResultSet) error {
	header(w, "Ablation (b): home assignment policy (8 processors, csm_poll)")
	fmt.Fprintf(w, "%-8s %16s %18s %16s %18s\n", "App", "first-touch (s)", "round-robin (s)", "xfers ft", "xfers rr")
	for _, app := range []string{"SOR", "Em3d"} {
		ft, err := rs.Get(spec(app, "csm_poll", 8, opts))
		if err != nil {
			return err
		}
		rr, err := rs.Get(spec(app, "csm_poll", 8, opts.withCashmere(cashmere.Config{RoundRobinHomes: true})))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %16.3f %18.3f %16d %18d\n", app,
			seconds(ft.Time), seconds(rr.Time), ft.Total.PageTransfers, rr.Total.PageTransfers)
	}
	return nil
}

func ablationSecondGen(w io.Writer, opts Options, rs *runner.ResultSet) error {
	header(w, "Ablation (c): second-generation Memory Channel (16 processors; half latency, 10x bandwidth)")
	fmt.Fprintf(w, "%-8s %-14s %12s %12s %10s\n", "App", "Variant", "MC1 (s)", "MC2 (s)", "gain")
	for _, app := range []string{"SOR", "LU", "Em3d"} {
		for _, v := range []string{"csm_poll", "tmk_mc_poll"} {
			r1, err := rs.Get(spec(app, v, 16, opts))
			if err != nil {
				return err
			}
			r2, err := rs.Get(spec(app, v, 16, opts.withSecondGenMC()))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8s %-14s %12.3f %12.3f %9.2fx\n", app, v,
				seconds(r1.Time), seconds(r2.Time), float64(r1.Time)/float64(r2.Time))
		}
	}
	return nil
}

func ablationCache(w io.Writer, opts Options, rs *runner.ResultSet) error {
	header(w, "Ablation (d): first-level cache size (LU, Gauss on 1 processor, csm_poll)")
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "App", "16KB (s)", "256KB (s)", "gain")
	for _, app := range []string{"LU", "Gauss"} {
		small, err := rs.Get(spec(app, "csm_poll", 1, opts))
		if err != nil {
			return err
		}
		large, err := rs.Get(spec(app, "csm_poll", 1, opts.withBigCache()))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %14.3f %14.3f %9.2fx\n", app,
			seconds(small.Time), seconds(large.Time), float64(small.Time)/float64(large.Time))
	}
	return nil
}

func ablationDummyDoubling(w io.Writer, opts Options, rs *runner.ResultSet) error {
	header(w, "Ablation (e): doubling to a dummy address (LU, Gauss on 1 processor, §4.3 diagnostic)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "App", "csm (s)", "dummy (s)", "tmk (s)")
	for _, app := range []string{"LU", "Gauss"} {
		csm, err := rs.Get(spec(app, "csm_poll", 1, opts))
		if err != nil {
			return err
		}
		dummy, err := rs.Get(spec(app, "csm_poll", 1, opts.withCashmere(cashmere.Config{DummyDoubling: true})))
		if err != nil {
			return err
		}
		tmk, err := rs.Get(spec(app, "tmk_mc_poll", 1, opts))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %12.3f %12.3f %12.3f\n", app,
			seconds(csm.Time), seconds(dummy.Time), seconds(tmk.Time))
	}
	return nil
}
