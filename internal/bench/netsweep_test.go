package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/interconnect"
	"repro/internal/runner"
	"repro/internal/variants"
)

// TestNetSweep16NodeSmoke runs the 16-node slice of the interconnect sweep
// end to end (CI runs this under -race): every backend completes, the
// rendered table names every interconnect, and the RDMA run actually took
// the one-sided page-read path instead of the message protocol.
func TestNetSweep16NodeSmoke(t *testing.T) {
	saved := NetSweepNodes
	NetSweepNodes = []int{16}
	t.Cleanup(func() { NetSweepNodes = saved })

	opts := Options{Size: apps.SizeSmall, Apps: []string{"SOR"}}
	specs := NetSweepSpecs(opts)
	if want := len(NetSweepVariants) * len(interconnect.Kinds); len(specs) != want {
		t.Fatalf("sweep enumerates %d specs, want %d", len(specs), want)
	}
	rs, err := execute(specs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NetSweepRender(&buf, opts, rs); err != nil {
		t.Fatal(err)
	}
	for _, kind := range interconnect.Kinds {
		if !strings.Contains(buf.String(), string(kind)) {
			t.Errorf("rendered sweep does not mention %q:\n%s", kind, buf.String())
		}
	}

	times := map[interconnect.Kind]float64{}
	for _, kind := range interconnect.Kinds {
		res, err := rs.Get(netSweepSpec("SOR", "csm_poll", 16, kind, opts))
		if err != nil {
			t.Fatalf("csm_poll/16/%s: %v", kind, err)
		}
		if res.Time <= 0 {
			t.Fatalf("csm_poll/16/%s: non-positive time %d", kind, res.Time)
		}
		times[kind] = seconds(res.Time)
		switch kind {
		case interconnect.RDMA:
			if res.Counters["remote_page_reads"] == 0 {
				t.Error("rdma run never used one-sided page reads")
			}
			if res.Counters["page_fetch_reqs"] != 0 {
				t.Error("rdma run still sent page-fetch messages")
			}
		default:
			if res.Counters["remote_page_reads"] != 0 {
				t.Errorf("%s run reports remote page reads without the capability", kind)
			}
		}
	}
	// The fabrics have different latencies; identical times would mean the
	// spec never reached the model.
	if times[interconnect.RDMA] == times[interconnect.MemoryChannel] {
		t.Error("rdma and memory channel produced identical times")
	}
}

// TestNetSweepDefaultsToSOROnly: an empty Apps list must sweep SOR alone,
// not be expanded to all eight applications by Options.defaults() — the
// full-app sweep is 8x the cells and includes applications that take
// minutes at 64 nodes (this regressed once: NetSweepSpecs applied
// defaults() before choosing the app list).
func TestNetSweepDefaultsToSOROnly(t *testing.T) {
	specs := NetSweepSpecs(Options{Size: apps.SizeSmall})
	want := len(NetSweepVariants) * len(NetSweepNodes) * len(interconnect.Kinds)
	if len(specs) != want {
		t.Fatalf("default sweep enumerates %d specs, want %d (SOR only)", len(specs), want)
	}
	for _, s := range specs {
		if s.App != "SOR" {
			t.Fatalf("default sweep includes %s; want SOR only", s.App)
		}
	}
}

// TestNetSweepMCSharesCache: the sweep's Memory Channel cells use the zero
// interconnect spec, so they key — and cache — identically to a plain
// explicit-shape run of the same configuration.
func TestNetSweepMCSharesCache(t *testing.T) {
	opts := Options{Size: apps.SizeSmall}
	sweep := netSweepSpec("SOR", "csm_poll", 8, interconnect.MemoryChannel, opts)
	plain := runner.RunSpec{App: "SOR", Variant: "csm_poll", Nodes: 8, PPN: 1, Size: apps.SizeSmall,
		Opts: variants.Options{}}
	if sweep.Key() != plain.Key() {
		t.Errorf("sweep MC cell keys differently from a plain run:\n %s\n %s", sweep.Key(), plain.Key())
	}
}
