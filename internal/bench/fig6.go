package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Fig6Specs enumerates Figure 6's runs. They are identical to Table 3's —
// the breakdown and the statistics table come from the same simulations —
// so combined plans simulate them once.
func Fig6Specs(opts Options) []runner.RunSpec {
	return Table3Specs(opts)
}

// Fig6Render reproduces the paper's Figure 6: a breakdown of execution time
// for the polling versions of Cashmere and TreadMarks (Barnes at 16
// processors, the others at 32), normalized to Cashmere's total execution
// time per application. Components: User, Protocol, Polling overhead, Write
// doubling (Cashmere only), and Comm & Wait.
func Fig6Render(w io.Writer, opts Options, rs *runner.ResultSet) error {
	opts = opts.defaults()
	header(w, "Figure 6: Normalized execution-time breakdown, polling versions (Barnes at 16, others at 32)")
	fmt.Fprintf(w, "%-8s %-4s %8s %8s %10s %10s %10s %10s %10s\n",
		"App", "Sys", "Total", "Norm", "User%", "Protocol%", "Polling%", "Doubling%", "Comm&Wait%")
	for _, app := range opts.Apps {
		procs := table3Procs(app)
		csm, err := rs.Get(spec(app, "csm_poll", procs, opts))
		if err != nil {
			return fmt.Errorf("%s csm_poll: %w", app, err)
		}
		tmk, err := rs.Get(spec(app, "tmk_mc_poll", procs, opts))
		if err != nil {
			return fmt.Errorf("%s tmk_mc_poll: %w", app, err)
		}
		base := float64(csm.Time)
		printBreakdown(w, app, "CSM", csm, base)
		printBreakdown(w, app, "TMK", tmk, base)
	}
	return nil
}

// Fig6 plans, executes, and renders Figure 6 in one call.
func Fig6(w io.Writer, opts Options) error {
	rs, err := execute(Fig6Specs(opts))
	if err != nil {
		return err
	}
	return Fig6Render(w, opts, rs)
}

func printBreakdown(w io.Writer, app, sys string, res *core.Result, normBase float64) {
	var elapsed, catSum sim.Time
	var cats [core.NumCategories]sim.Time
	for _, st := range res.PerProc {
		elapsed += st.FinishedAt
		for c := core.Category(0); c < core.NumCategories; c++ {
			cats[c] += st.Cat[c]
			catSum += st.Cat[c]
		}
	}
	pct := func(t sim.Time) float64 {
		if elapsed == 0 {
			return 0
		}
		return 100 * float64(t) / float64(elapsed)
	}
	fmt.Fprintf(w, "%-8s %-4s %7.2fs %8.2f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
		app, sys, seconds(res.Time), float64(res.Time)/normBase,
		pct(cats[core.CatUser]), pct(cats[core.CatProtocol]),
		pct(cats[core.CatPolling]), pct(cats[core.CatDoubling]),
		pct(elapsed-catSum))
}
