package bench

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/runner"
	"repro/internal/variants"
)

// Fig5Specs enumerates the runs Figure 5 needs: every application under
// every protocol variant across the processor ladder, plus the sequential
// baseline each speedup is relative to.
func Fig5Specs(opts Options) []runner.RunSpec {
	opts = opts.defaults()
	var specs []runner.RunSpec
	for _, app := range opts.Apps {
		specs = append(specs, spec(app, variants.Sequential, 1, opts))
		for _, procs := range opts.Procs {
			for _, v := range opts.Variants {
				specs = append(specs, spec(app, v, procs, opts))
			}
		}
	}
	return specs
}

// Fig5Render reproduces the paper's Figure 5: speedups of every application
// under every protocol variant across the processor ladder, relative to the
// sequential (unlinked) execution time from Table 2. One text block per
// application; csm_pp is omitted at 32 processors (not applicable, §4.3).
func Fig5Render(w io.Writer, opts Options, rs *runner.ResultSet) error {
	opts = opts.defaults()
	for _, app := range opts.Apps {
		seq, err := rs.Get(spec(app, variants.Sequential, 1, opts))
		if err != nil {
			return fmt.Errorf("%s sequential: %w", app, err)
		}
		header(w, fmt.Sprintf("Figure 5: %s speedups (sequential %.3fs)", app, seconds(seq.Time)))
		fmt.Fprintf(w, "%-12s", "procs")
		for _, v := range opts.Variants {
			fmt.Fprintf(w, "%13s", v)
		}
		fmt.Fprintln(w)
		for _, procs := range opts.Procs {
			fmt.Fprintf(w, "%-12d", procs)
			for _, v := range opts.Variants {
				res, err := rs.Get(spec(app, v, procs, opts))
				if errors.Is(err, runner.ErrInfeasible) {
					fmt.Fprintf(w, "%13s", "-")
					continue
				}
				if err != nil {
					return fmt.Errorf("%s on %s at %d: %w", app, v, procs, err)
				}
				fmt.Fprintf(w, "%13.2f", float64(seq.Time)/float64(res.Time))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig5 plans, executes, and renders Figure 5 in one call.
func Fig5(w io.Writer, opts Options) error {
	rs, err := execute(Fig5Specs(opts))
	if err != nil {
		return err
	}
	return Fig5Render(w, opts, rs)
}
