package bench

import (
	"fmt"
	"io"

	"repro/internal/variants"
)

// Fig5 reproduces the paper's Figure 5: speedups of every application under
// every protocol variant across the processor ladder, relative to the
// sequential (unlinked) execution time from Table 2. One text block per
// application; csm_pp is omitted at 32 processors (not applicable, §4.3).
func Fig5(w io.Writer, opts Options) error {
	opts = opts.defaults()
	for _, app := range opts.Apps {
		seq, err := runApp(app, variants.Sequential, 1, opts.Size, opts.VariantOpts)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", app, err)
		}
		header(w, fmt.Sprintf("Figure 5: %s speedups (sequential %.3fs)", app, seconds(seq.Time)))
		fmt.Fprintf(w, "%-12s", "procs")
		for _, v := range opts.Variants {
			fmt.Fprintf(w, "%13s", v)
		}
		fmt.Fprintln(w)
		for _, procs := range opts.Procs {
			fmt.Fprintf(w, "%-12d", procs)
			for _, v := range opts.Variants {
				res, err := runApp(app, v, procs, opts.Size, opts.VariantOpts)
				if err == errInfeasible {
					fmt.Fprintf(w, "%13s", "-")
					continue
				}
				if err != nil {
					return fmt.Errorf("%s on %s at %d: %w", app, v, procs, err)
				}
				fmt.Fprintf(w, "%13.2f", float64(seq.Time)/float64(res.Time))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
