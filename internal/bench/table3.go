package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/runner"
)

// table3Procs returns the paper's Table 3 processor count for an
// application: 32, except Barnes at 16 ("since the performance for Barnes
// drops significantly with more than 16 processors").
func table3Procs(app string) int {
	if app == "Barnes" {
		return 16
	}
	return 32
}

// Table3Specs enumerates Table 3's runs: the two polling variants at the
// paper's breakdown configuration for every application. Figure 6 draws
// from the same runs, so a combined plan simulates them once.
func Table3Specs(opts Options) []runner.RunSpec {
	opts = opts.defaults()
	var specs []runner.RunSpec
	for _, name := range opts.Apps {
		procs := table3Procs(name)
		specs = append(specs,
			spec(name, "csm_poll", procs, opts),
			spec(name, "tmk_mc_poll", procs, opts))
	}
	return specs
}

// Table3Render reproduces the paper's Table 3: detailed statistics for the
// polling versions of Cashmere and TreadMarks, aggregated over all
// processors.
func Table3Render(w io.Writer, opts Options, rs *runner.ResultSet) error {
	opts = opts.defaults()
	csm := map[string]*core.Result{}
	tmk := map[string]*core.Result{}
	for _, name := range opts.Apps {
		procs := table3Procs(name)
		r, err := rs.Get(spec(name, "csm_poll", procs, opts))
		if err != nil {
			return fmt.Errorf("%s csm_poll: %w", name, err)
		}
		csm[name] = r
		r, err = rs.Get(spec(name, "tmk_mc_poll", procs, opts))
		if err != nil {
			return fmt.Errorf("%s tmk_mc_poll: %w", name, err)
		}
		tmk[name] = r
	}

	header(w, "Table 3: Detailed statistics, polling versions (Barnes at 16 processors, others at 32)")
	fmt.Fprintf(w, "%-22s", "Application")
	for _, n := range opts.Apps {
		fmt.Fprintf(w, "%10s", n)
	}
	fmt.Fprintln(w)

	prow := func(label string, f func(*core.Result) string, m map[string]*core.Result) {
		fmt.Fprintf(w, "%-22s", label)
		for _, n := range opts.Apps {
			fmt.Fprintf(w, "%10s", f(m[n]))
		}
		fmt.Fprintln(w)
	}
	secs := func(r *core.Result) string { return fmt.Sprintf("%.2f", seconds(r.Time)) }
	i := func(v int64) string { return fmt.Sprintf("%d", v) }

	fmt.Fprintln(w, "CSM")
	prow("  Exec. time (secs)", secs, csm)
	prow("  Barriers", func(r *core.Result) string { return i(r.Total.Barriers / int64(r.Procs)) }, csm)
	prow("  Locks", func(r *core.Result) string { return i(r.Total.LockAcquires) }, csm)
	prow("  Read faults", func(r *core.Result) string { return i(r.Total.ReadFaults) }, csm)
	prow("  Write faults", func(r *core.Result) string { return i(r.Total.WriteFaults) }, csm)
	prow("  Page transfers", func(r *core.Result) string { return i(r.Total.PageTransfers) }, csm)
	fmt.Fprintln(w, "TMK")
	prow("  Exec. time (secs)", secs, tmk)
	prow("  Barriers", func(r *core.Result) string { return i(r.Total.Barriers / int64(r.Procs)) }, tmk)
	prow("  Locks", func(r *core.Result) string { return i(r.Total.LockAcquires) }, tmk)
	prow("  Read faults", func(r *core.Result) string { return i(r.Total.ReadFaults) }, tmk)
	prow("  Write faults", func(r *core.Result) string { return i(r.Total.WriteFaults) }, tmk)
	prow("  Messages", func(r *core.Result) string { return i(r.Total.Messages) }, tmk)
	prow("  Data (Kbytes)", func(r *core.Result) string { return fmt.Sprintf("%.0f", float64(r.Total.DataBytes)/1024) }, tmk)
	return nil
}

// Table3 plans, executes, and renders Table 3 in one call.
func Table3(w io.Writer, opts Options) error {
	rs, err := execute(Table3Specs(opts))
	if err != nil {
		return err
	}
	return Table3Render(w, opts, rs)
}
