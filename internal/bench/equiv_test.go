package bench

// Interconnect-equivalence tests: the Memory Channel running behind the
// pluggable Interconnect interface must produce results JSON byte-identical
// to the pre-interface implementation. Both golden artifacts were generated
// by dsmbench before the interconnect API existed:
//
//	testdata/equiv_small_subset.json  -fig5 -fig6 -size small -apps SOR,Water -procs 1,4,8 -json
//	testdata/equiv_small_full.sha256  sha256 of -all -size small -json
import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/runner"
)

func TestInterconnectEquivalenceSubset(t *testing.T) {
	opts := Options{
		Size:  apps.SizeSmall,
		Apps:  []string{"SOR", "Water"},
		Procs: []int{1, 4, 8},
	}
	plan := runner.NewPlan()
	plan.Add(Fig5Specs(opts)...)
	plan.Add(Fig6Specs(opts)...)
	rs, err := runner.Execute(plan, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "equiv_small_subset.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("results JSON differs from the pre-interface golden:\n%s",
			diffHint(buf.Bytes(), want))
	}
}

// TestInterconnectEquivalenceFull covers the complete small-size sweep (430
// specs, ~30 s); the golden is pinned as a hash because the document is
// over 4 MB. Runs with the other full golden under DSMBENCH_GOLDEN_FULL.
func TestInterconnectEquivalenceFull(t *testing.T) {
	if os.Getenv("DSMBENCH_GOLDEN_FULL") == "" {
		t.Skip("set DSMBENCH_GOLDEN_FULL=1 to run the full equivalence sweep (~30 s)")
	}
	opts := Options{Size: apps.SizeSmall}
	plan := runner.NewPlan()
	plan.Add(Table1Specs(opts.VariantOpts)...)
	plan.Add(Table2Specs(opts)...)
	plan.Add(Fig5Specs(opts)...)
	plan.Add(Fig6Specs(opts)...)
	plan.Add(Table3Specs(opts)...)
	plan.Add(AblationSpecs(opts)...)
	rs, err := runner.Execute(plan, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
	raw, err := os.ReadFile(filepath.Join("testdata", "equiv_small_full.sha256"))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(string(raw))
	if got != want {
		t.Fatalf("full-sweep results hash %s differs from the pre-interface golden %s", got, want)
	}
}
