package bench

import (
	"bytes"
	"testing"

	"repro/internal/apps"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/variants"
)

// fastpathMatrix is a representative spec matrix for the fast-path
// equivalence check: every sharing pattern family (stencil, blocked dense,
// broadcast pivot, graph, migratory), both protocol families under both
// notification mechanisms, the sequential baseline, and processor counts
// spanning single-node and multi-node layouts.
func fastpathMatrix() []runner.RunSpec {
	small := apps.SizeSmall
	return []runner.RunSpec{
		{App: "SOR", Variant: variants.Sequential, Procs: 1, Size: small},
		{App: "SOR", Variant: "csm_poll", Procs: 4, Size: small},
		{App: "SOR", Variant: "tmk_mc_poll", Procs: 8, Size: small},
		{App: "LU", Variant: "csm_int", Procs: 4, Size: small},
		{App: "Gauss", Variant: "csm_poll", Procs: 8, Size: small},
		{App: "Em3d", Variant: "tmk_udp_int", Procs: 4, Size: small},
		{App: "Water", Variant: "csm_poll", Procs: 8, Size: small},
		{App: "Water", Variant: "tmk_mc_int", Procs: 4, Size: small},
	}
}

// TestFastPathJSONEquivalence executes the matrix with the simulator's fast
// paths disabled (SIM_NO_FASTPATH=1) and enabled, and requires the two JSON
// result sets to be byte-identical: every simulated time, statistic, and
// checksum must be unchanged by yield elision, direct handoff, translation
// caching, and the bulk accessors.
func TestFastPathJSONEquivalence(t *testing.T) {
	execute := func() []byte {
		t.Helper()
		// The process-wide memo cache would otherwise serve results computed
		// under the other setting.
		runner.ResetCache()
		plan := runner.NewPlan()
		plan.Add(fastpathMatrix()...)
		rs, err := runner.Execute(plan, runner.Options{Jobs: 1})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Setenv(sim.NoFastPathEnv, "1")
	if sim.FastPathEnabled() {
		t.Fatal("SIM_NO_FASTPATH=1 did not disable the fast paths")
	}
	slow := execute()

	t.Setenv(sim.NoFastPathEnv, "")
	if !sim.FastPathEnabled() {
		t.Fatal("fast paths still disabled after clearing SIM_NO_FASTPATH")
	}
	fast := execute()

	// Leave no entries computed under a test-controlled environment behind.
	defer runner.ResetCache()

	if !bytes.Equal(slow, fast) {
		sl, fl := bytes.Split(slow, []byte("\n")), bytes.Split(fast, []byte("\n"))
		for i := 0; i < len(sl) && i < len(fl); i++ {
			if !bytes.Equal(sl[i], fl[i]) {
				t.Fatalf("fast-path JSON diverges at line %d:\n  slow: %s\n  fast: %s", i+1, sl[i], fl[i])
			}
		}
		t.Fatalf("fast-path JSON diverges in length: slow %d bytes, fast %d bytes", len(slow), len(fast))
	}
}
