package bench

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/apps"
	"repro/internal/runner"
	"repro/internal/variants"
)

// TestSequentialBaselineRunsOnce proves the satellite fix for duplicated
// baseline runs: Table 2, Figure 5, and the one-shot wrappers all key the
// sequential baseline on the same canonical spec, so across any number of
// tables it executes exactly once per (app, size).
func TestSequentialBaselineRunsOnce(t *testing.T) {
	runner.ResetCache()
	opts := Options{
		Size:     apps.SizeSmall,
		Apps:     []string{"SOR"},
		Procs:    []int{1, 4},
		Variants: []string{"csm_poll"},
	}

	// The baseline and Fig5's parallel cells all share one plan: the
	// combined plan must contain the sequential spec exactly once.
	plan := runner.NewPlan()
	plan.Add(Table2Specs(opts)...)
	plan.Add(Fig5Specs(opts)...)
	seqCount := 0
	for _, s := range plan.Specs() {
		if s.Variant == variants.Sequential {
			seqCount++
		}
	}
	if seqCount != 1 {
		t.Fatalf("combined Table2+Fig5 plan holds %d sequential specs, want 1", seqCount)
	}

	// Table 2 executes the baseline (1 simulation).
	if err := Table2(io.Discard, opts); err != nil {
		t.Fatal(err)
	}
	after2 := runner.Executions()

	// Figure 5 needs the same baseline plus 2 parallel cells: only the
	// cells may execute.
	if err := Fig5(io.Discard, opts); err != nil {
		t.Fatal(err)
	}
	if delta := runner.Executions() - after2; delta != 2 {
		t.Fatalf("Fig5 after Table2 ran %d simulations, want 2 (baseline must come from cache)", delta)
	}

	// Re-rendering Table 2 must execute nothing at all.
	if err := Table2(io.Discard, opts); err != nil {
		t.Fatal(err)
	}
	if delta := runner.Executions() - after2; delta != 2 {
		t.Fatalf("repeat Table2 re-ran %d baseline simulations, want 0", delta-2)
	}
}

// TestAblationsShareCacheWithSweep proves the ablations' unmodified-model
// runs hit the same cache entries as a prior sweep at the same
// configuration rather than re-simulating.
func TestAblationsShareCacheWithSweep(t *testing.T) {
	runner.ResetCache()
	opts := Options{Size: apps.SizeSmall}

	// Prime the cache with the ablation baseline configuration (SOR,
	// csm_poll at 8 processors — ablation (a)'s "on" leg).
	warm := runner.NewPlan()
	warm.Add(runner.RunSpec{App: "SOR", Variant: "csm_poll", Procs: 8, Size: apps.SizeSmall})
	if _, err := runner.Execute(warm, runner.Options{}); err != nil {
		t.Fatal(err)
	}
	before := runner.Executions()

	plan := runner.NewPlan()
	plan.Add(AblationSpecs(opts)...)
	if _, err := runner.Execute(plan, runner.Options{}); err != nil {
		t.Fatal(err)
	}
	ran := runner.Executions() - before
	if want := int64(plan.Len() - 1); ran != want {
		t.Fatalf("ablations ran %d simulations, want %d (SOR csm_poll@8 must come from cache)", ran, want)
	}
}

// TestParallelEngineJSONIdentical executes the full small sweep — every
// section dsmbench -all plans — twice, once per engine-mode request, and
// asserts the serialized result sets are byte-identical. This is the
// end-to-end equivalence contract behind dsmbench -par: requesting the
// node-parallel engine can never change a result, whether a run commits to
// parallel domains or (as with every current DSM protocol, all of which are
// domain-unsafe) falls back to the sequential engine. It also pins the
// fallback itself: no current variant may report a parallel engine.
func TestParallelEngineJSONIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full small sweep twice; skipped with -short")
	}
	opts := Options{Size: apps.SizeSmall}
	plan := runner.NewPlan()
	plan.Add(Table1Specs(opts.VariantOpts)...)
	plan.Add(Table2Specs(opts)...)
	plan.Add(Fig5Specs(opts)...)
	plan.Add(Fig6Specs(opts)...)
	plan.Add(Table3Specs(opts)...)
	plan.Add(AblationSpecs(opts)...)

	emit := func(parallel bool) []byte {
		runner.ResetCache()
		rs, err := runner.Execute(plan, runner.Options{
			Parallel: parallel,
			OnProgress: func(_, _ int, spec runner.RunSpec, info runner.RunInfo) {
				if info.Parallel {
					t.Errorf("%s/%s/p%d committed to a parallel engine; no current protocol is domain-safe",
						spec.App, spec.Variant, spec.Procs)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	seq := emit(false)
	par := emit(true)
	if !bytes.Equal(seq, par) {
		t.Fatalf("results JSON differs between engine-mode requests:\n%s", diffHint(par, seq))
	}
}

// TestParallelRenderingIsDeterministic runs the same plan at Jobs=1 and
// Jobs=8 and asserts the rendered tables are byte-identical and every
// result's virtual time and statistics match exactly: host-level
// parallelism must not perturb the deterministic simulations.
func TestParallelRenderingIsDeterministic(t *testing.T) {
	opts := Options{
		Size:  apps.SizeSmall,
		Apps:  []string{"SOR", "Water"},
		Procs: []int{1, 4},
	}
	plan := runner.NewPlan()
	plan.Add(Table2Specs(opts)...)
	plan.Add(Fig5Specs(opts)...)

	render := func(rs *runner.ResultSet) ([]byte, error) {
		var buf bytes.Buffer
		if err := Table2Render(&buf, opts, rs); err != nil {
			return nil, err
		}
		if err := Fig5Render(&buf, opts, rs); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	runner.ResetCache()
	serialRS, err := runner.Execute(plan, runner.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	serialOut, err := render(serialRS)
	if err != nil {
		t.Fatal(err)
	}

	runner.ResetCache()
	parallelRS, err := runner.Execute(plan, runner.Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	parallelOut, err := render(parallelRS)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(serialOut, parallelOut) {
		t.Fatalf("rendered tables differ between Jobs=1 and Jobs=8:\n%s", diffHint(parallelOut, serialOut))
	}
	for _, s := range plan.Specs() {
		r1, err1 := serialRS.Get(s)
		r2, err2 := parallelRS.Get(s)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", s.Key(), err1, err2)
		}
		if r1.Time != r2.Time {
			t.Errorf("%s: time %d (Jobs=1) != %d (Jobs=8)", s.Key(), r1.Time, r2.Time)
		}
		if r1.Total != r2.Total {
			t.Errorf("%s: aggregate stats differ between Jobs=1 and Jobs=8", s.Key())
		}
	}
}
