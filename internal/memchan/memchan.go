// Package memchan models DEC's Memory Channel network (paper §3.1) for the
// simulated cluster.
//
// The model reproduces the properties the DSM protocols actually depend on:
//
//   - Remote writes only: a node can write into another node's memory through
//     transmit-mapped regions, but cannot read remote memory. Reads are always
//     local; data becomes locally readable only after it has been written to a
//     receive-mapped region on the reader's node.
//   - Latency: a process-to-process write becomes visible at remote receive
//     regions 5.2 µs after it is issued.
//   - Total write ordering: two writes to the same region appear in the same
//     order in every receive region. In the simulator this falls out of the
//     baton-passing scheduler: writes are executed one at a time in virtual
//     time order, and a per-word visibility horizon hides a write from remote
//     readers until it has "arrived".
//   - Bandwidth: per-link transfer bandwidth (~30 MB/s, limited by the 32-bit
//     PCI bus) and aggregate bandwidth (~32 MB/s with the first-generation
//     driver) are modelled as occupancy horizons; bulk transfers and the
//     write-through pipe queue behind them.
//   - Inter-node interrupts (imc_kill): cheap for the sender (~5 µs), but
//     with an end-to-end delivery cost of ~1 ms because the signal is only
//     filtered up when the receiving process enters the kernel (§3.2).
//
// Approximations (documented in DESIGN.md): word values keep one previous
// version for remote readers inside the visibility window rather than a full
// history, and the write-through pipe charges per-link bandwidth without
// aggregate contention (bulk transfers charge both).
package memchan

import (
	"fmt"

	"repro/internal/sim"
)

// Params are the Memory Channel timing and capacity parameters. Zero values
// are invalid; use DefaultParams (first-generation MC, as measured in the
// paper) or SecondGeneration for the paper's projection.
type Params struct {
	// Latency is the process-to-process write latency (paper: 5.2 µs).
	Latency sim.Time
	// WriteCost is the processor-side cost of issuing one PIO write to a
	// transmit region (store to I/O space over PCI).
	WriteCost sim.Time
	// LinkBandwidth is the per-link transfer bandwidth in bytes per second
	// (paper: ~30 MB/s, limited by the 32-bit PCI bus).
	LinkBandwidth int64
	// AggregateBandwidth is the cluster-wide bandwidth in bytes per second
	// (paper: ~32 MB/s with the early driver).
	AggregateBandwidth int64
	// InterruptSendCost is the sender-side cost of imc_kill (paper: 5 µs).
	InterruptSendCost sim.Time
	// InterruptLatency is the end-to-end inter-node signal latency
	// (paper: ~1 ms, dominated by kernel filtering on the receiver).
	InterruptLatency sim.Time
	// WriteBufferBytes is the depth of the processor's write buffer feeding
	// the MC adapter; the write-through pipe stalls the writer when more
	// than this many bytes are still undrained.
	WriteBufferBytes int64
}

// DefaultParams models the first-generation Memory Channel measured in the
// paper.
func DefaultParams() Params {
	return Params{
		Latency:            5200, // 5.2 µs
		WriteCost:          250,  // PIO store over 32-bit PCI
		LinkBandwidth:      30e6,
		AggregateBandwidth: 32e6,
		InterruptSendCost:  5 * sim.Microsecond,
		InterruptLatency:   1 * sim.Millisecond,
		WriteBufferBytes:   512,
	}
}

// SecondGeneration models the paper's §1 projection for the follow-on
// network: "something like half the latency, and an order of magnitude more
// bandwidth".
func SecondGeneration() Params {
	p := DefaultParams()
	p.Latency /= 2
	p.LinkBandwidth *= 10
	p.AggregateBandwidth *= 10
	return p
}

// MinCrossNodeLatency returns the smallest virtual latency any cross-node
// interaction modeled by these parameters can carry: reflected writes and
// bulk transfers arrive no earlier than Latency after they are issued, and
// inter-node interrupts no earlier than InterruptLatency. This is the safe
// lookahead a node-parallel simulation (sim.SetLookahead) may declare for a
// cluster whose nodes interact only through this network model. It does NOT
// cover msg.Endpoint.Shutdown, which delivers teardown notices at zero
// latency; a parallel run must quiesce cross-node traffic before shutdown.
func (p Params) MinCrossNodeLatency() sim.Time {
	min := p.Latency
	if p.InterruptLatency < min {
		min = p.InterruptLatency
	}
	return min
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Latency <= 0 || p.WriteCost <= 0 || p.InterruptSendCost <= 0 || p.InterruptLatency <= 0 {
		return fmt.Errorf("memchan: non-positive timing parameter: %+v", p)
	}
	if p.LinkBandwidth <= 0 || p.AggregateBandwidth <= 0 || p.WriteBufferBytes <= 0 {
		return fmt.Errorf("memchan: non-positive capacity parameter: %+v", p)
	}
	return nil
}

// TrafficClass labels Memory Channel traffic for the statistics the paper's
// Table 3 and Figure 6 break down.
type TrafficClass int

const (
	// TrafficDoubling is write-through traffic from doubled shared writes.
	TrafficDoubling TrafficClass = iota
	// TrafficPage is whole-page (and diff) data transfer traffic.
	TrafficPage
	// TrafficMeta is directory and write-notice traffic.
	TrafficMeta
	// TrafficSync is lock and barrier traffic.
	TrafficSync
	// TrafficMessage is request/response message traffic.
	TrafficMessage
	// NumTrafficClasses is the number of traffic classes; valid classes are
	// TrafficClass(0) through NumTrafficClasses-1, so callers can iterate
	// without probing String() for a sentinel.
	NumTrafficClasses
)

func (tc TrafficClass) String() string {
	switch tc {
	case TrafficDoubling:
		return "doubling"
	case TrafficPage:
		return "page"
	case TrafficMeta:
		return "meta"
	case TrafficSync:
		return "sync"
	case TrafficMessage:
		return "message"
	}
	return "unknown"
}

// Net is the Memory Channel instance for one simulated cluster.
type Net struct {
	params Params
	eng    *sim.Engine

	// linkFree[n] is the virtual time at which node n's adapter link is next
	// free; aggFree is the same for the shared hub.
	linkFree []sim.Time
	aggFree  sim.Time

	// pipe[p] is the write-through pipe state for processor p.
	pipe []pipeState

	bytesByClass [NumTrafficClasses]int64
	writesIssued int64
	transfers    int64
	interrupts   int64
}

type pipeState struct {
	// drainAt is the virtual time at which all write-through bytes issued so
	// far will have drained onto the link.
	drainAt sim.Time
	// bytes counts total doubled bytes issued (stats).
	bytes int64
}

// New creates a Memory Channel for the engine's cluster.
func New(eng *sim.Engine, params Params) (*Net, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Net{
		params:   params,
		eng:      eng,
		linkFree: make([]sim.Time, eng.Config().Nodes),
		pipe:     make([]pipeState, eng.NumProcs()),
	}, nil
}

// Params returns the network parameters.
func (n *Net) Params() Params { return n.params }

// TrafficBytes returns the bytes transferred so far in the given class.
func (n *Net) TrafficBytes(tc TrafficClass) int64 { return n.bytesByClass[tc] }

// TotalTraffic returns all bytes transferred.
func (n *Net) TotalTraffic() int64 {
	var t int64
	for _, b := range n.bytesByClass {
		t += b
	}
	return t
}

// Transfers returns the number of bulk transfers performed.
func (n *Net) Transfers() int64 { return n.transfers }

// Interrupts returns the number of inter-node interrupts sent.
func (n *Net) Interrupts() int64 { return n.interrupts }

// durOn returns the time bytes occupy a pipe of the given bandwidth.
func durOn(bytes int64, bw int64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	return sim.Time(bytes * int64(sim.Second) / bw)
}

// Transfer models a bulk data movement of size bytes from the caller's node
// to node dst (page copies, diffs, message payloads). The caller is charged
// the PIO issue cost; the returned time is when the data is fully visible in
// dst's receive region, accounting for link and aggregate bandwidth
// occupancy and the MC latency. The caller's clock is advanced past the
// issue cost but NOT to the arrival time (writes are asynchronous).
func (n *Net) Transfer(p *sim.Proc, dst int, bytes int64, tc TrafficClass) sim.Time {
	p.Advance(n.params.WriteCost)
	src := p.Node
	start := p.Now()
	if n.linkFree[src] > start {
		start = n.linkFree[src]
	}
	if n.aggFree > start {
		start = n.aggFree
	}
	linkDur := durOn(bytes, n.params.LinkBandwidth)
	aggDur := durOn(bytes, n.params.AggregateBandwidth)
	n.linkFree[src] = start + linkDur
	if dst != src {
		// The receiving link is occupied by the DMA into the receive region.
		if rcv := n.linkFree[dst]; rcv > start {
			// Receiver contention delays completion.
			start = rcv
			n.linkFree[src] = start + linkDur
		}
		n.linkFree[dst] = start + linkDur
	}
	n.aggFree = start + aggDur
	n.bytesByClass[tc] += bytes
	n.transfers++
	arrival := start + linkDur + n.params.Latency
	return arrival
}

// WriteThrough models one doubled shared-memory write of size bytes headed to
// the home node home. It is deliberately cheap: the store cost itself is
// charged by the caller's cost model; this call only accounts for write
// buffer and link occupancy, stalling the writer if the buffer is full.
func (n *Net) WriteThrough(p *sim.Proc, home int, bytes int64) {
	ps := &n.pipe[p.ID]
	if ps.drainAt < p.Now() {
		ps.drainAt = p.Now()
	}
	ps.drainAt += durOn(bytes, n.params.LinkBandwidth)
	ps.bytes += bytes
	n.bytesByClass[TrafficDoubling] += bytes
	// Stall if the write buffer cannot absorb the backlog.
	if backlog := ps.drainAt - p.Now(); backlog > durOn(n.params.WriteBufferBytes, n.params.LinkBandwidth) {
		p.AdvanceTo(ps.drainAt - durOn(n.params.WriteBufferBytes, n.params.LinkBandwidth))
	}
}

// FenceTime returns the virtual time at which all of processor p's
// write-through traffic issued so far is guaranteed applied at its home
// nodes (drain plus latency). Cashmere's release operation waits for this.
func (n *Net) FenceTime(p *sim.Proc) sim.Time {
	d := n.pipe[p.ID].drainAt
	if d < p.Now() {
		d = p.Now()
	}
	return d + n.params.Latency
}

// DoubledBytes returns the total write-through bytes issued by processor p.
func (n *Net) DoubledBytes(p *sim.Proc) int64 { return n.pipe[p.ID].bytes }

// AccountTraffic records bytes of Memory Channel traffic in the given class
// without occupancy modelling, for small metadata writes whose cost the
// caller charges explicitly (directory broadcast updates).
func (n *Net) AccountTraffic(tc TrafficClass, bytes int64) {
	n.bytesByClass[tc] += bytes
}

// Interrupt sends an imc_kill-style inter-node signal to the target
// processor: the sender pays the send cost, and the target's inbox receives
// a message with the given kind and payload at now + InterruptLatency.
func (n *Net) Interrupt(p *sim.Proc, target *sim.Proc, kind int, data any) {
	p.Advance(n.params.InterruptSendCost)
	n.interrupts++
	target.Deliver(p.NewMsg(p.Now()+n.params.InterruptLatency, kind, data))
}
