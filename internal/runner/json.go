package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interconnect"
)

// SchemaVersion identifies the JSON layout emitted by WriteJSON. Bump it on
// any incompatible change; consumers check it before trusting field names.
const SchemaVersion = "dsmbench-results/v1"

// JSONSpec is the serialized form of a RunSpec with options resolved to
// their effective values (no pointers, no nils). Interconnect is present
// only for non-Memory-Channel runs, so documents produced by Memory Channel
// configurations serialize exactly as they did before the interconnect
// became pluggable.
type JSONSpec struct {
	App          string             `json:"app"`
	Variant      string             `json:"variant"`
	Procs        int                `json:"procs"`
	Nodes        int                `json:"nodes,omitempty"`
	PPN          int                `json:"ppn,omitempty"`
	Size         apps.Size          `json:"size"`
	Options      resolvedOpts       `json:"options"`
	Interconnect *interconnect.Spec `json:"interconnect,omitempty"`
}

// JSONResult is one executed spec with its outcome. Exactly one of
// Infeasible, Error, or Result describes the outcome.
type JSONResult struct {
	Spec       JSONSpec     `json:"spec"`
	Key        string       `json:"key"`
	Infeasible bool         `json:"infeasible,omitempty"`
	Error      string       `json:"error,omitempty"`
	Result     *core.Result `json:"result,omitempty"`
}

// JSONDocument is the top-level structure WriteJSON emits.
type JSONDocument struct {
	Schema  string       `json:"schema"`
	Results []JSONResult `json:"results"`
}

// Document converts the result set to its serializable form, ordered by
// canonical key so emission is stable across Jobs settings and plan order.
func (rs *ResultSet) Document() JSONDocument {
	specs := rs.Specs()
	SortSpecs(specs)
	doc := JSONDocument{Schema: SchemaVersion}
	for _, s := range specs {
		s = s.Normalize()
		jr := JSONResult{
			Spec: JSONSpec{
				App:          s.App,
				Variant:      s.Variant,
				Procs:        s.Procs,
				Nodes:        s.Nodes,
				PPN:          s.PPN,
				Size:         s.Size,
				Options:      resolve(s.Opts),
				Interconnect: netSpec(s.Opts),
			},
			Key: s.Key(),
		}
		res, err := rs.Get(s)
		switch {
		case errors.Is(err, ErrInfeasible):
			jr.Infeasible = true
		case err != nil:
			jr.Error = err.Error()
		default:
			jr.Result = res
		}
		doc.Results = append(doc.Results, jr)
	}
	return doc
}

// WriteJSON emits the result set as indented JSON.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs.Document())
}

// ReadJSON parses a document previously written by WriteJSON, rejecting
// unknown schema versions.
func ReadJSON(r io.Reader) (*JSONDocument, error) {
	var doc JSONDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("runner: parsing results JSON: %w", err)
	}
	if doc.Schema != SchemaVersion {
		return nil, fmt.Errorf("runner: unsupported results schema %q (want %q)", doc.Schema, SchemaVersion)
	}
	return &doc, nil
}
