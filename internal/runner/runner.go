// Package runner decouples experiment planning from execution and
// presentation. A RunSpec names one deterministic simulation (application,
// protocol variant, processor count, dataset size, model options); a Plan
// collects deduplicated specs; Execute fans a plan out over a bounded pool
// of host workers and returns a ResultSet keyed by spec.
//
// Each worker owns one whole simulation — the discrete-event engine in
// internal/sim is deterministic and self-contained per run — so host-level
// parallelism cannot perturb virtual-time results: the same spec produces
// bit-identical output at any Jobs setting.
//
// Identical configurations are computed exactly once per process: Execute
// consults a process-wide memoization cache keyed by the spec's canonical
// key, so e.g. the sequential baseline shared by Table 2, Figure 5, and the
// ablations runs a single time no matter how many tables ask for it.
package runner

import (
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/cashmere"
	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/sim"
	"repro/internal/variants"
)

// RunSpec identifies one simulation: an application (or a program registered
// with RegisterProgram), a protocol variant, a total processor count mapped
// through the paper's node layouts, a dataset size, and model options.
type RunSpec struct {
	// App is a registered application name (apps.Get) or a program name
	// registered with RegisterProgram.
	App string
	// Variant is a protocol variant name or variants.Sequential.
	Variant string
	// Procs is the total compute-processor count; ignored (forced to 1)
	// for the sequential variant. It is mapped through the paper's node
	// layouts unless Nodes is set.
	Procs int
	// Nodes and PPN, when Nodes > 0, pin the exact cluster shape instead
	// of mapping Procs through variants.LayoutFor (no feasibility check:
	// the caller asked for this shape explicitly).
	Nodes, PPN int
	// Size selects the dataset scale.
	Size apps.Size
	// Opts adjusts the model for this run.
	Opts variants.Options
}

// Normalize returns the spec in canonical form: sequential runs always use
// one processor, and an empty size means the default scale. Two specs that
// normalize equally describe the same simulation.
func (s RunSpec) Normalize() RunSpec {
	if s.Variant == variants.Sequential {
		s.Procs = 1
		s.Nodes, s.PPN = 0, 0
	}
	if s.Nodes > 0 {
		if s.PPN <= 0 {
			s.PPN = 1
		}
		s.Procs = s.Nodes * s.PPN
	}
	if s.Size == "" {
		s.Size = apps.SizeDefault
	}
	return s
}

// resolvedOpts is variants.Options with every pointer dereferenced to its
// effective value, so that "nil" and "explicit default" key identically.
type resolvedOpts struct {
	MC      interconnect.MCParams
	Cache   cache.Config
	NoCache bool
	Csm     cashmere.Config
	Costs   core.CostModel
	// Schedule is part of the canonical identity: a schedule-perturbed run
	// is a different simulation than the canonical-order run of the same
	// spec, so the two must never share a memo entry or a disk-cache file.
	Schedule sim.Schedule
}

func resolve(o variants.Options) resolvedOpts {
	r := resolvedOpts{
		MC:       interconnect.MCFirstGeneration(),
		Cache:    cache.Alpha21064A,
		NoCache:  o.NoCache,
		Csm:      o.Cashmere,
		Costs:    core.DefaultCosts(),
		Schedule: o.Schedule,
	}
	if o.MC != nil {
		r.MC = *o.MC
	}
	if o.Cache != nil {
		r.Cache = *o.Cache
	}
	if o.Costs != nil {
		r.Costs = *o.Costs
	}
	return r
}

// Key returns the spec's canonical identity. Specs with equal keys describe
// the same deterministic simulation and share one cached result.
//
// Interconnect handling is asymmetric on purpose: a nil Opts.Net and any
// spec that normalizes to the Memory Channel contribute nothing to the key,
// so every pre-pluggable-interconnect key (and its disk-cache entry) remains
// byte-identical; only a genuinely different interconnect appends a
// "|net=..." segment and therefore a different cache identity.
func (s RunSpec) Key() string {
	s = s.Normalize()
	key := fmt.Sprintf("%s|%s|%d|%dx%d|%s|%+v", s.App, s.Variant, s.Procs, s.Nodes, s.PPN, s.Size, resolve(s.Opts))
	if net := netSpec(s.Opts); net != nil {
		key += "|net=" + net.String()
	}
	return key
}

// netSpec returns the normalized non-Memory-Channel interconnect spec, or
// nil when the options select the reference Memory Channel (explicitly or by
// default).
func netSpec(o variants.Options) *interconnect.Spec {
	if o.Net == nil {
		return nil
	}
	n := o.Net.Normalized()
	if n.IsMemoryChannel() {
		return nil
	}
	return &n
}

// Plan is an ordered, deduplicated collection of run specs.
type Plan struct {
	specs []RunSpec
	seen  map[string]bool
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{seen: map[string]bool{}}
}

// Add appends specs to the plan, dropping any whose canonical key is
// already present.
func (p *Plan) Add(specs ...RunSpec) {
	for _, s := range specs {
		k := s.Key()
		if p.seen[k] {
			continue
		}
		p.seen[k] = true
		p.specs = append(p.specs, s.Normalize())
	}
}

// Specs returns the deduplicated specs in insertion order.
func (p *Plan) Specs() []RunSpec {
	out := make([]RunSpec, len(p.specs))
	copy(out, p.specs)
	return out
}

// Len returns the number of distinct specs in the plan.
func (p *Plan) Len() int { return len(p.specs) }

// ProgramFunc builds a fresh program at the given dataset scale. Micro
// benchmark programs (Table 1) typically ignore the size.
type ProgramFunc func(apps.Size) *core.Program

var programs = map[string]ProgramFunc{}

// RegisterProgram makes a non-application program (e.g. a microbenchmark)
// runnable by name through the runner. Must be called before any Execute
// that references the name; registrations are not synchronized, so do it
// from init functions.
func RegisterProgram(name string, build ProgramFunc) {
	if _, dup := programs[name]; dup {
		panic(fmt.Sprintf("runner: program %q registered twice", name))
	}
	programs[name] = build
}

// buildProgram resolves a spec's App to a fresh program instance.
func buildProgram(s RunSpec) (*core.Program, error) {
	if build, ok := programs[s.App]; ok {
		return build(s.Size), nil
	}
	entry, err := apps.Get(s.App)
	if err != nil {
		return nil, err
	}
	return entry.New(s.Size), nil
}

// layoutFor maps a spec to its cluster shape using the paper's node layouts.
func layoutFor(s RunSpec) (nodes, ppn int, err error) {
	if s.Variant == variants.Sequential {
		return 1, 1, nil
	}
	if s.Nodes > 0 {
		return s.Nodes, s.PPN, nil
	}
	l, err := variants.LayoutFor(s.Procs)
	if err != nil {
		return 0, 0, err
	}
	if !variants.Feasible(s.Variant, l) {
		return 0, 0, ErrInfeasible
	}
	return l.Nodes, l.PerNode, nil
}

// SortSpecs orders specs by canonical key (a stable order for reports and
// JSON emission).
func SortSpecs(specs []RunSpec) {
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
}
