package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vm"
)

func init() {
	// A deliberately tiny program so the cache-separation tests below spend
	// their time on cache bookkeeping, not simulation.
	RegisterProgram("test:schedkey", func(apps.Size) *core.Program {
		return &core.Program{
			Name:        "schedkey",
			SharedBytes: vm.PageSize,
			Locks:       1,
			Barriers:    1,
			Body: func(p *core.Proc) {
				p.Lock(0)
				p.WriteI64(0, p.ReadI64(0)+1)
				p.Unlock(0)
				p.Barrier(0)
			},
		}
	})
}

func schedSpec(seed uint64) RunSpec {
	s := RunSpec{App: "test:schedkey", Variant: "tmk_mc_poll", Nodes: 2, PPN: 1, Size: apps.SizeSmall}
	if seed != 0 {
		s.Opts.Schedule = sim.Schedule{Seed: seed, CostJitter: 0.5, FlipTies: true, Stagger: sim.Millisecond}
	}
	return s
}

// TestScheduleInKey: the schedule is part of the canonical run identity —
// a perturbed run must never share a key (and therefore a cache entry) with
// the canonical run, and every schedule knob must be distinguishing.
func TestScheduleInKey(t *testing.T) {
	base := schedSpec(0)
	pert := schedSpec(7)
	if base.Key() == pert.Key() {
		t.Fatal("perturbed spec keyed identically to canonical spec")
	}
	if schedSpec(7).Key() != pert.Key() {
		t.Fatal("identical schedules keyed differently")
	}
	if schedSpec(8).Key() == pert.Key() {
		t.Fatal("different schedule seeds keyed identically")
	}
	for name, mutate := range map[string]func(*sim.Schedule){
		"CostJitter": func(s *sim.Schedule) { s.CostJitter = 0.25 },
		"FlipTies":   func(s *sim.Schedule) { s.FlipTies = false },
		"Stagger":    func(s *sim.Schedule) { s.Stagger = 2 * sim.Millisecond },
	} {
		changed := schedSpec(7)
		mutate(&changed.Opts.Schedule)
		if changed.Key() == pert.Key() {
			t.Fatalf("changing Schedule.%s did not change the key", name)
		}
	}
}

// TestScheduleMemoSeparation: perturbed and canonical runs of the same spec
// occupy distinct memo entries — each executes once, then replays for free.
func TestScheduleMemoSeparation(t *testing.T) {
	ResetCache()
	p := NewPlan()
	p.Add(schedSpec(0), schedSpec(1), schedSpec(2))
	if p.Len() != 3 {
		t.Fatalf("plan deduplicated %d of 3 distinct-schedule specs", 3-p.Len())
	}
	before := Executions()
	rs, err := Execute(p, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := Executions() - before; got != 3 {
		t.Fatalf("3 distinct-schedule specs ran %d simulations, want 3", got)
	}
	if _, err := Execute(p, Options{Jobs: 2}); err != nil {
		t.Fatal(err)
	}
	if got := Executions() - before; got != 3 {
		t.Fatalf("cached replay ran %d extra simulations", got-3)
	}
	for _, s := range p.Specs() {
		if _, err := rs.Get(s); err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
	}
}

// TestDiskCacheScheduleSeparation: a stored canonical result must not
// satisfy a perturbed request for the same spec (and vice versa) — the
// schedule seed is in the disk key too.
func TestDiskCacheScheduleSeparation(t *testing.T) {
	dir, err := os.MkdirTemp("", "schedcache")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	exec := func(spec RunSpec) (executed, diskHit bool) {
		t.Helper()
		ResetCache() // force every request through the disk-cache path
		p := NewPlan()
		p.Add(spec)
		e, d := Executions(), DiskHits()
		if _, err := Execute(p, Options{CacheDir: dir}); err != nil {
			t.Fatal(err)
		}
		return Executions() > e, DiskHits() > d
	}

	if executed, _ := exec(schedSpec(0)); !executed {
		t.Fatal("first canonical run not executed")
	}
	if executed, diskHit := exec(schedSpec(3)); !executed || diskHit {
		t.Fatalf("perturbed run after canonical store: executed=%v diskHit=%v, want executed, no disk hit", executed, diskHit)
	}
	if executed, diskHit := exec(schedSpec(3)); executed || !diskHit {
		t.Fatalf("perturbed replay: executed=%v diskHit=%v, want disk hit only", executed, diskHit)
	}
	if executed, diskHit := exec(schedSpec(0)); executed || !diskHit {
		t.Fatalf("canonical replay: executed=%v diskHit=%v, want disk hit only", executed, diskHit)
	}
}

// TestScheduleExcludedFromResultJSON: schedule metadata never reaches the
// serialized measured payload — a perturbed run's Result marshals to the
// same shape as a canonical one. (The spec *options* in the JSON document
// legitimately carry the schedule: that is the run's identity, not its
// measurement.)
func TestScheduleExcludedFromResultJSON(t *testing.T) {
	ResetCache()
	p := NewPlan()
	spec := schedSpec(5)
	p.Add(spec)
	rs, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedule.Enabled() {
		t.Fatal("perturbed run did not record its schedule in the in-memory result")
	}
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{"Schedule", "FlipTies", "Stagger"} {
		if bytes.Contains(payload, []byte(probe)) {
			t.Fatalf("measured result payload leaks schedule metadata %q:\n%s", probe, payload)
		}
	}
}
