package runner

// Cache-key migration tests for the pluggable interconnect: a configuration
// that existed before the interconnect became pluggable must keep its exact
// canonical key (and therefore its disk-cache entries), while any genuinely
// different interconnect must key — and cache — separately.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/interconnect"
	"repro/internal/variants"
)

// legacyKey is the canonical key for SOR/csm_int/1/small exactly as the
// pre-pluggable-interconnect runner produced it (copied verbatim from a
// results document generated before the interconnect package existed). If
// this test fails, every user's disk cache has been orphaned — treat the key
// format as frozen.
const legacyKey = "SOR|csm_int|1|0x0|small|{MC:{Latency:5200 WriteCost:250 LinkBandwidth:30000000 AggregateBandwidth:32000000 InterruptSendCost:5000 InterruptLatency:1000000 WriteBufferBytes:512} Cache:{SizeBytes:16384 LineBytes:64} NoCache:false Csm:{PagesPerSuperpage:0 DisableExclusive:false RoundRobinHomes:false DummyDoubling:false} Costs:{PageFault:78000 ProtChange:62000 MemAccess:10 CacheMiss:80 PollCheck:15 WriteDouble:30 TwinCopy:362000 DiffCreateMin:29000 DiffCreateMax:53000 DiffApplyBase:15000 CopyPerByte:4 DirectoryModLocked:16000 DirectoryMod:5000 LLSC:1000 HandlerWork:3000} Schedule:{Seed:0 CostJitter:0 FlipTies:false Stagger:0}}"

func TestLegacySpecKeyUnchanged(t *testing.T) {
	if got := smallSpec("csm_int", 1).Key(); got != legacyKey {
		t.Errorf("legacy spec key changed:\n got  %s\n want %s", got, legacyKey)
	}
}

// TestMemoryChannelNetSpecsKeyAsLegacy: nil, the zero Spec, and an explicit
// Memory Channel Spec all describe the reference interconnect and must share
// the legacy key (and each other's cache entries).
func TestMemoryChannelNetSpecsKeyAsLegacy(t *testing.T) {
	for _, net := range []*interconnect.Spec{
		nil,
		{},
		{Kind: interconnect.MemoryChannel},
	} {
		s := smallSpec("csm_int", 1)
		s.Opts.Net = net
		if got := s.Key(); got != legacyKey {
			t.Errorf("Net=%+v keys differently from legacy:\n got  %s\n want %s", net, got, legacyKey)
		}
	}
}

func TestNonMCNetSpecChangesKey(t *testing.T) {
	base := smallSpec("csm_poll", 4)
	rdma := base
	rdma.Opts.Net = &interconnect.Spec{Kind: interconnect.RDMA}
	switched := base
	switched.Opts.Net = &interconnect.Spec{Kind: interconnect.Switched}
	if rdma.Key() == base.Key() || switched.Key() == base.Key() {
		t.Fatal("non-MC interconnect did not change the canonical key")
	}
	if rdma.Key() == switched.Key() {
		t.Fatal("rdma and switched specs share a key")
	}
	if !strings.Contains(rdma.Key(), "|net=rdma:") {
		t.Errorf("rdma key missing the net segment: %s", rdma.Key())
	}
	// A parameter change within a kind changes the key too.
	p := interconnect.DefaultRDMA()
	p.Latency *= 2
	tuned := base
	tuned.Opts.Net = &interconnect.Spec{Kind: interconnect.RDMA, RDMA: &p}
	if tuned.Key() == rdma.Key() {
		t.Fatal("rdma parameter change did not change the key")
	}
	// Explicit defaults and nil parameters normalize to one identity.
	dflt := interconnect.DefaultRDMA()
	explicit := base
	explicit.Opts.Net = &interconnect.Spec{Kind: interconnect.RDMA, RDMA: &dflt}
	if explicit.Key() != rdma.Key() {
		t.Fatal("explicit-default rdma params keyed differently from nil")
	}
}

// TestDiskCacheLegacyEntriesStillHit simulates the upgrade path: a disk
// cache populated by a legacy configuration (no interconnect field) is hit
// by the same configuration expressed through the new Spec plumbing, while
// an RDMA run of the same app misses and caches separately.
func TestDiskCacheLegacyEntriesStillHit(t *testing.T) {
	dir := t.TempDir()
	legacy := smallSpec(variants.Sequential, 1)
	p := NewPlan()
	p.Add(legacy)

	ResetCache()
	if _, err := Execute(p, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if n := len(cacheFiles(t, dir)); n != 1 {
		t.Fatalf("cache holds %d files, want 1", n)
	}

	// New process, same disk cache, Memory Channel spelled explicitly.
	ResetCache()
	mcSpec := legacy
	mcSpec.Opts.Net = &interconnect.Spec{Kind: interconnect.MemoryChannel}
	execBefore, hitsBefore := Executions(), DiskHits()
	p2 := NewPlan()
	p2.Add(mcSpec)
	if _, err := Execute(p2, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if got := Executions() - execBefore; got != 0 {
		t.Fatalf("explicit-MC run executed %d simulations, want 0 (legacy disk hit)", got)
	}
	if got := DiskHits() - hitsBefore; got != 1 {
		t.Fatalf("explicit-MC run reported %d disk hits, want 1", got)
	}

	// An RDMA run must not be served from the legacy entry.
	ResetCache()
	rdmaSpec := legacy
	rdmaSpec.Opts.Net = &interconnect.Spec{Kind: interconnect.RDMA}
	execBefore = Executions()
	p3 := NewPlan()
	p3.Add(rdmaSpec)
	if _, err := Execute(p3, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if got := Executions() - execBefore; got != 1 {
		t.Fatalf("rdma run executed %d simulations, want 1 (must not hit the MC entry)", got)
	}
	if n := len(cacheFiles(t, dir)); n != 2 {
		t.Fatalf("cache holds %d files after the rdma run, want 2", n)
	}
}

// TestInterconnectInJSON: results JSON names the interconnect for non-MC
// runs and omits the field entirely for Memory Channel runs (so legacy
// documents stay byte-identical).
func TestInterconnectInJSON(t *testing.T) {
	ResetCache()
	mc := smallSpec(variants.Sequential, 1)
	rdma := RunSpec{App: "SOR", Variant: "csm_poll", Procs: 2, Size: apps.SizeSmall,
		Opts: variants.Options{Net: &interconnect.Spec{Kind: interconnect.RDMA}}}
	p := NewPlan()
	p.Add(mc, rdma)
	rs, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range doc.Results {
		switch {
		case strings.Contains(r.Key, "|net=rdma:"):
			if r.Spec.Interconnect == nil || r.Spec.Interconnect.Kind != interconnect.RDMA {
				t.Errorf("rdma result does not name its interconnect: %+v", r.Spec.Interconnect)
			}
		default:
			if r.Spec.Interconnect != nil {
				t.Errorf("MC result carries an interconnect field: %+v", r.Spec.Interconnect)
			}
		}
	}
	if !strings.Contains(buf.String(), `"interconnect"`) {
		t.Error("serialized document never names the interconnect")
	}
}
