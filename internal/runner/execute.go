package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/variants"
)

// ErrInfeasible marks a spec whose variant cannot run at the requested
// layout (csm_pp dedicates one processor per node, so it cannot use all
// four, §4.3). Renderers print such cells as "-".
var ErrInfeasible = errors.New("runner: variant infeasible at this layout")

// Options configure one Execute call.
type Options struct {
	// Jobs bounds the number of simulations running concurrently on the
	// host. Zero or negative means runtime.NumCPU().
	Jobs int
	// OnProgress, if set, is called after each spec resolves (executed or
	// served from cache) with the number done so far, the plan total, and
	// how the run executed. Calls are serialized; done reaches total
	// exactly once.
	OnProgress func(done, total int, spec RunSpec, info RunInfo)
	// Parallel requests the node-parallel simulation engine for each run
	// (core.Config.Parallel). Engine mode cannot change any result — runs
	// fall back to sequential unless the protocol is domain-safe, and
	// parallel execution is bit-exact — so cached results are shared
	// freely between Parallel and sequential Execute calls.
	Parallel bool
	// CacheDir, if non-empty, enables a persistent on-disk result cache:
	// successful results are written there after execution and reused by
	// later processes. Entries are keyed by the spec's canonical key and
	// the results schema version, so a schema bump invalidates the whole
	// cache. Failed and infeasible runs are never cached.
	CacheDir string
}

// RunInfo describes how one spec's run was satisfied, for progress display.
type RunInfo struct {
	// Parallel and Domains report the engine mode the run committed to.
	// For disk-cache hits they are zero: engine mode is observability
	// only and deliberately excluded from the serialized result.
	Parallel bool
	Domains  int
	// DiskCached marks a result loaded from Options.CacheDir rather than
	// executed (or memoized) in this process.
	DiskCached bool
}

// ResultSet holds the outcome of every spec in an executed plan, keyed by
// the spec's canonical key.
type ResultSet struct {
	order   []RunSpec
	results map[string]*outcome
}

type outcome struct {
	spec RunSpec
	res  *core.Result
	err  error
}

// Get returns the result for a spec (matched by canonical key). It returns
// ErrInfeasible for infeasible layouts, the run's error if it failed, or an
// error if the spec was not part of the executed plan.
func (rs *ResultSet) Get(spec RunSpec) (*core.Result, error) {
	o, ok := rs.results[spec.Key()]
	if !ok {
		return nil, fmt.Errorf("runner: spec %s/%s/p%d not in result set", spec.App, spec.Variant, spec.Procs)
	}
	return o.res, o.err
}

// Specs returns the executed specs in plan order.
func (rs *ResultSet) Specs() []RunSpec {
	out := make([]RunSpec, len(rs.order))
	copy(out, rs.order)
	return out
}

// Len returns the number of specs in the set.
func (rs *ResultSet) Len() int { return len(rs.order) }

// memo is the process-wide result cache. Entries are created under mu; the
// simulation itself runs inside the entry's once so concurrent Execute
// calls cannot duplicate work.
var memo = struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}{m: map[string]*memoEntry{}}

type memoEntry struct {
	once     sync.Once
	res      *core.Result
	err      error
	fromDisk bool
}

// executions counts actual simulations run (cache misses) process-wide.
var executions atomic.Int64

// Executions returns the number of simulations actually executed by this
// process so far. The difference across calls proves cache behavior in
// tests: replaying a cached plan leaves it unchanged.
func Executions() int64 { return executions.Load() }

// ResetCache empties the memoization cache (for tests and benchmarks that
// need to measure or force re-execution).
func ResetCache() {
	memo.mu.Lock()
	memo.m = map[string]*memoEntry{}
	memo.mu.Unlock()
}

func lookup(key string) *memoEntry {
	memo.mu.Lock()
	e, ok := memo.m[key]
	if !ok {
		e = &memoEntry{}
		memo.m[key] = e
	}
	memo.mu.Unlock()
	return e
}

// run executes one spec's simulation (no caching).
func run(s RunSpec, parallel bool) (*core.Result, error) {
	nodes, ppn, err := layoutFor(s)
	if err != nil {
		return nil, err
	}
	cfg, err := variants.Config(s.Variant, nodes, ppn, s.Opts)
	if err != nil {
		return nil, err
	}
	cfg.Parallel = parallel
	prog, err := buildProgram(s)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg, prog)
}

// PotentialDomains returns the number of scheduling domains a spec's run
// could commit to under Options.Parallel: the layout's node count when the
// variant's protocol is domain-safe, 1 otherwise (or when the layout is
// unknown/infeasible). Callers use the maximum over a plan to budget host
// workers (jobs x domains <= cores).
func PotentialDomains(s RunSpec) int {
	if !variants.DomainSafe(s.Variant) {
		return 1
	}
	nodes, _, err := layoutFor(s)
	if err != nil || nodes <= 1 {
		return 1
	}
	return nodes
}

// Execute runs every spec in the plan, fanning out over a bounded worker
// pool. Each worker owns one whole deterministic simulation, so results are
// bit-identical at any Jobs setting. Specs already in the process-wide
// cache are served without re-executing. Execute itself only fails on an
// empty plan; per-spec failures (including ErrInfeasible) are reported
// through ResultSet.Get so renderers can decide what a failed cell means.
func Execute(plan *Plan, opts Options) (*ResultSet, error) {
	specs := plan.Specs()
	if len(specs) == 0 {
		return nil, errors.New("runner: empty plan")
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}

	rs := &ResultSet{order: specs, results: make(map[string]*outcome, len(specs))}
	outcomes := make([]*outcome, len(specs))

	var (
		progressMu sync.Mutex
		done       int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s := specs[i]
				e := lookup(s.Key())
				e.once.Do(func() {
					if opts.CacheDir != "" {
						if res, ok := loadDiskResult(opts.CacheDir, s.Key()); ok {
							e.res, e.fromDisk = res, true
							diskHits.Add(1)
							return
						}
					}
					e.res, e.err = run(s, opts.Parallel)
					if e.err == nil || !errors.Is(e.err, ErrInfeasible) {
						executions.Add(1)
					}
					if e.err == nil && opts.CacheDir != "" {
						// The disk cache is advisory: a write failure
						// (read-only dir, disk full) must not fail the run.
						_ = storeDiskResult(opts.CacheDir, s.Key(), e.res)
					}
				})
				outcomes[i] = &outcome{spec: s, res: e.res, err: e.err}
				if opts.OnProgress != nil {
					info := RunInfo{DiskCached: e.fromDisk}
					if e.res != nil {
						info.Parallel = e.res.EngineParallel
						info.Domains = e.res.EngineDomains
					}
					progressMu.Lock()
					done++
					opts.OnProgress(done, len(specs), s, info)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, s := range specs {
		rs.results[s.Key()] = outcomes[i]
	}
	return rs, nil
}
