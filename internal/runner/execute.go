package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/variants"
)

// ErrInfeasible marks a spec whose variant cannot run at the requested
// layout (csm_pp dedicates one processor per node, so it cannot use all
// four, §4.3). Renderers print such cells as "-".
var ErrInfeasible = errors.New("runner: variant infeasible at this layout")

// Options configure one Execute call.
type Options struct {
	// Jobs bounds the number of simulations running concurrently on the
	// host. Zero or negative means runtime.NumCPU().
	Jobs int
	// OnProgress, if set, is called after each spec resolves (executed or
	// served from cache) with the number done so far and the plan total.
	// Calls are serialized; done reaches total exactly once.
	OnProgress func(done, total int, spec RunSpec)
}

// ResultSet holds the outcome of every spec in an executed plan, keyed by
// the spec's canonical key.
type ResultSet struct {
	order   []RunSpec
	results map[string]*outcome
}

type outcome struct {
	spec RunSpec
	res  *core.Result
	err  error
}

// Get returns the result for a spec (matched by canonical key). It returns
// ErrInfeasible for infeasible layouts, the run's error if it failed, or an
// error if the spec was not part of the executed plan.
func (rs *ResultSet) Get(spec RunSpec) (*core.Result, error) {
	o, ok := rs.results[spec.Key()]
	if !ok {
		return nil, fmt.Errorf("runner: spec %s/%s/p%d not in result set", spec.App, spec.Variant, spec.Procs)
	}
	return o.res, o.err
}

// Specs returns the executed specs in plan order.
func (rs *ResultSet) Specs() []RunSpec {
	out := make([]RunSpec, len(rs.order))
	copy(out, rs.order)
	return out
}

// Len returns the number of specs in the set.
func (rs *ResultSet) Len() int { return len(rs.order) }

// memo is the process-wide result cache. Entries are created under mu; the
// simulation itself runs inside the entry's once so concurrent Execute
// calls cannot duplicate work.
var memo = struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}{m: map[string]*memoEntry{}}

type memoEntry struct {
	once sync.Once
	res  *core.Result
	err  error
}

// executions counts actual simulations run (cache misses) process-wide.
var executions atomic.Int64

// Executions returns the number of simulations actually executed by this
// process so far. The difference across calls proves cache behavior in
// tests: replaying a cached plan leaves it unchanged.
func Executions() int64 { return executions.Load() }

// ResetCache empties the memoization cache (for tests and benchmarks that
// need to measure or force re-execution).
func ResetCache() {
	memo.mu.Lock()
	memo.m = map[string]*memoEntry{}
	memo.mu.Unlock()
}

func lookup(key string) *memoEntry {
	memo.mu.Lock()
	e, ok := memo.m[key]
	if !ok {
		e = &memoEntry{}
		memo.m[key] = e
	}
	memo.mu.Unlock()
	return e
}

// run executes one spec's simulation (no caching).
func run(s RunSpec) (*core.Result, error) {
	nodes, ppn, err := layoutFor(s)
	if err != nil {
		return nil, err
	}
	cfg, err := variants.Config(s.Variant, nodes, ppn, s.Opts)
	if err != nil {
		return nil, err
	}
	prog, err := buildProgram(s)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg, prog)
}

// Execute runs every spec in the plan, fanning out over a bounded worker
// pool. Each worker owns one whole deterministic simulation, so results are
// bit-identical at any Jobs setting. Specs already in the process-wide
// cache are served without re-executing. Execute itself only fails on an
// empty plan; per-spec failures (including ErrInfeasible) are reported
// through ResultSet.Get so renderers can decide what a failed cell means.
func Execute(plan *Plan, opts Options) (*ResultSet, error) {
	specs := plan.Specs()
	if len(specs) == 0 {
		return nil, errors.New("runner: empty plan")
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}

	rs := &ResultSet{order: specs, results: make(map[string]*outcome, len(specs))}
	outcomes := make([]*outcome, len(specs))

	var (
		progressMu sync.Mutex
		done       int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s := specs[i]
				e := lookup(s.Key())
				e.once.Do(func() {
					e.res, e.err = run(s)
					if e.err == nil || !errors.Is(e.err, ErrInfeasible) {
						executions.Add(1)
					}
				})
				outcomes[i] = &outcome{spec: s, res: e.res, err: e.err}
				if opts.OnProgress != nil {
					progressMu.Lock()
					done++
					opts.OnProgress(done, len(specs), s)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, s := range specs {
		rs.results[s.Key()] = outcomes[i]
	}
	return rs, nil
}
