package runner

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/sim"
	"repro/internal/variants"
	"repro/internal/vm"
)

func smallSpec(variant string, procs int) RunSpec {
	return RunSpec{App: "SOR", Variant: variant, Procs: procs, Size: apps.SizeSmall}
}

func TestPlanDeduplicates(t *testing.T) {
	p := NewPlan()
	p.Add(smallSpec("csm_poll", 4), smallSpec("csm_poll", 4))
	if p.Len() != 1 {
		t.Fatalf("duplicate spec not deduplicated: plan has %d specs", p.Len())
	}

	// nil options and explicit defaults describe the same simulation.
	mc := interconnect.MCFirstGeneration()
	withDefault := smallSpec("csm_poll", 4)
	withDefault.Opts.MC = &mc
	p.Add(withDefault)
	if p.Len() != 1 {
		t.Fatalf("explicit-default MC params keyed differently from nil")
	}

	// Sequential runs normalize to one processor regardless of Procs.
	p2 := NewPlan()
	p2.Add(smallSpec(variants.Sequential, 1), smallSpec(variants.Sequential, 8))
	if p2.Len() != 1 {
		t.Fatalf("sequential specs with different Procs not normalized: %d specs", p2.Len())
	}
}

func TestKeyDistinguishesOptions(t *testing.T) {
	base := smallSpec("csm_poll", 4)
	mc2 := interconnect.MCSecondGeneration()
	changed := base
	changed.Opts.MC = &mc2
	if base.Key() == changed.Key() {
		t.Fatal("different MC params produced the same key")
	}
	bigger := base
	bigger.Procs = 8
	if base.Key() == bigger.Key() {
		t.Fatal("different processor counts produced the same key")
	}
}

func TestExecuteCachesAcrossCalls(t *testing.T) {
	ResetCache()
	p := NewPlan()
	p.Add(smallSpec(variants.Sequential, 1), smallSpec("csm_poll", 2))
	before := Executions()
	rs, err := Execute(p, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := Executions() - before; got != 2 {
		t.Fatalf("first execution ran %d simulations, want 2", got)
	}
	// Re-executing the same plan must be served entirely from cache.
	rs2, err := Execute(p, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := Executions() - before; got != 2 {
		t.Fatalf("cached re-execution ran %d extra simulations", got-2)
	}
	for _, s := range p.Specs() {
		r1, err1 := rs.Get(s)
		r2, err2 := rs2.Get(s)
		if err1 != nil || err2 != nil {
			t.Fatalf("get: %v %v", err1, err2)
		}
		if r1.Time != r2.Time || !reflect.DeepEqual(r1.Total, r2.Total) {
			t.Fatalf("cached result differs for %s", s.Key())
		}
	}
}

func TestInfeasibleSpec(t *testing.T) {
	ResetCache()
	p := NewPlan()
	p.Add(smallSpec("csm_pp", 32))
	before := Executions()
	rs, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Get(smallSpec("csm_pp", 32)); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("csm_pp at 32 procs: got %v, want ErrInfeasible", err)
	}
	if got := Executions() - before; got != 0 {
		t.Fatalf("infeasible spec counted as %d executions", got)
	}
}

func TestExecuteParallelMatchesSerial(t *testing.T) {
	p := NewPlan()
	for _, v := range []string{"csm_poll", "tmk_mc_poll", "csm_int"} {
		p.Add(smallSpec(v, 2), smallSpec(v, 4))
	}
	p.Add(smallSpec(variants.Sequential, 1))

	ResetCache()
	serial, err := Execute(p, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	parallel, err := Execute(p, Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Specs() {
		r1, err1 := serial.Get(s)
		r2, err2 := parallel.Get(s)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", s.Key(), err1, err2)
		}
		if r1.Time != r2.Time {
			t.Errorf("%s: Jobs=1 time %d != Jobs=8 time %d", s.Key(), r1.Time, r2.Time)
		}
		if !reflect.DeepEqual(r1.Total, r2.Total) {
			t.Errorf("%s: aggregate stats differ between Jobs=1 and Jobs=8", s.Key())
		}
		if !reflect.DeepEqual(r1.PerProc, r2.PerProc) {
			t.Errorf("%s: per-processor stats differ between Jobs=1 and Jobs=8", s.Key())
		}
		if !reflect.DeepEqual(r1.Traffic, r2.Traffic) {
			t.Errorf("%s: traffic differs between Jobs=1 and Jobs=8", s.Key())
		}
	}
}

func TestProgress(t *testing.T) {
	ResetCache()
	p := NewPlan()
	p.Add(smallSpec(variants.Sequential, 1), smallSpec("csm_poll", 2), smallSpec("csm_pp", 32))
	var calls, last, total int
	_, err := Execute(p, Options{Jobs: 4, OnProgress: func(done, tot int, _ RunSpec, _ RunInfo) {
		calls++
		last, total = done, tot
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || last != 3 || total != 3 {
		t.Fatalf("progress: %d calls, last %d/%d, want 3 calls reaching 3/3", calls, last, total)
	}
}

func TestRegisteredProgram(t *testing.T) {
	RegisterProgram("test:noop", func(apps.Size) *core.Program {
		return &core.Program{
			Name:        "test-noop",
			SharedBytes: vm.PageSize,
			Body: func(p *core.Proc) {
				p.Compute(5 * sim.Microsecond)
				p.Finish()
				if p.Rank() == 0 {
					p.ReportCheck("ok", 1)
				}
			},
		}
	})
	p := NewPlan()
	spec := RunSpec{App: "test:noop", Variant: "csm_poll", Procs: 2, Size: apps.SizeSmall}
	p.Add(spec)
	rs, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks["ok"] != 1 || res.Time <= 0 {
		t.Fatalf("registered program result: checks=%v time=%d", res.Checks, res.Time)
	}
}

func TestExplicitShape(t *testing.T) {
	spec := RunSpec{App: "SOR", Variant: "csm_poll", Nodes: 3, PPN: 2, Size: apps.SizeSmall}
	if n := spec.Normalize(); n.Procs != 6 {
		t.Fatalf("Normalize with explicit shape: procs %d, want 6", n.Procs)
	}
	p := NewPlan()
	p.Add(spec)
	rs, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 6 {
		t.Fatalf("explicit 3x2 shape ran %d procs, want 6", res.Procs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := NewPlan()
	p.Add(smallSpec(variants.Sequential, 1), smallSpec("csm_poll", 2), smallSpec("csm_pp", 32))
	rs, err := Execute(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaVersion {
		t.Fatalf("schema %q", doc.Schema)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(doc.Results))
	}
	var infeasible, withResult int
	for _, r := range doc.Results {
		if r.Infeasible {
			infeasible++
			continue
		}
		if r.Result == nil {
			t.Fatalf("feasible spec %s has no result", r.Key)
		}
		if r.Result.Time <= 0 {
			t.Fatalf("spec %s has non-positive time", r.Key)
		}
		withResult++
	}
	if infeasible != 1 || withResult != 2 {
		t.Fatalf("infeasible=%d withResult=%d, want 1 and 2", infeasible, withResult)
	}

	// Unknown schema versions are rejected.
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"schema":"bogus/v9","results":[]}`))); err == nil {
		t.Fatal("bogus schema accepted")
	}
}
