package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/core"
)

// The persistent result cache (Options.CacheDir) stores one JSON file per
// successfully executed spec so that repeated dsmbench invocations — sweeps
// re-run after a rendering change, CI re-runs, ablation subsets of an
// already-executed full sweep — skip the simulation entirely. Entries embed
// both the spec's canonical key and the results schema version and are
// verified on load, so a stale or foreign file degrades to a cache miss,
// never a wrong result; bumping SchemaVersion invalidates every entry at
// once. Only successful results are stored: errors and infeasible layouts
// are cheap to rediscover and must not be pinned by a cache.

// diskEntry is the on-disk format of one cached result.
type diskEntry struct {
	Schema string       `json:"schema"`
	Key    string       `json:"key"`
	Result *core.Result `json:"result"`
}

// diskHits counts results served from the on-disk cache process-wide.
var diskHits atomic.Int64

// DiskHits returns the number of results loaded from Options.CacheDir by
// this process so far (the disk-level analog of Executions).
func DiskHits() int64 { return diskHits.Load() }

// diskCachePath names the cache file for a spec key. Keys contain characters
// that are hostile to filesystems (slashes from app names would be, spaces
// and braces from the options struct are), so the name is a digest of the
// key together with the schema version.
func diskCachePath(dir, key string) string {
	sum := sha256.Sum256([]byte(SchemaVersion + "\n" + key))
	return filepath.Join(dir, hex.EncodeToString(sum[:])+".json")
}

// loadDiskResult returns the cached result for a spec key, or ok=false on
// any miss: absent file, unreadable JSON, or a schema/key mismatch (a digest
// collision or a file written by an incompatible version).
func loadDiskResult(dir, key string) (*core.Result, bool) {
	data, err := os.ReadFile(diskCachePath(dir, key))
	if err != nil {
		return nil, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != SchemaVersion || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// storeDiskResult writes one result into the cache directory, creating it if
// needed. The write goes to a temp file first and is renamed into place, so
// concurrent processes sharing a cache directory see either the old entry or
// the complete new one, never a torn file.
func storeDiskResult(dir, key string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(diskEntry{Schema: SchemaVersion, Key: key, Result: res}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".cache-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), diskCachePath(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
