package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/variants"
)

func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

// TestDiskCacheServesLaterProcesses simulates two dsmbench invocations
// sharing a -cache-dir: the first executes and populates the directory, the
// second (memo cleared, as a fresh process would be) is served entirely from
// disk. Infeasible specs are rediscovered, never cached.
func TestDiskCacheServesLaterProcesses(t *testing.T) {
	dir := t.TempDir()
	p := NewPlan()
	p.Add(smallSpec(variants.Sequential, 1), smallSpec("csm_poll", 2), smallSpec("csm_pp", 32))

	ResetCache()
	execBefore, hitsBefore := Executions(), DiskHits()
	rs1, err := Execute(p, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := Executions() - execBefore; got != 2 {
		t.Fatalf("first run executed %d simulations, want 2", got)
	}
	if got := DiskHits() - hitsBefore; got != 0 {
		t.Fatalf("first run reported %d disk hits on an empty cache", got)
	}
	if files := cacheFiles(t, dir); len(files) != 2 {
		t.Fatalf("cache holds %d files, want 2 (infeasible specs must not be cached): %v", len(files), files)
	}

	ResetCache() // a new process has an empty memo but the same disk cache
	execBefore = Executions()
	rs2, err := Execute(p, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := Executions() - execBefore; got != 0 {
		t.Fatalf("second run executed %d simulations, want 0 (disk cache)", got)
	}
	if got := DiskHits() - hitsBefore; got != 2 {
		t.Fatalf("second run reported %d disk hits, want 2", got)
	}

	for _, s := range p.Specs() {
		r1, err1 := rs1.Get(s)
		r2, err2 := rs2.Get(s)
		if errors.Is(err1, ErrInfeasible) {
			if !errors.Is(err2, ErrInfeasible) {
				t.Fatalf("%s: infeasible first, then %v", s.Key(), err2)
			}
			continue
		}
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", s.Key(), err1, err2)
		}
		b1, _ := json.Marshal(r1)
		b2, _ := json.Marshal(r2)
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: disk-cached result differs from the executed one", s.Key())
		}
	}
}

// TestDiskCacheInvalidation proves the cache rejects entries from an
// incompatible schema version (the invalidation mechanism: bumping
// SchemaVersion orphans every file) and degrades corrupt files to misses.
func TestDiskCacheInvalidation(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec(variants.Sequential, 1)
	p := NewPlan()
	p.Add(spec)

	ResetCache()
	if _, err := Execute(p, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	path := diskCachePath(dir, spec.Normalize().Key())
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not at the expected path: %v", err)
	}

	// Rewrite the entry as if a previous schema version had produced it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Schema = "dsmbench-results/v0"
	stale, _ := json.Marshal(e)
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	ResetCache()
	before := Executions()
	if _, err := Execute(p, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if got := Executions() - before; got != 1 {
		t.Fatalf("stale-schema entry produced %d executions, want 1 (must be a miss)", got)
	}
	// The miss re-executes and overwrites the entry with the current schema.
	if res, ok := loadDiskResult(dir, spec.Normalize().Key()); !ok || res == nil {
		t.Fatal("re-execution did not refresh the stale entry")
	}

	// Corrupt bytes degrade to a miss rather than an error.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	before = Executions()
	if _, err := Execute(p, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	if got := Executions() - before; got != 1 {
		t.Fatalf("corrupt entry produced %d executions, want 1", got)
	}

	// A key mismatch inside a well-formed file (digest collision, copied
	// file) is also a miss.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Key = "some|other|spec"
	wrongKey, _ := json.Marshal(e)
	if err := os.WriteFile(path, wrongKey, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadDiskResult(dir, spec.Normalize().Key()); ok {
		t.Fatal("entry with mismatched key served as a hit")
	}
}

// TestDiskCacheAtomicWrites checks no temp droppings are left behind and the
// final file decodes cleanly.
func TestDiskCacheAtomicWrites(t *testing.T) {
	dir := t.TempDir()
	res := &core.Result{Program: "x", Variant: "y", Procs: 1, Time: 42}
	if err := storeDiskResult(dir, "k", res); err != nil {
		t.Fatal(err)
	}
	for _, f := range cacheFiles(t, dir) {
		if filepath.Ext(f) != ".json" {
			t.Errorf("leftover non-cache file %q", f)
		}
	}
	got, ok := loadDiskResult(dir, "k")
	if !ok || got.Time != 42 {
		t.Fatalf("round trip: ok=%v res=%+v", ok, got)
	}
}

// TestEngineModeExcludedFromJSON proves the engine-mode observability fields
// never reach serialized results: two results differing only in engine mode
// marshal to identical bytes, which is what keeps -par output byte-identical
// to sequential output.
func TestEngineModeExcludedFromJSON(t *testing.T) {
	a := core.Result{Program: "SOR", Variant: "csm_poll", Procs: 2, Time: 7}
	b := a
	b.EngineParallel = true
	b.EngineDomains = 8
	ba, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("engine mode leaked into JSON:\n%s\n%s", ba, bb)
	}
}

// TestPotentialDomains pins the jobs-budgeting helper: every DSM variant is
// domain-unsafe (1 domain), and the sequential baseline runs one node.
func TestPotentialDomains(t *testing.T) {
	for _, v := range variants.Names {
		if d := PotentialDomains(smallSpec(v, 8)); d != 1 {
			t.Errorf("%s: potential domains %d, want 1 (domain-unsafe protocol)", v, d)
		}
	}
	if d := PotentialDomains(RunSpec{App: "SOR", Variant: variants.Sequential, Procs: 1, Size: apps.SizeSmall}); d != 1 {
		t.Errorf("sequential: potential domains %d, want 1", d)
	}
}
