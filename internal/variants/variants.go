// Package variants maps the paper's six protocol variants (§4: three
// Cashmere and three TreadMarks configurations) plus the sequential baseline
// onto core run configurations.
package variants

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cashmere"
	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/treadmarks"
)

// Names of the six protocol variants, in the paper's order.
var Names = []string{"csm_pp", "csm_int", "csm_poll", "tmk_udp_int", "tmk_mc_int", "tmk_mc_poll"}

// Sequential is the baseline variant name.
const Sequential = "sequential"

// IsCashmere reports whether the variant is a Cashmere configuration.
func IsCashmere(name string) bool {
	return name == "csm_pp" || name == "csm_int" || name == "csm_poll"
}

// DomainSafe reports, statically, whether a variant's protocol may run on the
// node-parallel simulation engine (see core.DomainSafety). Every DSM variant
// answers false: Cashmere writes remote home-node frames and the shared page
// directory in place, and TreadMarks mutates cluster-global interval, diff,
// and lock-manager state from the accessing processor's goroutine. Only the
// single-processor sequential baseline is domain-confined (and, with one
// node, the engine never parallelizes it anyway). The answer must agree with
// the protocol's own DomainSafe method; a test cross-checks the two.
func DomainSafe(name string) bool {
	return name == Sequential
}

// Options adjust the model (defaults reproduce the paper's platform).
type Options struct {
	// MC overrides the Memory Channel parameters (zero value: first
	// generation, interconnect.MCFirstGeneration). Only meaningful when Net
	// selects the Memory Channel.
	MC *interconnect.MCParams
	// Net selects the interconnect model (nil or a Memory Channel spec: the
	// reference Memory Channel, exactly as before the interconnect became
	// pluggable).
	Net *interconnect.Spec
	// Cache overrides the L1 geometry (nil: the 21064A's 16 KB
	// direct-mapped).
	Cache *cache.Config
	// NoCache disables the L1 model entirely.
	NoCache bool
	// Cashmere carries protocol-specific ablation knobs.
	Cashmere cashmere.Config
	// TreadMarks carries protocol-specific knobs (the zero value is the
	// paper's configuration). Includes the test-only fault-injection switch
	// dsmcheck's self-test uses to prove the harness catches protocol bugs.
	TreadMarks treadmarks.Config
	// Costs overrides the cost model (zero value: core.DefaultCosts).
	Costs *core.CostModel
	// Schedule perturbs the simulated event schedule (schedule-space
	// exploration; internal/check, cmd/dsmcheck). The zero value runs the
	// canonical order. Perturbed runs carry the schedule in their canonical
	// run key, so they never share a cache entry with canonical runs.
	Schedule sim.Schedule
}

// Config builds the run configuration for one variant on the given cluster
// shape (nodes x procsPerNode compute processors).
func Config(name string, nodes, procsPerNode int, opts Options) (core.Config, error) {
	cfg := core.Config{
		Nodes:        nodes,
		ProcsPerNode: procsPerNode,
		MC:           interconnect.MCFirstGeneration(),
		Costs:        core.DefaultCosts(),
		Variant:      name,
		Schedule:     opts.Schedule,
	}
	if opts.MC != nil {
		cfg.MC = *opts.MC
	}
	if opts.Net != nil {
		if !opts.Net.IsMemoryChannel() && opts.MC != nil {
			return core.Config{}, fmt.Errorf("variants: MC parameter overrides make no sense with the %q interconnect", opts.Net.Kind)
		}
		cfg.Net = *opts.Net
	}
	if opts.Costs != nil {
		cfg.Costs = *opts.Costs
	}
	if !opts.NoCache {
		c := cache.Alpha21064A
		if opts.Cache != nil {
			c = *opts.Cache
		}
		cfg.Cache = &c
	}
	switch name {
	case "csm_pp":
		cfg.NewProtocol = cashmere.New(opts.Cashmere)
		cfg.DedicatedServer = true
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
	case "csm_int":
		cfg.NewProtocol = cashmere.New(opts.Cashmere)
		cfg.Msg = msg.DefaultParams(msg.ModeInterrupt)
	case "csm_poll":
		cfg.NewProtocol = cashmere.New(opts.Cashmere)
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
		cfg.PollingInstrumented = true
	case "tmk_udp_int":
		cfg.NewProtocol = treadmarks.New(opts.TreadMarks)
		cfg.Msg = msg.DefaultParams(msg.ModeUDP)
	case "tmk_mc_int":
		cfg.NewProtocol = treadmarks.New(opts.TreadMarks)
		cfg.Msg = msg.DefaultParams(msg.ModeInterrupt)
	case "tmk_mc_poll":
		cfg.NewProtocol = treadmarks.New(opts.TreadMarks)
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
		cfg.PollingInstrumented = true
	case Sequential:
		cfg.Nodes, cfg.ProcsPerNode = 1, 1
		cfg.NewProtocol = core.NewNullProtocol
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
	default:
		return core.Config{}, fmt.Errorf("variants: unknown variant %q", name)
	}
	return cfg, nil
}

// Layout is a processor-count configuration from the paper's §4.3: how many
// nodes and processors per node to use for a given total.
type Layout struct {
	Procs, Nodes, PerNode int
}

// PaperLayouts are the paper's processor configurations: "2: separate nodes;
// 4: one processor in each of 4 nodes; 8: two processors in each of 4 nodes;
// 12: three processors in each of 4 nodes; 16: two processors in each of 8
// nodes; 24: three processors in each of 8 nodes; 32: four in each of 8".
var PaperLayouts = []Layout{
	{1, 1, 1},
	{2, 2, 1},
	{4, 4, 1},
	{8, 4, 2},
	{12, 4, 3},
	{16, 8, 2},
	{24, 8, 3},
	{32, 8, 4},
}

// LayoutFor returns the paper's layout for a processor count.
func LayoutFor(procs int) (Layout, error) {
	for _, l := range PaperLayouts {
		if l.Procs == procs {
			return l, nil
		}
	}
	return Layout{}, fmt.Errorf("variants: no paper layout for %d processors", procs)
}

// Feasible reports whether a variant can run the layout: csm_pp dedicates
// one processor per node, so it cannot run 4 compute processors per node
// ("32: trivial, but not applicable to csm_pp", §4.3).
func Feasible(name string, l Layout) bool {
	const cpusPerNode = 4
	if name == "csm_pp" && l.PerNode >= cpusPerNode {
		return false
	}
	return true
}
