package variants

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/interconnect"
)

func TestAllVariantsBuild(t *testing.T) {
	for _, name := range Names {
		cfg, err := Config(name, 2, 2, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", name, err)
		}
		if cfg.Variant != name {
			t.Errorf("%s: variant label %q", name, cfg.Variant)
		}
	}
}

func TestSequentialForcesSingleProc(t *testing.T) {
	cfg, err := Config(Sequential, 8, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 1 || cfg.ProcsPerNode != 1 {
		t.Errorf("sequential shape %dx%d", cfg.Nodes, cfg.ProcsPerNode)
	}
}

func TestUnknownVariant(t *testing.T) {
	if _, err := Config("csm_magic", 1, 1, Options{}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestIsCashmere(t *testing.T) {
	for _, n := range []string{"csm_pp", "csm_int", "csm_poll"} {
		if !IsCashmere(n) {
			t.Errorf("%s not recognized as Cashmere", n)
		}
	}
	for _, n := range []string{"tmk_udp_int", "tmk_mc_int", "tmk_mc_poll", Sequential} {
		if IsCashmere(n) {
			t.Errorf("%s recognized as Cashmere", n)
		}
	}
}

// TestDomainSafeMatchesProtocols cross-checks the static DomainSafe table
// against what each variant's protocol instance actually declares, so the
// table cannot drift when a protocol's safety analysis changes.
func TestDomainSafeMatchesProtocols(t *testing.T) {
	for _, name := range append(append([]string{}, Names...), Sequential) {
		cfg, err := Config(name, 2, 2, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		proto := cfg.NewProtocol(nil) // factories only capture rt; safe pre-Setup
		declared := false
		if ds, ok := proto.(core.DomainSafety); ok {
			declared = ds.DomainSafe()
		}
		if got := DomainSafe(name); got != declared {
			t.Errorf("%s: static DomainSafe()=%v, protocol declares %v", name, got, declared)
		}
	}
}

func TestPaperLayouts(t *testing.T) {
	for _, l := range PaperLayouts {
		if l.Nodes*l.PerNode != l.Procs {
			t.Errorf("layout %+v inconsistent", l)
		}
		if l.Nodes > 8 || l.PerNode > 4 {
			t.Errorf("layout %+v exceeds the 8x4 cluster", l)
		}
		got, err := LayoutFor(l.Procs)
		if err != nil || got != l {
			t.Errorf("LayoutFor(%d) = %+v, %v", l.Procs, got, err)
		}
	}
	if _, err := LayoutFor(7); err == nil {
		t.Error("LayoutFor(7) accepted")
	}
}

func TestFeasibility(t *testing.T) {
	l32, _ := LayoutFor(32)
	if Feasible("csm_pp", l32) {
		t.Error("csm_pp feasible at 32 (4 compute CPUs/node leaves no room for the protocol processor)")
	}
	l24, _ := LayoutFor(24)
	if !Feasible("csm_pp", l24) {
		t.Error("csm_pp infeasible at 24")
	}
	if !Feasible("tmk_mc_poll", l32) {
		t.Error("tmk infeasible at 32")
	}
}

func TestOptionsOverride(t *testing.T) {
	mc := interconnect.MCSecondGeneration()
	c := cache.Alpha21264
	cfg, err := Config("csm_poll", 2, 2, Options{MC: &mc, Cache: &c})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MC.Latency != mc.Latency {
		t.Error("MC override ignored")
	}
	if cfg.Cache.SizeBytes != c.SizeBytes {
		t.Error("cache override ignored")
	}
	cfg, err = Config("csm_poll", 2, 2, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cache != nil {
		t.Error("NoCache ignored")
	}
}
