package cashmere

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Request kinds.
const (
	// kindPageFetch asks a processor on the home node to write a page's
	// current home copy back through the Memory Channel (§2.1: "we ask a
	// processor at the home node to write the data to us").
	kindPageFetch = iota
)

// mcRegionBase synthesizes the cache-visible address of the Memory Channel
// copy region: far from the local copies (different cache tag), with the
// page-offset bit 13 flipped so local and doubled writes map to different
// first-level cache lines (§3.3.1).
const (
	mcRegionBase = uint64(1) << 40
	doubleFlip   = uint64(0x2000)
)

// DoubledAddr returns the address write doubling touches for a store to a.
func DoubledAddr(a uint64) uint64 { return (a | mcRegionBase) ^ doubleFlip }

// Config holds Cashmere-specific knobs.
type Config struct {
	// PagesPerSuperpage groups pages into superpages that share a home node
	// (Digital Unix limits MC region counts, §3.3). 1 disables grouping.
	PagesPerSuperpage int
	// DisableExclusive turns off the exclusive-mode optimization (ablation:
	// the paper replaced the simulated protocol's "weak state" with
	// exclusive mode and explicit write notices).
	DisableExclusive bool
	// RoundRobinHomes assigns homes round-robin by page number instead of
	// first-touch (ablation for the §2.1 home-assignment policy).
	RoundRobinHomes bool
	// DummyDoubling redirects every doubled write to a single dummy address
	// (the paper's §4.3 diagnostic that isolates the cache-pressure cost of
	// doubling). Only valid on one processor: it breaks data propagation.
	DummyDoubling bool
}

// New returns a core.Config protocol factory for Cashmere.
func New(cfg Config) func(rt *core.Runtime) core.Protocol {
	if cfg.PagesPerSuperpage <= 0 {
		cfg.PagesPerSuperpage = 1
	}
	return func(rt *core.Runtime) core.Protocol {
		return &Protocol{rt: rt, cfg: cfg}
	}
}

// Protocol is the Cashmere coherence protocol state.
type Protocol struct {
	rt  *core.Runtime
	cfg Config

	dir       []entry
	superHome []int32 // home node per superpage, -1 until first touch

	locks    *lockSpace
	appLocks int
	nprocs   int
	barrier  *treeBarrier

	wn    []*noticeList // write notice list per rank
	nle   []*noticeList // no-longer-exclusive list per rank
	dirty [][]int32     // local dirty list per rank

	// counters (protocol-wide; per-processor event counts live in core.Stats)
	dirUpdates      int64
	wnAppends       int64
	homeAssignments int64
	fetchRequests   int64
	remoteReads     int64
	exclEntries     int64
}

// Name implements core.Protocol.
func (c *Protocol) Name() string { return "cashmere" }

// WantsWriteHook implements core.Protocol: every shared store is doubled.
func (c *Protocol) WantsWriteHook() bool { return true }

// Setup implements core.Protocol.
func (c *Protocol) Setup(rt *core.Runtime) {
	if !rt.Net().Caps().RemoteWrites {
		// Write doubling is the protocol's foundation (§3.3.1): without
		// one-sided remote writes every OnSharedWrite would mismodel traffic.
		panic("cashmere: backend does not provide remote writes (Caps().RemoteWrites)")
	}
	numPages := rt.NumPages()
	c.nprocs = len(rt.ComputeProcs())
	if c.nprocs > 64 {
		panic("cashmere: sharing-set bitmask supports at most 64 processors")
	}
	if c.cfg.DummyDoubling && c.nprocs > 1 {
		panic("cashmere: DummyDoubling is a single-processor diagnostic (§4.3)")
	}
	c.dir = make([]entry, numPages)
	for i := range c.dir {
		c.dir[i].excl = -1
	}
	numSuper := (numPages + c.cfg.PagesPerSuperpage - 1) / c.cfg.PagesPerSuperpage
	if numSuper == 0 {
		numSuper = 1
	}
	c.superHome = make([]int32, numSuper)
	for i := range c.superHome {
		c.superHome[i] = -1
	}
	prog := rt.Program()
	c.appLocks = prog.Locks
	// Cluster-lock id layout: app locks, write-notice list locks, NLE list
	// locks, directory-entry (superpage home) locks.
	total := c.appLocks + 2*c.nprocs + numSuper
	c.locks = newLockSpace(rt, "csm-locks", total)
	c.barrier = newTreeBarrier(rt, maxInt(prog.Barriers, 1))
	for r := 0; r < c.nprocs; r++ {
		c.wn = append(c.wn, newNoticeList(c.wnLock(r), numPages))
		c.nle = append(c.nle, newNoticeList(c.nleLock(r), numPages))
	}
	c.dirty = make([][]int32, c.nprocs)
	if c.cfg.RoundRobinHomes {
		nodes := rt.Engine().Config().Nodes
		for s := range c.superHome {
			c.superHome[s] = int32(s % nodes)
		}
	}
}

func (c *Protocol) wnLock(rank int) int  { return c.appLocks + rank }
func (c *Protocol) nleLock(rank int) int { return c.appLocks + c.nprocs + rank }
func (c *Protocol) superLock(sp int) int { return c.appLocks + 2*c.nprocs + sp }

func (c *Protocol) super(page int) int {
	return vm.SuperpageOf(page, c.cfg.PagesPerSuperpage)
}

// dirUpdate charges one unlocked directory modification: an intra-node ll/sc
// on the node's word plus the broadcast of the new word.
func (c *Protocol) dirUpdate(p *core.Proc) {
	p.ChargeProtocol(p.Costs().LLSC + p.Costs().DirectoryMod)
	c.rt.Net().AccountTraffic(interconnect.TrafficMeta, 8)
	c.dirUpdates++
}

// ensureHome returns the page's home node, running first-touch assignment
// if it has none (§2.1: set once, under the directory entry lock).
func (c *Protocol) ensureHome(p *core.Proc, page int) int {
	sp := c.super(page)
	if h := c.superHome[sp]; h >= 0 {
		return int(h)
	}
	lid := c.superLock(sp)
	c.locks.acquire(p, lid)
	if c.superHome[sp] < 0 {
		c.superHome[sp] = int32(p.Node())
		c.homeAssignments++
		c.dirUpdate(p)
	}
	c.locks.release(p, lid)
	return int(c.superHome[sp])
}

// homeFrame returns the page's unique main-memory copy, creating it from the
// initial image on first use.
func (c *Protocol) homeFrame(page int) []byte {
	e := &c.dir[page]
	if e.homeFrame == nil {
		e.homeFrame = make([]byte, vm.PageSize)
		if img := c.rt.InitialPage(page); img != nil {
			copy(e.homeFrame, img)
		}
	}
	return e.homeFrame
}

// OnReadFault implements core.Protocol (§2.1 read page fault).
func (c *Protocol) OnReadFault(p *core.Proc, page int) {
	p.ChargeProtocol(p.Costs().PageFault)
	c.readMiss(p, page)
	p.Space().SetProt(page, vm.ProtRead)
	p.ChargeProtocol(p.Costs().ProtChange)
}

// readMiss performs the shared part of read and invalid-write faults: join
// the sharing set, break exclusive mode, and copy the page from the home.
func (c *Protocol) readMiss(p *core.Proc, page int) {
	rank := p.Rank()
	home := c.ensureHome(p, page)
	e := &c.dir[page]
	// Add ourselves to the sharing set (ll/sc on our node's word).
	e.sharers |= 1 << uint(rank)
	c.dirUpdate(p)
	// If another processor held the page exclusively, it must be told (NLE).
	if e.excl >= 0 && int(e.excl) != rank {
		former := int(e.excl)
		e.excl = -1
		c.dirUpdate(p)
		c.locks.acquire(p, c.nleLock(former))
		if c.nle[former].add(page) {
			c.rt.Net().AccountTraffic(interconnect.TrafficMeta, 8)
		}
		c.locks.release(p, c.nleLock(former))
	}
	c.fetchPage(p, page, home)
}

// fetchPage brings the home copy into p's local frame. On the home node this
// is a local memory copy. Remotely, the path depends on the interconnect: on
// a network with one-sided remote reads the faulting processor pulls the
// home copy directly, with no processor at the home node involved; on the
// Memory Channel (remote-writes-only) a processor at the home node is asked
// to write the page through the network (variant-dependent service).
func (c *Protocol) fetchPage(p *core.Proc, page, home int) {
	frame := p.Space().EnsureFrame(page)
	hf := c.homeFrame(page)
	if p.Node() == home {
		p.ChargeProtocol(p.Costs().Copy(vm.PageSize))
		copy(frame, hf)
		p.Stats().PageCopies++
		return
	}
	if c.rt.Net().Caps().RemoteReads {
		c.remoteReads++
		p.Sim().Yield() // scheduling point before a globally visible action
		arrival := c.rt.Net().RemoteRead(p.Sim(), home, vm.PageSize, interconnect.TrafficPage)
		p.Sim().AdvanceTo(arrival)
		p.ChargeProtocol(p.Costs().Copy(vm.PageSize))
		copy(frame, hf)
		p.Stats().PageTransfers++
		p.Stats().PageCopies++
		return
	}
	target := c.fetchTarget(page, home)
	c.fetchRequests++
	reply := p.EP().Call(target.EP(), kindPageFetch, page, 64)
	data := reply.([]byte)
	p.ChargeProtocol(p.Costs().Copy(vm.PageSize))
	copy(frame, data)
	p.Stats().PageTransfers++
	p.Stats().PageCopies++
}

// fetchTarget picks the processor at the home node that services the fetch:
// the dedicated protocol processor if the variant has one, else a compute
// processor chosen deterministically.
func (c *Protocol) fetchTarget(page, home int) *core.Proc {
	if s := c.rt.ServerProc(home); s != nil {
		return s
	}
	procs := c.rt.ComputeProcsOnNode(home)
	if len(procs) == 0 {
		panic(fmt.Sprintf("cashmere: home node %d has no processors", home))
	}
	return procs[page%len(procs)]
}

// OnWriteFault implements core.Protocol (§2.1 write page fault).
func (c *Protocol) OnWriteFault(p *core.Proc, page int) {
	p.ChargeProtocol(p.Costs().PageFault)
	if !p.Space().Prot(page).CanRead() {
		// A write fault on an invalid page is treated as a read page fault
		// first (§2.1).
		c.readMiss(p, page)
	}
	rank := p.Rank()
	c.dirty[rank] = append(c.dirty[rank], int32(page))
	p.Space().SetProt(page, vm.ProtReadWrite)
	p.ChargeProtocol(p.Costs().ProtChange)
}

// OnSharedWrite implements core.Protocol: write doubling (§3.3.1). The
// instruction overhead, the doubled address's cache pressure, the
// write-through pipe occupancy, and the functional update of the home copy
// all happen here.
//
// dsmvet:caps-checked RemoteWrites — Setup panics unless the backend
// declares Caps().RemoteWrites, so every WriteThrough below runs gated.
func (c *Protocol) OnSharedWrite(p *core.Proc, addr core.Addr, size int) {
	p.Charge(core.CatDoubling, p.Costs().WriteDouble)
	if c.cfg.DummyDoubling {
		// All doubles land on one address: after the first touch it always
		// hits the cache and combines in the write buffer — no pressure, no
		// Memory Channel traffic. The home copy is still updated
		// functionally so single-processor results stay correct.
		p.CacheTouch(DoubledAddr(0))
		page := vm.PageOf(addr)
		off := vm.Offset(addr)
		copy(c.homeFrame(page)[off:off+size], p.Space().Frame(page)[off:off+size])
		return
	}
	if !p.CacheTouch(DoubledAddr(addr)) {
		p.Charge(core.CatDoubling, p.Costs().CacheMiss)
	}
	page := vm.PageOf(addr)
	home := int(c.superHome[c.super(page)])
	off := vm.Offset(addr)
	copy(c.homeFrame(page)[off:off+size], p.Space().Frame(page)[off:off+size])
	c.rt.Net().WriteThrough(p.Sim(), home, int64(size))
}

// Lock implements core.Protocol: cluster lock acquire, then acquire-side
// coherence (process incoming write notices).
func (c *Protocol) Lock(p *core.Proc, id int) {
	if id < 0 || id >= c.appLocks {
		panic(fmt.Sprintf("cashmere: lock id %d out of range [0,%d)", id, c.appLocks))
	}
	c.locks.acquire(p, id)
	c.processAcquire(p)
}

// Unlock implements core.Protocol: release-side coherence, then lock release.
func (c *Protocol) Unlock(p *core.Proc, id int) {
	if id < 0 || id >= c.appLocks {
		panic(fmt.Sprintf("cashmere: lock id %d out of range [0,%d)", id, c.appLocks))
	}
	c.processRelease(p)
	c.locks.release(p, id)
}

// Barrier implements core.Protocol: arrival is a release, departure is an
// acquire.
func (c *Protocol) Barrier(p *core.Proc, id int) {
	c.processRelease(p)
	c.barrier.wait(p, id)
	c.processAcquire(p)
}

// processAcquire traverses the write notice list, removing this processor
// from the sharing set of each noticed page and invalidating the local
// mapping (§2.1).
func (c *Protocol) processAcquire(p *core.Proc) {
	rank := p.Rank()
	c.locks.acquire(p, c.wnLock(rank))
	pages := c.wn[rank].drain()
	c.locks.release(p, c.wnLock(rank))
	for _, pg := range pages {
		e := &c.dir[pg]
		e.sharers &^= 1 << uint(rank)
		c.dirUpdate(p)
		if p.Space().Prot(int(pg)) != vm.ProtNone {
			p.Space().SetProt(int(pg), vm.ProtNone)
			p.ChargeProtocol(p.Costs().ProtChange)
		}
	}
}

// processRelease fences the write-through pipe, then informs sharers of all
// dirty pages via write notices, moving unshared pages to exclusive mode,
// and finally processes the NLE list (§2.1).
func (c *Protocol) processRelease(p *core.Proc) {
	// A release cannot complete before all its writes have been applied at
	// the home nodes.
	p.Sim().AdvanceTo(c.rt.Net().FenceTime(p.Sim()))

	rank := p.Rank()
	for _, pg := range c.dirty[rank] {
		c.releasePage(p, int(pg), true)
	}
	c.dirty[rank] = c.dirty[rank][:0]

	c.locks.acquire(p, c.nleLock(rank))
	nlePages := c.nle[rank].drain()
	c.locks.release(p, c.nleLock(rank))
	for _, pg := range nlePages {
		c.dir[pg].neverExcl = true
		c.dirUpdate(p)
		c.releasePage(p, int(pg), false)
	}
}

// releasePage handles one page at release time: send write notices to other
// sharers, or enter exclusive mode if there are none (and it is allowed).
func (c *Protocol) releasePage(p *core.Proc, page int, mayExclusive bool) {
	rank := p.Rank()
	e := &c.dir[page]
	// Scan the directory entry (eight words, local reads).
	p.ChargeProtocol(8 * p.Costs().MemAccess)
	others := e.sharers &^ (1 << uint(rank))
	if others == 0 && mayExclusive && !e.neverExcl && !c.cfg.DisableExclusive {
		e.excl = int32(rank)
		c.exclEntries++
		c.dirUpdate(p)
		return // keep write permission: no more faults or notices needed
	}
	for q := 0; q < c.nprocs; q++ {
		if others&(1<<uint(q)) == 0 {
			continue
		}
		c.locks.acquire(p, c.wnLock(q))
		if c.wn[q].add(page) {
			c.wnAppends++
			p.Stats().WriteNotices++
			c.rt.Net().AccountTraffic(interconnect.TrafficMeta, 8)
		}
		c.locks.release(p, c.wnLock(q))
	}
	// Downgrade to read-only to catch subsequent writes.
	if p.Space().Prot(page).CanWrite() {
		p.Space().SetProt(page, vm.ProtRead)
		p.ChargeProtocol(p.Costs().ProtChange)
	}
}

// Service implements core.Protocol: handle a page-fetch request directed at
// this processor (which is on the page's home node).
func (c *Protocol) Service(p *core.Proc, m sim.Msg, req msg.Request) {
	switch m.Kind {
	case kindPageFetch:
		page := req.Data.(int)
		// The serving processor reads the home copy and writes it through
		// the Memory Channel: data crosses the local bus twice (§1).
		p.ChargeProtocol(p.Costs().HandlerWork + p.Costs().Copy(vm.PageSize))
		snapshot := append([]byte(nil), c.homeFrame(page)...)
		p.EP().ReplyClass(req.From, req, snapshot, vm.PageSize, interconnect.TrafficPage)
	default:
		panic(fmt.Sprintf("cashmere: unknown request kind %d", m.Kind))
	}
}

// Finalize implements core.Protocol.
func (c *Protocol) Finalize(p *core.Proc) {}

// DomainSafe implements core.DomainSafety. Cashmere's host-level state is
// deliberately cluster-global, mirroring the paper's use of Memory Channel
// reflected writes: the accessing processor writes the remote home node's
// frame directly (OnSharedWrite doubling, releasePage flushes), mutates the
// shared page directory and global lock/barrier words in place, and drives
// the interconnect occupancy model (link/aggregate horizons), which is
// itself a single cluster-wide structure. None of that is confined to the accessing node's
// scheduling domain, so the node-parallel engine must not run this protocol;
// core.Run falls back to the sequential engine.
//
// The exact escape inventory is machine-checked: the domainescape analyzer
// classifies every field access reachable from the entry points, and the
// golden report internal/analysis/testdata/reports/cashmere.golden.json
// pins the field → call-path pairs (dir entries, superHome, lock/barrier
// words, write-notice lists, shared counters, the interconnect handle) that
// force this declaration. Flipping it to true without emptying that list is
// itself a dsmvet diagnostic.
func (c *Protocol) DomainSafe() bool { return false }

// MaxCostJitter implements core.SchedulePerturbable: any cost inflation up
// to 100% per operation is legal. Cashmere takes no timing-dependent
// decisions — every wait is condition-based (directory spin-waits, lock and
// barrier words probed via SpinWait until they flip; message replies block
// until they arrive) and the only time bound anywhere is SpinWait's 120 s
// livelock backstop, six orders of magnitude above any jittered operation
// cost. Stretching an operation therefore moves *when* events occur, never
// *which* events occur, so a jittered run is one of the protocol's legal
// executions.
func (c *Protocol) MaxCostJitter() float64 { return 1.0 }

// Counters implements core.Protocol. The remote-read counter appears only
// when the interconnect actually served one-sided page reads, so Memory
// Channel results serialize exactly as before.
func (c *Protocol) Counters() map[string]int64 {
	m := map[string]int64{
		"dir_updates":       c.dirUpdates,
		"wn_appends":        c.wnAppends,
		"home_assignments":  c.homeAssignments,
		"page_fetch_reqs":   c.fetchRequests,
		"exclusive_entries": c.exclEntries,
	}
	if c.remoteReads > 0 {
		m["remote_page_reads"] = c.remoteReads
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
