package cashmere

import (
	"repro/internal/core"
	"repro/internal/interconnect"
)

// treeBarrier implements the paper's §3.3.2 application barriers: upon
// arrival each processor waits for its children in a static tree, notifies
// its parent, and finally waits for the root's notification, all through
// explicit words in Memory Channel space. Epoch counters give sense reversal
// so barrier ids can be reused.
const barrierArity = 4

type treeBarrier struct {
	// words layout per barrier id: [nprocs arrival words][1 release word].
	words  *interconnect.WordArray
	stride int
	nprocs int
	epoch  [][]int64 // [barrier][rank]
}

func newTreeBarrier(rt *core.Runtime, numBarriers int) *treeBarrier {
	n := len(rt.ComputeProcs())
	b := &treeBarrier{
		stride: n + 1,
		nprocs: n,
		epoch:  make([][]int64, numBarriers),
	}
	b.words = rt.Net().NewWordArray("barrier", numBarriers*b.stride, interconnect.TrafficSync)
	for i := range b.epoch {
		b.epoch[i] = make([]int64, n)
	}
	return b
}

// wait blocks p until all compute processors have arrived at barrier id.
func (b *treeBarrier) wait(p *core.Proc, id int) {
	rank := p.Rank()
	if b.nprocs == 1 {
		return
	}
	epoch := b.epoch[id][rank] + 1
	b.epoch[id][rank] = epoch
	base := id * b.stride
	// Wait for all children's arrival words to reach this epoch.
	for c := barrierArity*rank + 1; c <= barrierArity*rank+barrierArity && c < b.nprocs; c++ {
		word := base + c
		p.SpinWait("barrier children", func() bool {
			return b.words.Read(p.Sim(), word) >= epoch
		})
	}
	if rank == 0 {
		// Root: release everyone by broadcasting the epoch.
		b.words.WriteLoopback(p.Sim(), base+b.nprocs, epoch)
		return
	}
	// Notify parent, then wait for the root's release broadcast.
	b.words.WriteLoopback(p.Sim(), base+rank, epoch)
	release := base + b.nprocs
	p.SpinWait("barrier release", func() bool {
		return b.words.Read(p.Sim(), release) >= epoch
	})
}
