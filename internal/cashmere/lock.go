package cashmere

import (
	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/sim"
)

// lockSpace implements the paper's §3.3.2 cluster-wide locks: each lock is
// an array of per-node words in Memory Channel space plus a test-and-set
// flag on each node. To acquire, a processor first wins the node flag with
// ll/sc, then sets its node's array entry with loop-back enabled, waits for
// the write to appear via loop-back, and reads the whole array: if its entry
// is the only one set it holds the lock; otherwise it clears the entry,
// backs off, and retries. Application and protocol locks share this
// implementation, as in the paper.
type lockSpace struct {
	words *interconnect.WordArray // [lock*nodes + node]
	flags [][]bool                // [lock][node]: node-local test-and-set flag
	nodes int
}

func newLockSpace(rt *core.Runtime, name string, numLocks int) *lockSpace {
	nodes := rt.Engine().Config().Nodes
	ls := &lockSpace{
		words: rt.Net().NewWordArray(name, numLocks*nodes, interconnect.TrafficSync),
		flags: make([][]bool, numLocks),
		nodes: nodes,
	}
	for i := range ls.flags {
		ls.flags[i] = make([]bool, nodes)
	}
	return ls
}

// acquire takes cluster lock id on behalf of p.
func (ls *lockSpace) acquire(p *core.Proc, id int) {
	node := p.Node()
	// Step 1: win the per-node flag with ll/sc (intra-node).
	p.ChargeProtocol(p.Costs().LLSC)
	p.SpinWait("node lock flag", func() bool {
		if ls.flags[id][node] {
			return false
		}
		ls.flags[id][node] = true
		return true
	})
	base := id * ls.nodes
	for attempt := 1; ; attempt++ {
		// Step 2: set our node's entry and wait for it via loop-back.
		ls.words.WriteLoopback(p.Sim(), base+node, 1)
		p.SpinWait("lock loopback", func() bool {
			return ls.words.Read(p.Sim(), base+node) == 1
		})
		// Step 3: read the whole array.
		sole := true
		lowest := node
		for n := 0; n < ls.nodes; n++ {
			p.Charge(core.CatProtocol, p.Costs().MemAccess)
			if n != node && ls.words.Read(p.Sim(), base+n) != 0 {
				sole = false
				if n < lowest {
					lowest = n
				}
			}
		}
		if sole {
			return
		}
		if lowest == node {
			// Deterministic tie resolution: the lowest contending node
			// keeps its entry; higher nodes clear and back off, and the
			// current holder's entry clears at its release. Spin until
			// sole — but yield if a still-lower node arrives meanwhile.
			won := false
			p.SpinWait("lock tournament", func() bool {
				anySet := false
				for n := 0; n < ls.nodes; n++ {
					if n == node || ls.words.Read(p.Sim(), base+n) == 0 {
						continue
					}
					if n < node {
						return true // lower contender appeared: drop out
					}
					anySet = true
				}
				if !anySet {
					won = true
					return true
				}
				return false
			})
			if won {
				return
			}
		}
		// A lower node is contending (or holding): clear our entry, back
		// off briefly, and retry.
		ls.words.WriteLoopback(p.Sim(), base+node, 0)
		backoff := sim.Time((attempt*7+node*13)%16+1) * 3 * sim.Microsecond
		p.Sim().Sleep(backoff)
		p.EP().PollVisible()
	}
}

// release drops cluster lock id.
func (ls *lockSpace) release(p *core.Proc, id int) {
	node := p.Node()
	base := id * ls.nodes
	ls.words.WriteLoopback(p.Sim(), base+node, 0)
	ls.flags[id][node] = false
}
