// Package cashmere implements the Cashmere coherence protocol of the paper's
// §2.1 and §3.3: page-granularity, directory-based software DSM that exploits
// Memory Channel remote writes for fine-grain communication.
//
// Key mechanisms, all implemented here:
//
//   - A distributed page directory, replicated per node and updated by MC
//     broadcast, tracking the sharing set, home node (assigned by first
//     touch after initialization), and exclusive mode.
//   - Write-through to a unique home-node copy of each page via write
//     doubling: every shared store also updates the home copy, consuming MC
//     write-buffer and link bandwidth; releases fence on the drain.
//   - Write notice and no-longer-exclusive (NLE) lists, globally accessible
//     and protected by cluster-wide MC locks.
//   - Page copies on demand: the first-generation MC has no remote reads, so
//     a fault sends a request to the home node, whose processor (a dedicated
//     protocol processor, an interrupted processor, or a polling processor,
//     depending on the variant) writes the page back through the MC.
package cashmere

import "fmt"

// Directory word layout (paper §2.1): each directory entry is eight 4-byte
// words, one per SMP node. Each word holds presence bits for the node's four
// processors, the 5-bit home node id, a bit saying whether the home was set
// by first touch, and per-processor exclusive read/write bits.
const (
	presenceShift = 0  // bits 0-3: presence, one per CPU in the node
	homeShift     = 4  // bits 4-8: home node id
	homeValidBit  = 9  // bit 9: home assigned by first-touch
	exclShift     = 10 // bits 10-13: exclusive r/w, one per CPU
)

// PackWord encodes one node's directory word.
func PackWord(presence uint8, home int, homeValid bool, excl uint8) uint32 {
	if presence > 0xF || excl > 0xF {
		panic(fmt.Sprintf("cashmere: presence %x / excl %x exceed 4 bits", presence, excl))
	}
	if home < 0 || home > 31 {
		panic(fmt.Sprintf("cashmere: home %d exceeds 5 bits", home))
	}
	w := uint32(presence) << presenceShift
	w |= uint32(home) << homeShift
	if homeValid {
		w |= 1 << homeValidBit
	}
	w |= uint32(excl) << exclShift
	return w
}

// UnpackWord decodes one node's directory word.
func UnpackWord(w uint32) (presence uint8, home int, homeValid bool, excl uint8) {
	presence = uint8(w>>presenceShift) & 0xF
	home = int(w>>homeShift) & 0x1F
	homeValid = w&(1<<homeValidBit) != 0
	excl = uint8(w>>exclShift) & 0xF
	return
}

// Words renders a directory entry in the paper's wire format: one packed
// word per node, with presence and exclusive bits expanded from the rank
// bitmask. The home node and first-touch bit are replicated in every word,
// as the paper notes ("The home node indications in separate words are
// redundant").
func (e *entry) Words(nodes, procsPerNode, home int, homeValid bool) []uint32 {
	out := make([]uint32, nodes)
	h := home
	if h < 0 {
		h = 0
	}
	for n := 0; n < nodes; n++ {
		var presence, excl uint8
		for cpu := 0; cpu < procsPerNode && cpu < 4; cpu++ {
			rank := n*procsPerNode + cpu
			if e.sharers&(1<<uint(rank)) != 0 {
				presence |= 1 << uint(cpu)
			}
			if e.excl == int32(rank) {
				excl |= 1 << uint(cpu)
			}
		}
		out[n] = PackWord(presence, h, homeValid, excl)
	}
	return out
}

// entry is the simulator's functional form of one page's directory entry.
// The packed-word form above is the wire format the paper describes; the
// simulator keeps the decoded form and charges the paper's directory
// modification costs (5 µs unlocked, 16 µs when the entry lock is needed)
// plus broadcast traffic on every update.
type entry struct {
	// sharers is a bitmask over compute ranks.
	sharers uint64
	// excl is the rank holding exclusive read/write mode, or -1.
	excl int32
	// neverExcl marks pages that must never re-enter exclusive mode (set
	// when processing NLE entries, §2.1).
	neverExcl bool
	// homeFrame is the unique main-memory copy at the home node, the target
	// of write-through. Nil until the home is assigned.
	homeFrame []byte
}

// noticeList is a globally accessible list of page descriptors with a bitmap
// to suppress duplicates, protected by a cluster-wide lock (the write notice
// and NLE lists of §2.1).
type noticeList struct {
	lockID int
	pages  []int32
	bitmap []uint64
}

func newNoticeList(lockID, numPages int) *noticeList {
	return &noticeList{lockID: lockID, bitmap: make([]uint64, (numPages+63)/64)}
}

// add appends page if not already present; reports whether it was added.
// Callers must hold the list's cluster lock.
func (nl *noticeList) add(page int) bool {
	w, b := page/64, uint(page%64)
	if nl.bitmap[w]&(1<<b) != 0 {
		return false
	}
	nl.bitmap[w] |= 1 << b
	nl.pages = append(nl.pages, int32(page))
	return true
}

// has reports whether page is present.
func (nl *noticeList) has(page int) bool {
	return nl.bitmap[page/64]&(1<<uint(page%64)) != 0
}

// drain returns the pages and clears the list. Callers must hold the lock.
func (nl *noticeList) drain() []int32 {
	out := nl.pages
	nl.pages = nil
	for _, pg := range out {
		nl.bitmap[pg/64] &^= 1 << uint(pg%64)
	}
	return out
}
