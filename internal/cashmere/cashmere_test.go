package cashmere

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
)

// testConfig builds a Cashmere run configuration in the given variant.
func testConfig(nodes, ppn int, variant string, ccfg Config) core.Config {
	cfg := core.Config{
		Nodes:        nodes,
		ProcsPerNode: ppn,
		MC:           interconnect.MCFirstGeneration(),
		Costs:        core.DefaultCosts(),
		NewProtocol:  New(ccfg),
		Variant:      variant,
	}
	switch variant {
	case "csm_pp":
		cfg.DedicatedServer = true
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
	case "csm_int":
		cfg.Msg = msg.DefaultParams(msg.ModeInterrupt)
	default: // csm_poll
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
		cfg.PollingInstrumented = true
	}
	return cfg
}

func TestPackWordRoundTrip(t *testing.T) {
	f := func(presence, excl uint8, home uint8, valid bool) bool {
		presence &= 0xF
		excl &= 0xF
		h := int(home & 0x1F)
		w := PackWord(presence, h, valid, excl)
		gp, gh, gv, ge := UnpackWord(w)
		return gp == presence && gh == h && gv == valid && ge == excl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackWordRejectsOverflow(t *testing.T) {
	for _, fn := range []func(){
		func() { PackWord(0x10, 0, false, 0) },
		func() { PackWord(0, 32, false, 0) },
		func() { PackWord(0, -1, false, 0) },
		func() { PackWord(0, 0, false, 0x10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("overflow accepted")
				}
			}()
			fn()
		}()
	}
}

func TestNoticeList(t *testing.T) {
	nl := newNoticeList(0, 200)
	if !nl.add(5) {
		t.Error("first add rejected")
	}
	if nl.add(5) {
		t.Error("duplicate accepted")
	}
	if !nl.add(130) {
		t.Error("second page rejected")
	}
	if !nl.has(5) || !nl.has(130) || nl.has(6) {
		t.Error("has() wrong")
	}
	got := nl.drain()
	if len(got) != 2 || got[0] != 5 || got[1] != 130 {
		t.Errorf("drain = %v", got)
	}
	if nl.has(5) {
		t.Error("drain kept bitmap bit")
	}
	if !nl.add(5) {
		t.Error("re-add after drain rejected")
	}
}

func TestDoubledAddr(t *testing.T) {
	a := uint64(0x12345)
	d := DoubledAddr(a)
	if d == a {
		t.Error("doubled address equals original")
	}
	// Must flip the 0x2000 bit (different L1 index) and set the MC region.
	if (d^a)&doubleFlip == 0 {
		t.Error("index bit not flipped")
	}
	if d&mcRegionBase == 0 {
		t.Error("MC region bit not set")
	}
}

// producerConsumer: rank 0 writes a page-aligned array, barrier, others read.
func producerConsumer(t *testing.T, cfg core.Config, n int) *core.Result {
	t.Helper()
	l := core.NewLayout()
	arr := l.F64Pages(n)
	prog := &core.Program{
		Name:        "prodcons",
		SharedBytes: l.Size(),
		Barriers:    2,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					arr.Set(p, i, float64(i)+0.5)
				}
			}
			p.Barrier(0)
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += arr.At(p, i)
			}
			want := float64(n*(n-1))/2 + 0.5*float64(n)
			if sum != want {
				t.Errorf("rank %d sum = %v, want %v", p.Rank(), sum, want)
			}
			p.Barrier(1)
			p.Finish()
		},
	}
	res, err := core.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProducerConsumerAcrossNodes(t *testing.T) {
	res := producerConsumer(t, testConfig(2, 1, "csm_poll", Config{}), 3000)
	if res.Total.PageTransfers == 0 {
		t.Error("no page transfers for cross-node sharing")
	}
	if res.Total.ReadFaults == 0 || res.Total.WriteFaults == 0 {
		t.Errorf("faults: %d read, %d write", res.Total.ReadFaults, res.Total.WriteFaults)
	}
	if res.Traffic["page"] == 0 {
		t.Error("no page traffic recorded")
	}
	if res.Traffic["doubling"] == 0 {
		t.Error("no write-through traffic recorded")
	}
}

func TestProducerConsumerSameNode(t *testing.T) {
	res := producerConsumer(t, testConfig(1, 4, "csm_poll", Config{}), 2000)
	// All sharing is intra-node: pages are copied locally, never transferred.
	if res.Total.PageTransfers != 0 {
		t.Errorf("same-node run did %d page transfers", res.Total.PageTransfers)
	}
	if res.Total.PageCopies == 0 {
		t.Error("no local page copies")
	}
}

func TestVariantsProduceSameData(t *testing.T) {
	for _, v := range []string{"csm_pp", "csm_int", "csm_poll"} {
		producerConsumer(t, testConfig(2, 2, v, Config{}), 1500)
	}
}

func TestVariantTimingOrder(t *testing.T) {
	// For a fetch-heavy workload, interrupts must be slowest; the dedicated
	// protocol processor (emulated remote reads) must beat polling compute
	// processors that are busy.
	times := make(map[string]sim.Time)
	for _, v := range []string{"csm_pp", "csm_int", "csm_poll"} {
		res := producerConsumer(t, testConfig(2, 1, v, Config{}), 4000)
		times[v] = res.Time
	}
	if !(times["csm_poll"] < times["csm_int"]) {
		t.Errorf("polling %d not faster than interrupts %d", times["csm_poll"], times["csm_int"])
	}
	if !(times["csm_pp"] < times["csm_int"]) {
		t.Errorf("protocol processor %d not faster than interrupts %d", times["csm_pp"], times["csm_int"])
	}
}

func TestLockMutualExclusion(t *testing.T) {
	l := core.NewLayout()
	counter := l.I64Pages(1)
	const perProc = 30
	prog := &core.Program{
		Name:        "lockcount",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    1,
		Body: func(p *core.Proc) {
			for i := 0; i < perProc; i++ {
				p.Lock(0)
				counter.Set(p, 0, counter.At(p, 0)+1)
				p.Unlock(0)
				p.Compute(10 * sim.Microsecond)
			}
			p.Barrier(0)
			if got := counter.At(p, 0); got != int64(perProc*p.NumProcs()) {
				t.Errorf("rank %d: counter = %d, want %d", p.Rank(), got, perProc*p.NumProcs())
			}
			p.Finish()
		},
	}
	res, err := core.Run(testConfig(2, 2, "csm_poll", Config{}), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.LockAcquires != int64(perProc*4) {
		t.Errorf("lock acquires = %d", res.Total.LockAcquires)
	}
}

func TestBarrierOrdering(t *testing.T) {
	l := core.NewLayout()
	phase := l.I64Pages(8)
	prog := &core.Program{
		Name:        "phases",
		SharedBytes: l.Size(),
		Barriers:    1,
		Body: func(p *core.Proc) {
			for ph := 0; ph < 4; ph++ {
				// Each rank writes its slot; after the barrier everyone must
				// see every slot at the current phase.
				phase.Set(p, p.Rank(), int64(ph))
				p.Barrier(0)
				for r := 0; r < p.NumProcs(); r++ {
					if got := phase.At(p, r); got != int64(ph) {
						t.Errorf("phase %d rank %d sees slot %d = %d", ph, p.Rank(), r, got)
					}
				}
				p.Barrier(0)
			}
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(2, 2, "csm_poll", Config{}), prog); err != nil {
		t.Fatal(err)
	}
}

// TestExclusiveMode: a page written by one processor and never shared should
// enter exclusive mode after the first release and take no further faults.
func TestExclusiveMode(t *testing.T) {
	run := func(disable bool) *core.Result {
		l := core.NewLayout()
		private := l.F64Pages(512) // rank 0's working page
		other := l.F64Pages(512)   // rank 1 keeps busy elsewhere
		prog := &core.Program{
			Name:        "exclusive",
			SharedBytes: l.Size(),
			Barriers:    1,
			Body: func(p *core.Proc) {
				arr := private
				if p.Rank() == 1 {
					arr = other
				}
				for iter := 0; iter < 5; iter++ {
					for i := 0; i < arr.N; i++ {
						arr.Set(p, i, float64(iter))
					}
					p.Barrier(0)
				}
				p.Finish()
			},
		}
		res, err := core.Run(testConfig(2, 1, "csm_poll", Config{DisableExclusive: disable}), prog)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(false)
	without := run(true)
	// With exclusive mode: one write fault per page (first touch). Without:
	// a write fault per page per barrier interval.
	if with.Total.WriteFaults >= without.Total.WriteFaults {
		t.Errorf("exclusive mode did not reduce write faults: %d vs %d",
			with.Total.WriteFaults, without.Total.WriteFaults)
	}
	if with.Counters["exclusive_entries"] == 0 {
		t.Error("no exclusive entries recorded")
	}
	if without.Counters["exclusive_entries"] != 0 {
		t.Error("ablation still entered exclusive mode")
	}
}

// TestNLE: when a second processor starts reading an exclusive page, the
// former exclusive holder must resume sending write notices.
func TestNLE(t *testing.T) {
	l := core.NewLayout()
	arr := l.F64Pages(64)
	flag := l.I64Pages(1)
	prog := &core.Program{
		Name:        "nle",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    4,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				// Interval 1: write the page privately -> exclusive mode.
				arr.Set(p, 0, 1)
				p.Barrier(0)
				p.Barrier(1)
				// Interval 2: write again while rank 1 is now sharing.
				arr.Set(p, 0, 2)
				p.Barrier(2)
			} else {
				p.Barrier(0)
				if got := arr.At(p, 0); got != 1 {
					t.Errorf("reader saw %v, want 1", got)
				}
				p.Barrier(1)
				p.Barrier(2)
				// The barrier-2 acquire must have invalidated the page via a
				// write notice (NLE forced rank 0 out of exclusive mode).
				if got := arr.At(p, 0); got != 2 {
					t.Errorf("reader saw %v after writer's new interval, want 2", got)
				}
			}
			_ = flag
			p.Barrier(3)
			p.Finish()
		},
	}
	res, err := core.Run(testConfig(2, 1, "csm_poll", Config{}), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.WriteNotices == 0 {
		t.Error("no write notices sent")
	}
}

func TestFirstTouchVsRoundRobinHomes(t *testing.T) {
	// With first touch, a processor that writes its own band pays no MC
	// write-through for remote homes... its doubled writes stay local, so
	// doubling traffic still counts but fetches do not occur. Compare home
	// assignment counters instead.
	res := producerConsumer(t, testConfig(2, 1, "csm_poll", Config{}), 2000)
	if res.Counters["home_assignments"] == 0 {
		t.Error("first-touch made no home assignments")
	}
	resRR := producerConsumer(t, testConfig(2, 1, "csm_poll", Config{RoundRobinHomes: true}), 2000)
	if resRR.Counters["home_assignments"] != 0 {
		t.Error("round-robin homes still did first-touch assignments")
	}
}

func TestSuperpageGrouping(t *testing.T) {
	res := producerConsumer(t, testConfig(2, 1, "csm_poll", Config{PagesPerSuperpage: 4}), 3000)
	if res.Total.PageTransfers == 0 {
		t.Error("superpage run lost page transfers")
	}
}

func TestDeterminism(t *testing.T) {
	r1 := producerConsumer(t, testConfig(2, 2, "csm_poll", Config{}), 2000)
	r2 := producerConsumer(t, testConfig(2, 2, "csm_poll", Config{}), 2000)
	if r1.Time != r2.Time {
		t.Errorf("nondeterministic: %d vs %d", r1.Time, r2.Time)
	}
	if r1.Total.PageTransfers != r2.Total.PageTransfers {
		t.Error("nondeterministic page transfers")
	}
}

func TestMigratorySharing(t *testing.T) {
	// Lock-protected migratory object bouncing between 4 procs on 2 nodes.
	l := core.NewLayout()
	obj := l.F64Pages(16)
	prog := &core.Program{
		Name:        "migratory",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    1,
		Body: func(p *core.Proc) {
			for i := 0; i < 10; i++ {
				p.Lock(0)
				for j := 0; j < obj.N; j++ {
					obj.Set(p, j, obj.At(p, j)+1)
				}
				p.Unlock(0)
				p.Compute(20 * sim.Microsecond)
			}
			p.Barrier(0)
			if p.Rank() == 0 {
				if got := obj.At(p, 0); got != 40 {
					t.Errorf("migratory count = %v, want 40", got)
				}
			}
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(2, 2, "csm_poll", Config{}), prog); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryWordsEquivalence: the packed wire format round-trips the
// functional entry for arbitrary sharing states (the paper's §2.1 layout).
func TestDirectoryWordsEquivalence(t *testing.T) {
	f := func(sharers uint32, exclRaw uint8, home uint8, valid bool) bool {
		const nodes, ppn = 8, 4
		e := entry{sharers: uint64(sharers), excl: -1}
		if exclRaw < 32 {
			e.excl = int32(exclRaw)
		}
		h := int(home % nodes)
		words := e.Words(nodes, ppn, h, valid)
		if len(words) != nodes {
			return false
		}
		for n := 0; n < nodes; n++ {
			presence, gotHome, gotValid, excl := UnpackWord(words[n])
			if gotHome != h || gotValid != valid {
				return false
			}
			for cpu := 0; cpu < ppn; cpu++ {
				rank := n*ppn + cpu
				wantP := e.sharers&(1<<uint(rank)) != 0
				if (presence&(1<<uint(cpu)) != 0) != wantP {
					return false
				}
				wantE := e.excl == int32(rank)
				if (excl&(1<<uint(cpu)) != 0) != wantE {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectorySpaceOverhead checks the paper's §2.1 observation: directory
// space for 8-node entries of eight 4-byte words is about 0.4% of an 8 KB
// page per entry (the paper reports ~3% with per-node replication).
func TestDirectorySpaceOverhead(t *testing.T) {
	const entryBytes = 8 * 4
	const pageBytes = 8192
	perPage := float64(entryBytes) / float64(pageBytes)
	replicated := perPage * 8
	if replicated < 0.025 || replicated > 0.04 {
		t.Errorf("replicated directory overhead = %.4f, want ~3%%", replicated)
	}
}

// TestSuperpageSharedHome: pages grouped into one superpage must share a
// home node (§3.3's Digital Unix region-count constraint).
func TestSuperpageSharedHome(t *testing.T) {
	var proto *Protocol
	cfg := testConfig(2, 1, "csm_poll", Config{PagesPerSuperpage: 4})
	inner := cfg.NewProtocol
	cfg.NewProtocol = func(rt *core.Runtime) core.Protocol {
		p := inner(rt).(*Protocol)
		proto = p
		return p
	}
	l := core.NewLayout()
	a := l.F64Pages(1024) // page 0
	b := l.F64Pages(1024) // page 1: same superpage as page 0
	prog := &core.Program{
		Name:        "super",
		SharedBytes: l.Size(),
		Barriers:    1,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				a.Set(p, 0, 1) // rank 0 (node 0) first-touches page 0
			}
			p.Barrier(0)
			if p.Rank() == 1 {
				b.Set(p, 0, 2) // rank 1 (node 1) touches page 1 second
			}
			p.Finish()
		},
	}
	if _, err := core.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	// Both pages are in superpage 0, whose home was claimed by node 0.
	if got := proto.superHome[0]; got != 0 {
		t.Errorf("superpage home = %d, want 0 (first toucher's node)", got)
	}
	if len(proto.superHome) < 2 || proto.superHome[1] != -1 {
		// Pages 2+ were never touched: superpage 1 unassigned... the layout
		// has 2 pages only, so there is exactly one superpage.
		if len(proto.superHome) != 1 {
			t.Errorf("superHome = %v", proto.superHome)
		}
	}
}

// TestWriteThroughFenceAtRelease: a release cannot complete before the
// doubled writes drain; a release after a large write burst must advance the
// clock past the drain horizon.
func TestWriteThroughFenceAtRelease(t *testing.T) {
	l := core.NewLayout()
	arr := l.F64Pages(8192) // 64 KB of doubled writes
	var fenceGap sim.Time
	prog := &core.Program{
		Name:        "fence",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    1,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				p.Lock(0)
				start := p.Sim().Now()
				for i := 0; i < arr.N; i++ {
					arr.Set(p, i, 1)
				}
				p.Unlock(0) // release fences the write-through pipe
				fenceGap = p.Sim().Now() - start
			}
			p.Barrier(0)
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(2, 1, "csm_poll", Config{}), prog); err != nil {
		t.Fatal(err)
	}
	// 64 KB at 30 MB/s is ~2.2 ms of drain. Write-buffer backpressure makes
	// the writer absorb most of it during the burst itself; the release
	// fence covers the rest. Either way, burst+release cannot complete
	// before the pipe drained.
	if fenceGap < 2*sim.Millisecond {
		t.Errorf("write burst + release took %d ns, below the 2.2 ms drain bound", fenceGap)
	}
}
