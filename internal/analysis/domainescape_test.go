package analysis

import (
	"path/filepath"
	"testing"
)

// TestDomainEscapeClassification checks the three-way classification on the
// descape fixture protocol: per-rank slots confine, handler-only mutations
// mediate, direct cross-slot mutations escape.
func TestDomainEscapeClassification(t *testing.T) {
	l := NewSrcLoader(filepath.Join("testdata", "src"))
	pkgs, err := l.Load("descape/proto", "descape/clean")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	reports, err := DomainEscapeReports(pkgs)
	if err != nil {
		t.Fatalf("building reports: %v", err)
	}
	byPkg := map[string]ProtocolReport{}
	for _, r := range reports {
		byPkg[r.Package] = r
	}

	proto, ok := byPkg["descape/proto"]
	if !ok {
		t.Fatalf("no report for descape/proto; got %v", byPkg)
	}
	if got := fieldUseRoots(proto.Escaping); !equalStrings(got, []string{"dir", "hits"}) {
		t.Errorf("proto escaping roots = %v, want [dir hits]", got)
	}
	if got := fieldUseRoots(proto.MessageMediated); !equalStrings(got, []string{"mailbox"}) {
		t.Errorf("proto message-mediated roots = %v, want [mailbox]", got)
	}
	for _, want := range []string{"cfg", "eps", "perRank"} {
		if !containsString(proto.NodeConfined, want) {
			t.Errorf("proto node-confined %v missing %q", proto.NodeConfined, want)
		}
	}
	if proto.DeclaredSafe == nil || !*proto.DeclaredSafe {
		t.Errorf("proto DeclaredSafe = %v, want true", proto.DeclaredSafe)
	}
	// The cross-function path must reach the mutation through the helper.
	foundPath := false
	for _, fu := range proto.Escaping {
		if fu.Root == "dir" && len(fu.Path) == 2 && fu.Path[0] == "OnReadFault" && fu.Path[1] == "bump" {
			foundPath = true
		}
	}
	if !foundPath {
		t.Errorf("proto dir escape lost its OnReadFault → bump call path: %+v", proto.Escaping)
	}

	clean, ok := byPkg["descape/clean"]
	if !ok {
		t.Fatalf("no report for descape/clean")
	}
	if len(clean.Escaping) != 0 || len(clean.MessageMediated) != 0 {
		t.Errorf("clean protocol should be fully confined, got escaping=%v mediated=%v",
			clean.Escaping, clean.MessageMediated)
	}
	for _, want := range []string{"cfg", "perNode", "perRank"} {
		if !containsString(clean.NodeConfined, want) {
			t.Errorf("clean node-confined %v missing %q", clean.NodeConfined, want)
		}
	}
}

func fieldUseRoots(fus []FieldUse) []string {
	var out []string
	seen := map[string]bool{}
	for _, fu := range fus {
		if !seen[fu.Root] {
			seen[fu.Root] = true
			out = append(out, fu.Root)
		}
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
