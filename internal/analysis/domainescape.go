package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// DomainEscape is the flow-aware, cross-function domain-escape prover: for
// every type in a package that declares a DomainSafe() bool method (a
// protocol), it classifies each protocol field reachable from the core.Proc
// entry points as node-confined, message-mediated, or cluster-global
// escaping, and reports a protocol that declares DomainSafe()==true while
// its escape inventory is non-empty.
//
// The classification mirrors the node-parallel engine's soundness argument
// (DESIGN.md §3b): under sim.SetParallel each node's processors run on their
// own host goroutine, so Go state a protocol touches must be either private
// to the accessing node or reached through the simulator's timestamped
// cross-domain messages.
//
//   - Entry contexts. Protocol methods invoked from the accessing
//     processor's goroutine (OnReadFault, OnWriteFault, OnSharedWrite, Lock,
//     Unlock, Barrier, Finalize) establish the *direct* context; Service —
//     invoked while servicing a request addressed to the processor —
//     establishes the *handler* (message-mediated) context; Setup, Name,
//     Counters, WantsWriteHook, DomainSafe, and MaxCostJitter run before the
//     processors start or after they stop (*quiescent*). Contexts propagate
//     over the intra-package call graph, except into entry methods
//     themselves: a re-entrant dispatch helper that forwards raw messages to
//     Service must not leak its caller's direct context into handler code.
//   - Rootedness. The receiver of an entry method is cluster-rooted; a field
//     selected from it becomes a root, and taint follows assignments, field
//     selection, indexing, address-taking, and call summaries (package-local
//     functions contribute their parameter and return taints, iterated to a
//     fixpoint).
//   - Self slots. An index that is provably the accessing processor's own
//     rank or node — p.Rank()/p.Node() on the entry's *core.Proc parameter, a
//     variable assigned from one, or a parameter that every call site feeds
//     such a value — confines the access to the accessing node: per-rank
//     slices and per-node flags are node-private even though the carrier
//     slice is shared.
//   - Access kinds. Writes (assignment, ++/--, delete, copy-into, element
//     stores), reads, may-mutate calls (a non-pure external method invoked
//     on a rooted value, e.g. interconnect WriteThrough/AccountTraffic), and
//     message payloads (a rooted value passed to a msg.Endpoint call, which
//     serializes it into the simulator's timestamped channel).
//
// A field escapes when a non-self mutation is reachable in the direct
// context; it is message-mediated when its only non-self mutations happen in
// the handler context (the remaining proof obligation — that every message
// targeting it is addressed to the owning node — is recorded in the report);
// it is node-confined otherwise (self slots, and reads of state that is
// immutable after Setup).
var DomainEscape = &Analyzer{
	Name: "domainescape",
	Doc: "prove which protocol host-state fields escape the accessing " +
		"node's scheduling domain and check DomainSafe() declarations " +
		"against the escape inventory",
	Run: runDomainEscape,
}

// ProtocolReport is the machine-readable domain-safety report for one
// protocol type, emitted by dsmvet -json and pinned by golden tests.
type ProtocolReport struct {
	Package string `json:"package"`
	Type    string `json:"type"`
	// DeclaredSafe is the literal DomainSafe() result when the body is a
	// plain `return true/false`, else nil.
	DeclaredSafe *bool `json:"declaredDomainSafe,omitempty"`
	// Escaping lists fields mutated directly from a foreign node's
	// goroutine: every entry forces DomainSafe()==false.
	Escaping []FieldUse `json:"escaping"`
	// MessageMediated lists fields whose only cross-processor mutations
	// happen while servicing addressed requests. They are safe under the
	// node-parallel engine iff every message that reaches them is addressed
	// to a processor of the owning node.
	MessageMediated []FieldUse `json:"messageMediated"`
	// NodeConfined lists fields proved confined: self-slot access only, or
	// immutable after Setup.
	NodeConfined []string `json:"nodeConfined"`
}

// FieldUse is one field → call-path pair in a domain-safety report.
type FieldUse struct {
	// Root is the protocol field the access is reached through.
	Root string `json:"root"`
	// Field is the accessed field (Type.name), possibly nested under Root.
	Field string `json:"field"`
	// Kind is the worst access: "write", "may-mutate", "message", "read".
	Kind string `json:"kind"`
	// Contexts lists the entry contexts reaching the access.
	Contexts []string `json:"contexts"`
	// Entries lists the protocol entry points the access is reachable from.
	Entries []string `json:"entries"`
	// Path is a representative call path from an entry to the accessing
	// function.
	Path []string `json:"path"`
	// Pos locates a representative access (file:line); cleared in goldens.
	Pos string `json:"pos,omitempty"`
}

// Entry-point context assignment.
type dctx int

const (
	ctxDirect dctx = iota
	ctxHandler
	ctxQuiescent
	numCtx
)

func (c dctx) String() string {
	switch c {
	case ctxDirect:
		return "direct"
	case ctxHandler:
		return "handler"
	}
	return "quiescent"
}

var escEntryCtx = map[string]dctx{
	"OnReadFault":    ctxDirect,
	"OnWriteFault":   ctxDirect,
	"OnSharedWrite":  ctxDirect,
	"Lock":           ctxDirect,
	"Unlock":         ctxDirect,
	"Barrier":        ctxDirect,
	"Finalize":       ctxDirect,
	"Service":        ctxHandler,
	"Setup":          ctxQuiescent,
	"Name":           ctxQuiescent,
	"Counters":       ctxQuiescent,
	"WantsWriteHook": ctxQuiescent,
	"DomainSafe":     ctxQuiescent,
	"MaxCostJitter":  ctxQuiescent,
}

// escPureMethods lists external methods (pkgleaf.Type.Method) that neither
// mutate their receiver's cluster-visible state nor retain their arguments:
// calling one on a rooted value is a read, and its result carries the
// receiver's taint. Everything external and not listed is conservatively a
// may-mutate on rooted reference arguments.
var escPureMethods = map[string]bool{
	// core.Runtime getters.
	"core.Runtime.Net":                 true,
	"core.Runtime.Engine":              true,
	"core.Runtime.Config":              true,
	"core.Runtime.Program":             true,
	"core.Runtime.NumPages":            true,
	"core.Runtime.InitialPage":         true,
	"core.Runtime.ComputeProcs":        true,
	"core.Runtime.ComputeProcsOnNode":  true,
	"core.Runtime.ProcByRank":          true,
	"core.Runtime.ProcBySimID":         true,
	"core.Runtime.ServerProc":          true,
	// core.Proc getters (safe on procs resolved through the runtime).
	"core.Proc.EP":    true,
	"core.Proc.Rank":  true,
	"core.Proc.Node":  true,
	"core.Proc.Sim":   true,
	"core.Proc.Space": true,
	"core.Proc.Costs": true,
	"core.Proc.Stats": true,
	// interconnect read-only contract methods.
	"interconnect.Interconnect.Caps":                true,
	"interconnect.Interconnect.Kind":                true,
	"interconnect.Interconnect.FenceTime":           true,
	"interconnect.Interconnect.MinCrossNodeLatency": true,
	"interconnect.Interconnect.InterruptSendCost":   true,
	"interconnect.Interconnect.InterruptLatency":    true,
	"interconnect.Interconnect.TrafficBytes":        true,
	"interconnect.Interconnect.TotalTraffic":        true,
	"interconnect.Interconnect.Transfers":           true,
	"interconnect.Interconnect.Interrupts":          true,
	"interconnect.WordArray.Read":                   true,
	// Engine/sim getters.
	"sim.Engine.Config": true,
	"sim.Engine.Proc":   true,
	"sim.Proc.Now":      true,
}

// escPureFuncs lists external package-level functions that are pure for
// taint purposes (pkgleaf.Func).
var escPureFuncs = map[string]bool{
	"fmt.Sprintf":     true,
	"fmt.Sprint":      true,
	"fmt.Sprintln":    true,
	"fmt.Errorf":      true,
	"fmt.Printf":      true,
	"fmt.Println":     true,
	"fmt.Fprintf":     true,
	"vm.PageOf":       true,
	"vm.Offset":       true,
	"vm.SuperpageOf":  true,
	"sort.SearchInts": true,
}

type accessKind int

const (
	kRead accessKind = iota
	kMessage
	kMayMutate
	kWrite
)

func (k accessKind) String() string {
	switch k {
	case kWrite:
		return "write"
	case kMayMutate:
		return "may-mutate"
	case kMessage:
		return "message"
	}
	return "read"
}

// escTaint marks a value as reachable from protocol host state: root is the
// protocol field it was reached through (nil for the protocol receiver
// itself), and self reports that the path went through a self-rank/self-node
// slot.
type escTaint struct {
	root *types.Var
	self bool
}

// escAccess is one recorded field access.
type escAccess struct {
	root  *types.Var // protocol field reached through (never nil)
	field *types.Var // accessed field; may equal root for element/alias writes
	kind  accessKind
	self  bool
	fn    *escFunc
	pos   token.Pos
}

// escFunc is the per-function fixpoint state.
type escFunc struct {
	decl *ast.FuncDecl
	obj  *types.Func

	entryName string // non-empty for protocol entry methods
	ctxs      [numCtx]bool
	entries   [numCtx]map[string]bool
	parent    [numCtx]*escFunc

	params        []*types.Var // receiver (methods) then parameters, in order
	paramTaint    []map[escTaint]bool
	paramSelfProc []bool // param is always the accessing processor
	paramSelfIdx  []bool // param is always a self-rank/node index

	// retGlobals summarizes the protocol-field taints the function returns.
	retGlobals map[escTaint]bool
}

func (f *escFunc) anyCtx() bool {
	return f.ctxs[ctxDirect] || f.ctxs[ctxHandler] || f.ctxs[ctxQuiescent]
}

// escAnalysis is one protocol's whole-package analysis.
type escAnalysis struct {
	fset  *token.FileSet
	info  *types.Info
	pkg   *types.Package
	proto *types.Named // protocol type
	roots map[*types.Var]bool

	funcs   map[*types.Func]*escFunc
	ordered []*escFunc

	dirty    bool
	record   bool
	accesses []escAccess
}

func runDomainEscape(pass *Pass) error {
	reports, diags, err := domainReports(pass.Path, pass.Fset, pass.Files, pass.Pkg, pass.Info)
	if err != nil {
		return err
	}
	_ = reports
	for _, d := range diags {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

type escDiag struct {
	pos token.Pos
	msg string
}

// DomainEscapeReports builds the per-protocol domain-safety reports for the
// given packages, in deterministic order. It is the API behind dsmvet -json
// and the golden tests.
func DomainEscapeReports(pkgs []*Package) ([]ProtocolReport, error) {
	var out []ProtocolReport
	for _, pkg := range pkgs {
		reports, _, err := domainReports(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			return nil, err
		}
		out = append(out, reports...)
	}
	return out, nil
}

// domainReports analyzes one package: one report (and possibly one
// diagnostic) per type declaring a DomainSafe() bool method.
func domainReports(path string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]ProtocolReport, []escDiag, error) {
	type protoDecl struct {
		typ  *types.Named
		decl *ast.FuncDecl // the DomainSafe method
	}
	var protos []protoDecl
	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "DomainSafe" || fn.Recv == nil {
				continue
			}
			obj, _ := info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Results().Len() != 1 {
				continue
			}
			if b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Bool {
				continue
			}
			named := recvNamed(sig.Recv().Type())
			if named == nil {
				continue
			}
			protos = append(protos, protoDecl{typ: named, decl: fn})
		}
	}
	sort.Slice(protos, func(i, j int) bool { return protos[i].typ.Obj().Name() < protos[j].typ.Obj().Name() })

	var reports []ProtocolReport
	var diags []escDiag
	for _, pd := range protos {
		a := &escAnalysis{
			fset:  fset,
			info:  info,
			pkg:   pkg,
			proto: pd.typ,
			roots: map[*types.Var]bool{},
		}
		rep, err := a.run(path, files)
		if err != nil {
			return nil, nil, err
		}
		rep.DeclaredSafe = literalBoolReturn(pd.decl)
		reports = append(reports, rep)
		if rep.DeclaredSafe != nil && *rep.DeclaredSafe && len(rep.Escaping) > 0 {
			var roots []string
			seen := map[string]bool{}
			for _, fu := range rep.Escaping {
				if !seen[fu.Root] {
					seen[fu.Root] = true
					roots = append(roots, fu.Root)
				}
			}
			diags = append(diags, escDiag{
				pos: pd.decl.Name.Pos(),
				msg: fmt.Sprintf("%s declares DomainSafe()==true but %d field access(es) escape the accessing node's domain (roots: %s): confine the state to self slots or mediate it through addressed messages, or declare DomainSafe()==false",
					pd.typ.Obj().Name(), len(rep.Escaping), strings.Join(roots, ", ")),
			})
		}
	}
	return reports, diags, nil
}

// recvNamed unwraps a receiver type to its named type.
func recvNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// literalBoolReturn extracts the constant result of a `return true/false`
// single-statement body, or nil.
func literalBoolReturn(fn *ast.FuncDecl) *bool {
	if fn.Body == nil || len(fn.Body.List) != 1 {
		return nil
	}
	ret, ok := fn.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	id, ok := ast.Unparen(ret.Results[0]).(*ast.Ident)
	if !ok || (id.Name != "true" && id.Name != "false") {
		return nil
	}
	v := id.Name == "true"
	return &v
}

// run performs the fixpoint and builds the report.
func (a *escAnalysis) run(path string, files []*ast.File) (ProtocolReport, error) {
	if st, ok := a.proto.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			a.roots[st.Field(i)] = true
		}
	}
	a.collectFuncs(files)
	a.seedEntries()

	for round := 0; round < 64; round++ {
		a.dirty = false
		for _, f := range a.ordered {
			if f.anyCtx() {
				a.walk(f)
			}
		}
		if !a.dirty {
			break
		}
	}
	a.record = true
	for _, f := range a.ordered {
		if f.anyCtx() {
			a.walk(f)
		}
	}
	return a.report(path), nil
}

// collectFuncs indexes every function declaration of the package, in source
// order.
func (a *escAnalysis) collectFuncs(files []*ast.File) {
	a.funcs = map[*types.Func]*escFunc{}
	for _, file := range files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := a.info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			ef := &escFunc{decl: fn, obj: obj}
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				if len(fn.Recv.List[0].Names) == 1 {
					v, _ := a.info.Defs[fn.Recv.List[0].Names[0]].(*types.Var)
					ef.params = append(ef.params, v)
				} else {
					ef.params = append(ef.params, nil)
				}
			}
			if fn.Type.Params != nil {
				for _, field := range fn.Type.Params.List {
					if len(field.Names) == 0 {
						ef.params = append(ef.params, nil)
						continue
					}
					for _, name := range field.Names {
						v, _ := a.info.Defs[name].(*types.Var)
						ef.params = append(ef.params, v)
					}
				}
			}
			n := len(ef.params)
			ef.paramTaint = make([]map[escTaint]bool, n)
			ef.paramSelfProc = make([]bool, n)
			ef.paramSelfIdx = make([]bool, n)
			for i := range ef.params {
				ef.paramTaint[i] = map[escTaint]bool{}
				// Optimistic defaults, downgraded at call sites; entries are
				// re-seeded pessimistically below.
				ef.paramSelfProc[i] = true
				ef.paramSelfIdx[i] = true
			}
			for c := dctx(0); c < numCtx; c++ {
				ef.entries[c] = map[string]bool{}
			}
			a.funcs[obj] = ef
			a.ordered = append(a.ordered, ef)
		}
	}
}

// seedEntries marks the protocol's entry methods with their contexts, roots
// their receivers, and pins their parameter self-ness: only the *core.Proc
// parameter is the accessing processor; integer entry parameters (page ids,
// lock ids, addresses) are never self indexes.
func (a *escAnalysis) seedEntries() {
	for _, f := range a.ordered {
		if f.decl.Recv == nil {
			continue
		}
		sig := f.obj.Type().(*types.Signature)
		if recvNamed(sig.Recv().Type()) != a.proto {
			continue
		}
		ctx, ok := escEntryCtx[f.obj.Name()]
		if !ok {
			continue
		}
		f.entryName = f.obj.Name()
		f.ctxs[ctx] = true
		f.entries[ctx][f.entryName] = true
		if len(f.params) > 0 && f.params[0] != nil {
			f.paramTaint[0][escTaint{}] = true // the receiver is cluster-rooted
		}
		for i, v := range f.params {
			f.paramSelfIdx[i] = false
			f.paramSelfProc[i] = i > 0 && v != nil && isCoreProc(v.Type())
		}
	}
}

// isCoreProc reports whether t is *Proc of a package whose path leaf is
// "core" (the kernel's processor handle).
func isCoreProc(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && pathLeaf(obj.Pkg().Path()) == "core"
}

// ---------------------------------------------------------------------------
// Function-body walker

// escEnv is the per-walk local state of one function.
type escEnv struct {
	a *escAnalysis
	f *escFunc

	locTaint    map[types.Object]map[escTaint]bool
	locSelf     map[types.Object]bool // holds a self rank/node value
	locSelfProc map[types.Object]bool // holds the accessing *core.Proc
}

func (a *escAnalysis) walk(f *escFunc) {
	e := &escEnv{
		a:           a,
		f:           f,
		locTaint:    map[types.Object]map[escTaint]bool{},
		locSelf:     map[types.Object]bool{},
		locSelfProc: map[types.Object]bool{},
	}
	e.block(f.decl.Body)
}

func (e *escEnv) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		e.stmt(s)
	}
}

func (e *escEnv) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		e.block(s)
	case *ast.ExprStmt:
		e.expr(s.X)
	case *ast.AssignStmt:
		e.assign(s)
	case *ast.IncDecStmt:
		e.write(s.X, kWrite, s.Pos())
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t map[escTaint]bool
					if i < len(vs.Values) {
						t = e.expr(vs.Values[i])
					}
					e.bind(name, t, false, false)
				}
			}
		}
	case *ast.IfStmt:
		e.stmt(s.Init)
		e.expr(s.Cond)
		e.block(s.Body)
		e.stmt(s.Else)
	case *ast.ForStmt:
		e.stmt(s.Init)
		if s.Cond != nil {
			e.expr(s.Cond)
		}
		e.stmt(s.Post)
		e.block(s.Body)
	case *ast.RangeStmt:
		t := e.expr(s.X)
		if s.Key != nil {
			if id, ok := ast.Unparen(s.Key).(*ast.Ident); ok && s.Tok == token.DEFINE {
				e.bind(id, nil, false, false)
			}
		}
		if s.Value != nil {
			if id, ok := ast.Unparen(s.Value).(*ast.Ident); ok && s.Tok == token.DEFINE {
				e.bind(id, t, false, false)
			}
		}
		e.block(s.Body)
	case *ast.SwitchStmt:
		e.stmt(s.Init)
		if s.Tag != nil {
			e.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, x := range cc.List {
				e.expr(x)
			}
			for _, st := range cc.Body {
				e.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		e.stmt(s.Init)
		var tagTaint map[escTaint]bool
		switch as := s.Assign.(type) {
		case *ast.AssignStmt:
			if len(as.Rhs) == 1 {
				if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
					tagTaint = e.expr(ta.X)
				}
			}
		case *ast.ExprStmt:
			if ta, ok := ast.Unparen(as.X).(*ast.TypeAssertExpr); ok {
				tagTaint = e.expr(ta.X)
			}
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if obj := e.a.info.Implicits[cc]; obj != nil && tagTaint != nil {
				e.locTaint[obj] = union(e.locTaint[obj], tagTaint)
			}
			for _, st := range cc.Body {
				e.stmt(st)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t := e.expr(r)
			for el := range t {
				e.addRet(el)
			}
		}
	case *ast.DeferStmt:
		e.expr(s.Call)
	case *ast.GoStmt:
		e.expr(s.Call)
	case *ast.SendStmt:
		e.expr(s.Chan)
		e.expr(s.Value)
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			e.stmt(cc.Comm)
			for _, st := range cc.Body {
				e.stmt(st)
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Conservative fallback: evaluate any expressions found below.
		ast.Inspect(s, func(n ast.Node) bool {
			if x, ok := n.(ast.Expr); ok {
				e.expr(x)
				return false
			}
			return true
		})
	}
}

// retTaints is stored per function via addRet.
func (e *escEnv) addRet(el escTaint) {
	if e.f.retGlobals == nil {
		e.f.retGlobals = map[escTaint]bool{}
	}
	if !e.f.retGlobals[el] {
		e.f.retGlobals[el] = true
		e.a.dirty = true
	}
}

// assign handles = and := (including compound ops), binding locals and
// recording writes through rooted destinations.
func (e *escEnv) assign(s *ast.AssignStmt) {
	var rhs []map[escTaint]bool
	for _, r := range s.Rhs {
		rhs = append(rhs, e.expr(r))
	}
	for i, lhs := range s.Lhs {
		var t map[escTaint]bool
		if len(s.Rhs) == len(s.Lhs) {
			t = rhs[i]
		} else if len(rhs) == 1 {
			t = rhs[0] // multi-value call: every binding gets the call taint
		}
		if s.Tok == token.DEFINE {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				self, selfProc := false, false
				if len(s.Rhs) == len(s.Lhs) {
					self = e.isSelfIdx(s.Rhs[i])
					selfProc = e.isSelfProc(s.Rhs[i])
				}
				e.bind(id, t, self, selfProc)
				continue
			}
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := e.a.info.Uses[id]
			if obj == nil {
				obj = e.a.info.Defs[id]
			}
			_, isParam := e.paramIndex(obj)
			if isParam || e.isLocalVar(obj) {
				// Rebinding a local (or parameter) is not a mutation of
				// rooted state — the old referent is untouched.
				self, selfProc := false, false
				if len(s.Rhs) == len(s.Lhs) {
					self = e.isSelfIdx(s.Rhs[i])
					selfProc = e.isSelfProc(s.Rhs[i])
				}
				e.bindObj(obj, t, self, selfProc)
				continue
			}
		}
		e.write(lhs, kWrite, lhs.Pos())
	}
}

// isLocalVar reports whether obj is a function-scoped variable of the
// current function (as opposed to a package-level variable or field).
func (e *escEnv) isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if obj.Parent() == nil {
		return false
	}
	scope := e.a.pkg.Scope()
	return obj.Parent() != scope && obj.Parent() != types.Universe
}

func (e *escEnv) bind(id *ast.Ident, t map[escTaint]bool, self, selfProc bool) {
	if id.Name == "_" {
		return
	}
	obj := e.a.info.Defs[id]
	if obj == nil {
		obj = e.a.info.Uses[id]
	}
	e.bindObj(obj, t, self, selfProc)
}

func (e *escEnv) bindObj(obj types.Object, t map[escTaint]bool, self, selfProc bool) {
	if obj == nil {
		return
	}
	if len(t) > 0 && refLike(obj.Type()) {
		e.locTaint[obj] = union(e.locTaint[obj], t)
	}
	if self {
		e.locSelf[obj] = true
	}
	if selfProc {
		e.locSelfProc[obj] = true
	}
}

// write records a mutation through lhs: element stores and field stores on
// rooted values are writes against the root.
func (e *escEnv) write(lhs ast.Expr, kind accessKind, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	switch x := lhs.(type) {
	case *ast.Ident:
		// Rebindings were filtered in assign; an ident reaching here is a
		// copy/delete destination (or a package-level var) — a mutation of
		// whatever the ident's value aliases.
		for el := range e.identTaint(x) {
			if el.root != nil {
				e.recordAccess(el.root, el.root, kind, el.self, pos)
			}
		}
	case *ast.SelectorExpr:
		sel := e.a.info.Selections[x]
		if sel == nil || sel.Kind() != types.FieldVal {
			e.expr(x.X)
			return
		}
		fld, _ := sel.Obj().(*types.Var)
		base := e.expr(x.X)
		for el := range base {
			if el.root == nil {
				if e.a.roots[fld] {
					e.recordAccess(fld, fld, kind, el.self, pos)
				}
			} else {
				e.recordAccess(el.root, fld, kind, el.self, pos)
			}
		}
	case *ast.IndexExpr:
		self := e.isSelfIdx(x.Index)
		e.expr(x.Index)
		e.writeElem(x.X, kind, self, pos)
	case *ast.StarExpr:
		t := e.expr(x.X)
		for el := range t {
			if el.root != nil {
				e.recordAccess(el.root, el.root, kind, el.self, pos)
			}
		}
	default:
		e.expr(lhs)
	}
}

// writeElem records an element store through expr's taint, with self already
// known from an enclosing index.
func (e *escEnv) writeElem(x ast.Expr, kind accessKind, self bool, pos token.Pos) {
	x = ast.Unparen(x)
	if ix, ok := x.(*ast.IndexExpr); ok {
		e.expr(ix.Index)
		e.writeElem(ix.X, kind, self || e.isSelfIdx(ix.Index), pos)
		return
	}
	if sx, ok := x.(*ast.SelectorExpr); ok {
		if sel := e.a.info.Selections[sx]; sel != nil && sel.Kind() == types.FieldVal {
			fld, _ := sel.Obj().(*types.Var)
			base := e.expr(sx.X)
			for el := range base {
				if el.root == nil {
					if e.a.roots[fld] {
						e.recordAccess(fld, fld, kind, self || el.self, pos)
					}
				} else {
					e.recordAccess(el.root, fld, kind, self || el.self, pos)
				}
			}
			return
		}
	}
	t := e.expr(x)
	for el := range t {
		if el.root != nil {
			e.recordAccess(el.root, el.root, kind, self || el.self, pos)
		}
	}
}

func (e *escEnv) recordAccess(root, fld *types.Var, kind accessKind, self bool, pos token.Pos) {
	if !e.a.record || root == nil {
		return
	}
	e.a.accesses = append(e.a.accesses, escAccess{
		root: root, field: fld, kind: kind, self: self, fn: e.f, pos: pos,
	})
}

// ---------------------------------------------------------------------------
// Expression evaluation

// expr evaluates x, records reads of rooted fields, and returns x's taints.
func (e *escEnv) expr(x ast.Expr) map[escTaint]bool {
	if x == nil {
		return nil
	}
	switch x := x.(type) {
	case *ast.Ident:
		return e.identTaint(x)
	case *ast.ParenExpr:
		return e.expr(x.X)
	case *ast.SelectorExpr:
		sel := e.a.info.Selections[x]
		if sel == nil {
			// Qualified identifier (pkg.Name).
			return nil
		}
		if sel.Kind() != types.FieldVal {
			// Method value: evaluate the receiver only.
			e.expr(x.X)
			return nil
		}
		fld, _ := sel.Obj().(*types.Var)
		base := e.expr(x.X)
		out := map[escTaint]bool{}
		for el := range base {
			if el.root == nil {
				if e.a.roots[fld] {
					e.recordAccess(fld, fld, kRead, el.self, x.Sel.Pos())
					// Value fields still root addresses taken later (&c.f).
					out[escTaint{root: fld, self: el.self}] = true
				}
			} else {
				e.recordAccess(el.root, fld, kRead, el.self, x.Sel.Pos())
				out[el] = true
			}
		}
		return out
	case *ast.IndexExpr:
		base := e.expr(x.X)
		self := e.isSelfIdx(x.Index)
		e.expr(x.Index)
		if !self {
			return base
		}
		out := map[escTaint]bool{}
		for el := range base {
			el.self = true
			out[el] = true
		}
		return out
	case *ast.SliceExpr:
		t := e.expr(x.X)
		e.expr(x.Low)
		e.expr(x.High)
		e.expr(x.Max)
		return t
	case *ast.StarExpr:
		return e.expr(x.X)
	case *ast.UnaryExpr:
		return e.expr(x.X)
	case *ast.BinaryExpr:
		e.expr(x.X)
		e.expr(x.Y)
		return nil
	case *ast.TypeAssertExpr:
		return e.expr(x.X)
	case *ast.CompositeLit:
		out := map[escTaint]bool{}
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			out = union(out, e.expr(v))
		}
		return out
	case *ast.FuncLit:
		e.block(x.Body)
		return nil
	case *ast.CallExpr:
		return e.call(x)
	case *ast.KeyValueExpr:
		return e.expr(x.Value)
	default:
		return nil
	}
}

// identTaint returns the taints an identifier carries: parameter summary
// taints plus any local rebindings.
func (e *escEnv) identTaint(id *ast.Ident) map[escTaint]bool {
	obj := e.a.info.Uses[id]
	if obj == nil {
		obj = e.a.info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	loc := e.locTaint[obj]
	if i, ok := e.paramIndex(obj); ok {
		if len(loc) == 0 {
			return e.f.paramTaint[i]
		}
		out := map[escTaint]bool{}
		out = union(out, e.f.paramTaint[i])
		out = union(out, loc)
		return out
	}
	return loc
}

// paramIndex resolves obj to a parameter slot of the current function.
func (e *escEnv) paramIndex(obj types.Object) (int, bool) {
	v, ok := obj.(*types.Var)
	if !ok {
		return 0, false
	}
	for i, p := range e.f.params {
		if p == v && p != nil {
			return i, true
		}
	}
	return 0, false
}

// isSelfIdx reports whether x is provably the accessing processor's own rank
// or node.
func (e *escEnv) isSelfIdx(x ast.Expr) bool {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.Ident:
		obj := e.a.info.Uses[x]
		if obj == nil {
			return false
		}
		if e.locSelf[obj] {
			return true
		}
		if i, ok := e.paramIndex(obj); ok {
			return e.f.paramSelfIdx[i]
		}
		return false
	case *ast.CallExpr:
		if tv, ok := e.a.info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return e.isSelfIdx(x.Args[0])
			}
			return false
		}
		f := funcObj(e.a.info, x)
		if f == nil {
			return false
		}
		if f.Name() == "Rank" || f.Name() == "Node" {
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				return e.isSelfProc(sel.X)
			}
		}
		return false
	}
	return false
}

// isSelfProc reports whether x is provably the accessing processor.
func (e *escEnv) isSelfProc(x ast.Expr) bool {
	x = ast.Unparen(x)
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	obj := e.a.info.Uses[id]
	if obj == nil {
		return false
	}
	if e.locSelfProc[obj] {
		return true
	}
	if i, ok := e.paramIndex(obj); ok {
		return e.f.paramSelfProc[i] && isCoreProc(obj.Type())
	}
	return false
}

// ---------------------------------------------------------------------------
// Calls

func (e *escEnv) call(call *ast.CallExpr) map[escTaint]bool {
	fun := ast.Unparen(call.Fun)

	// Type conversions.
	if tv, ok := e.a.info.Types[call.Fun]; ok && tv.IsType() {
		var t map[escTaint]bool
		for _, arg := range call.Args {
			t = union(t, e.expr(arg))
		}
		if tv := e.a.info.Types[call]; tv.Type != nil && !refLike(tv.Type) {
			return nil
		}
		return t
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if obj := e.a.info.Uses[id]; obj != nil && obj.Parent() == types.Universe {
			return e.builtin(id.Name, call)
		}
	}

	f := funcObj(e.a.info, call)
	if f == nil {
		// Call through a function value (trace hooks, stored closures):
		// conservatively a may-mutate on rooted reference arguments.
		for _, arg := range call.Args {
			t := e.expr(arg)
			for el := range t {
				if el.root != nil && refLikeExpr(e.a.info, arg) {
					e.recordAccess(el.root, el.root, kMayMutate, el.self, arg.Pos())
				}
			}
		}
		return nil
	}

	if g, ok := e.a.funcs[f]; ok {
		return e.localCall(call, fun, g)
	}
	return e.externalCall(call, fun, f)
}

func (e *escEnv) builtin(name string, call *ast.CallExpr) map[escTaint]bool {
	switch name {
	case "append":
		var t map[escTaint]bool
		for _, arg := range call.Args {
			t = union(t, e.expr(arg))
		}
		return t
	case "copy":
		if len(call.Args) == 2 {
			e.write(call.Args[0], kWrite, call.Args[0].Pos())
			e.expr(call.Args[1])
		}
		return nil
	case "delete":
		if len(call.Args) >= 1 {
			e.write(call.Args[0], kWrite, call.Args[0].Pos())
			for _, a := range call.Args[1:] {
				e.expr(a)
			}
		}
		return nil
	default:
		for _, arg := range call.Args {
			e.expr(arg)
		}
		return nil
	}
}

// localCall propagates contexts, entries, and parameter taints into a
// package-local callee and returns its return-taint summary.
func (e *escEnv) localCall(call *ast.CallExpr, fun ast.Expr, g *escFunc) map[escTaint]bool {
	// Align arguments with callee parameter slots.
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := fun.(*ast.SelectorExpr); ok && g.decl.Recv != nil {
		args = append(args, sel.X)
	}
	args = append(args, call.Args...)

	// Context/entry propagation, cutting edges into protocol entry methods
	// (re-entrant dispatch must not leak the caller's context into them).
	if g.entryName == "" {
		for c := dctx(0); c < numCtx; c++ {
			if !e.f.ctxs[c] {
				continue
			}
			if !g.ctxs[c] {
				g.ctxs[c] = true
				e.a.dirty = true
			}
			if g.parent[c] == nil && g != e.f {
				g.parent[c] = e.f
				e.a.dirty = true
			}
			changed := false
			for name := range e.f.entries[c] {
				if !g.entries[c][name] {
					g.entries[c][name] = true
					changed = true
				}
			}
			if changed {
				e.a.dirty = true
			}
		}
	}

	for i, arg := range args {
		slot := i
		if slot >= len(g.params) {
			slot = len(g.params) - 1 // variadic tail
		}
		if slot < 0 {
			break
		}
		t := e.expr(arg)
		changed := false
		for el := range t {
			if !g.paramTaint[slot][el] {
				g.paramTaint[slot][el] = true
				changed = true
			}
		}
		if changed {
			e.a.dirty = true
		}
		if g.entryName == "" {
			if g.paramSelfProc[slot] && !e.isSelfProc(arg) {
				g.paramSelfProc[slot] = false
				e.a.dirty = true
			}
			if g.paramSelfIdx[slot] && !e.isSelfIdx(arg) {
				g.paramSelfIdx[slot] = false
				e.a.dirty = true
			}
		}
	}
	if tv := e.a.info.Types[call]; tv.Type != nil && !refLike(tv.Type) {
		return nil
	}
	return g.retGlobals
}

// externalCall classifies a call into another package: msg.Endpoint calls
// are the sanctioned message channel; listed pure accessors propagate taint;
// everything else may mutate its rooted reference arguments.
func (e *escEnv) externalCall(call *ast.CallExpr, fun ast.Expr, f *types.Func) map[escTaint]bool {
	var recvTaint map[escTaint]bool
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		recvTaint = e.expr(sel.X)
	}

	leaf := pathLeaf(objPkgPath(f))
	sig, _ := f.Type().(*types.Signature)
	isMsgEndpoint := false
	key := leaf + "." + f.Name()
	if sig != nil && sig.Recv() != nil {
		if n := recvNamed(sig.Recv().Type()); n != nil {
			key = leaf + "." + n.Obj().Name() + "." + f.Name()
			isMsgEndpoint = leaf == "msg" && n.Obj().Name() == "Endpoint"
		}
	}

	argTaints := make([]map[escTaint]bool, len(call.Args))
	for i, arg := range call.Args {
		argTaints[i] = e.expr(arg)
	}

	switch {
	case isMsgEndpoint:
		for el := range recvTaint {
			if el.root != nil {
				e.recordAccess(el.root, el.root, kMessage, el.self, call.Pos())
			}
		}
		for i, t := range argTaints {
			for el := range t {
				if el.root != nil {
					e.recordAccess(el.root, el.root, kMessage, el.self, call.Args[i].Pos())
				}
			}
		}
		return nil
	case escPureMethods[key] || escPureFuncs[key]:
		out := map[escTaint]bool{}
		out = union(out, recvTaint)
		for _, t := range argTaints {
			out = union(out, t)
		}
		if tv := e.a.info.Types[call]; tv.Type != nil && !refLike(tv.Type) {
			return nil
		}
		return out
	default:
		for el := range recvTaint {
			if el.root != nil {
				e.recordAccess(el.root, el.root, kMayMutate, el.self, call.Pos())
			}
		}
		for i, t := range argTaints {
			if !refLikeExpr(e.a.info, call.Args[i]) {
				continue
			}
			for el := range t {
				if el.root != nil {
					e.recordAccess(el.root, el.root, kMayMutate, el.self, call.Args[i].Pos())
				}
			}
		}
		out := map[escTaint]bool{}
		out = union(out, recvTaint)
		for _, t := range argTaints {
			out = union(out, t)
		}
		if tv := e.a.info.Types[call]; tv.Type != nil && !refLike(tv.Type) {
			return nil
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Report construction

// escRow accumulates all accesses to one (root, field) pair.
type escRow struct {
	worst       accessKind
	ctxs        map[string]bool
	entries     map[string]bool
	repAccess   *escAccess
	directWrite bool // a non-self mutation is reachable in the direct context
	hasNonself  bool
}

func (a *escAnalysis) report(path string) ProtocolReport {
	rep := ProtocolReport{Package: path, Type: a.proto.Obj().Name()}

	type rowKey struct{ root, field string }
	rows := map[rowKey]*escRow{}
	var order []rowKey

	for i := range a.accesses {
		acc := &a.accesses[i]
		// Effective contexts: the non-quiescent contexts of the containing
		// function. Setup/Counters-only accesses never count.
		hasDirect := acc.fn.ctxs[ctxDirect]
		hasHandler := acc.fn.ctxs[ctxHandler]
		if !hasDirect && !hasHandler {
			continue
		}
		k := rowKey{acc.root.Name(), a.fieldName(acc.root, acc.field)}
		r := rows[k]
		if r == nil {
			r = &escRow{ctxs: map[string]bool{}, entries: map[string]bool{}}
			rows[k] = r
			order = append(order, k)
		}
		if hasDirect {
			r.ctxs[ctxDirect.String()] = true
			for n := range acc.fn.entries[ctxDirect] {
				r.entries[n] = true
			}
		}
		if hasHandler {
			r.ctxs[ctxHandler.String()] = true
			for n := range acc.fn.entries[ctxHandler] {
				r.entries[n] = true
			}
		}
		if !acc.self {
			r.hasNonself = true
			if r.repAccess == nil || acc.kind > r.worst ||
				(acc.kind == r.worst && acc.pos < r.repAccess.pos) {
				r.worst = acc.kind
				r.repAccess = acc
			}
			if (acc.kind == kWrite || acc.kind == kMayMutate) && hasDirect {
				r.directWrite = true
			}
		}
	}

	sort.Slice(order, func(i, j int) bool {
		if order[i].root != order[j].root {
			return order[i].root < order[j].root
		}
		return order[i].field < order[j].field
	})

	confined := map[string]bool{}
	for _, k := range order {
		r := rows[k]
		switch {
		case !r.hasNonself || r.worst <= kMessage:
			// Self-slot access only, or non-self reads/message payloads of
			// state that is never mutated cross-processor.
			confined[k.root] = true
		case r.directWrite:
			rep.Escaping = append(rep.Escaping, a.fieldUse(k.root, k.field, r))
		default:
			rep.MessageMediated = append(rep.MessageMediated, a.fieldUse(k.root, k.field, r))
		}
	}
	// A root with any escaping/mediated row is not confined.
	for _, fu := range rep.Escaping {
		delete(confined, fu.Root)
	}
	for _, fu := range rep.MessageMediated {
		delete(confined, fu.Root)
	}
	names := make([]string, 0, len(confined))
	for name := range confined {
		names = append(names, name)
	}
	sort.Strings(names)
	rep.NodeConfined = names
	return rep
}

// fieldName renders an accessed field as Type.name.
func (a *escAnalysis) fieldName(root, fld *types.Var) string {
	owner := a.proto.Obj().Name()
	if fld != root {
		if st := fieldOwner(a.pkg, fld); st != "" {
			owner = st
		}
	}
	return owner + "." + fld.Name()
}

// fieldOwner finds the named type in pkg whose struct declares fld.
func fieldOwner(pkg *types.Package, fld *types.Var) string {
	for _, name := range pkg.Scope().Names() {
		tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return tn.Name()
			}
		}
	}
	return ""
}

// fieldUse renders one report row, including a representative entry →
// accessing-function call path.
func (a *escAnalysis) fieldUse(root, field string, r *escRow) FieldUse {
	fu := FieldUse{Root: root, Field: field, Kind: r.worst.String()}
	var ctxs []string
	for c := range r.ctxs {
		ctxs = append(ctxs, c)
	}
	sort.Strings(ctxs)
	fu.Contexts = ctxs
	var entries []string
	for n := range r.entries {
		entries = append(entries, n)
	}
	sort.Strings(entries)
	fu.Entries = entries
	if acc := r.repAccess; acc != nil {
		fu.Pos = escPos(a.fset, acc.pos)
		ctx := ctxDirect
		if !acc.fn.ctxs[ctxDirect] {
			ctx = ctxHandler
		}
		var path []string
		for f := acc.fn; f != nil && len(path) < 16; f = f.parent[ctx] {
			path = append([]string{f.obj.Name()}, path...)
		}
		fu.Path = path
	}
	return fu
}

func union(a, b map[escTaint]bool) map[escTaint]bool {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = map[escTaint]bool{}
	}
	for k := range b {
		a[k] = true
	}
	return a
}

// refLike reports whether values of type t can alias other state (contain a
// pointer, slice, map, channel, interface, or function).
func refLike(t types.Type) bool {
	return refLikeRec(t, map[types.Type]bool{})
}

func refLikeRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return refLikeRec(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeRec(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refLikeRec(u.At(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

func refLikeExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return true
	}
	return refLike(tv.Type)
}

// escPos renders a position as base-file:line for reports.
func escPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
