package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryIsClean is the regression gate behind the whole suite: the
// real repository must produce zero diagnostics under every analyzer. A
// failure here means a change reintroduced a nondeterminism source, a
// map-order leak, an uncharged frame access, or an unannotated touch of
// domain-confined scheduling state.
func TestRepositoryIsClean(t *testing.T) {
	l, err := NewModuleLoader(".")
	if err != nil {
		t.Fatalf("locating module: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	byPath := map[string]bool{}
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	// Guard against the walker silently matching nothing: the measured core
	// must actually be on the list.
	for _, want := range []string{"repro/internal/sim", "repro/internal/core", "repro/internal/vm"} {
		if !byPath[want] {
			t.Fatalf("package %s not loaded; got %d packages", want, len(pkgs))
		}
	}
	diags, err := Run(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestDomainAnnotationsPresent pins the annotation surface the analyzers
// enforce against: if the markers in internal/sim were deleted, DomainConfined
// and the env-switch exemption would silently pass on everything.
func TestDomainAnnotationsPresent(t *testing.T) {
	domain, err := os.ReadFile(filepath.Join("..", "sim", "domain.go"))
	if err != nil {
		t.Fatalf("reading internal/sim/domain.go: %v", err)
	}
	if n := strings.Count(string(domain), ConfinedMarker); n < 5 {
		t.Errorf("internal/sim/domain.go has %d %s markers, want at least 5", n, ConfinedMarker)
	}
	if !strings.Contains(string(domain), DispatchMarker) {
		t.Errorf("internal/sim/domain.go has no %s markers", DispatchMarker)
	}
	sim, err := os.ReadFile(filepath.Join("..", "sim", "sim.go"))
	if err != nil {
		t.Fatalf("reading internal/sim/sim.go: %v", err)
	}
	if n := strings.Count(string(sim), EnvSwitchMarker); n < 2 {
		t.Errorf("internal/sim/sim.go has %d %s markers, want at least 2 (SIM_NO_FASTPATH, SIM_PARALLEL)", n, EnvSwitchMarker)
	}
}
