package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package ready for analysis. Test
// files are not included: dsmvet's invariants govern code that can run on a
// measured path, and every analyzer exempts tests anyway.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader resolves import-path patterns to type-checked Packages. Two
// layouts are supported:
//
//   - module layout (NewModuleLoader): import paths under the go.mod module
//     path map to directories under the module root — how cmd/dsmvet and the
//     repo-wide regression test load the real repository;
//   - src layout (NewSrcLoader): an import path maps directly to a
//     subdirectory of a fixture root, mirroring analysistest's
//     testdata/src/<importpath> convention.
//
// Standard-library imports are satisfied by the compiler-independent
// "source" importer, so loading needs no pre-built export data and no
// network.
type Loader struct {
	Fset *token.FileSet

	root       string // module root or fixture src root
	modulePath string // "" for src layout

	pkgs     map[string]*Package
	checking map[string]bool
}

// NewModuleLoader creates a loader for the Go module containing dir,
// discovered by walking up to the nearest go.mod.
func NewModuleLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		root:       root,
		modulePath: modPath,
		pkgs:       map[string]*Package{},
		checking:   map[string]bool{},
	}, nil
}

// NewSrcLoader creates a loader rooted at an analysistest-style source tree:
// import path p lives in srcRoot/p.
func NewSrcLoader(srcRoot string) *Loader {
	return &Loader{
		Fset:     token.NewFileSet(),
		root:     srcRoot,
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
}

// Load resolves each pattern ("./...", a relative directory, or an import
// path) and returns the matched packages in sorted import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	paths := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkDirs(l.root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				paths[l.pathFor(d)] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dirs, err := l.walkDirs(l.dirFor(l.cleanPattern(base)))
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				paths[l.pathFor(d)] = true
			}
		default:
			paths[l.cleanPattern(pat)] = true
		}
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	pkgs := make([]*Package, 0, len(sorted))
	for _, p := range sorted {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// cleanPattern turns a pattern into an import path.
func (l *Loader) cleanPattern(pat string) string {
	if strings.HasPrefix(pat, "./") || pat == "." {
		rel := strings.TrimPrefix(strings.TrimPrefix(pat, "."), "/")
		return l.pathFor(filepath.Join(l.root, filepath.FromSlash(rel)))
	}
	return pat
}

// pathFor maps a directory under the root to its import path.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	if l.modulePath == "" {
		return rel
	}
	if rel == "" {
		return l.modulePath
	}
	return l.modulePath + "/" + rel
}

// dirFor maps an internal import path to its directory, reporting whether
// the path belongs to this loader's tree.
func (l *Loader) dirFor(path string) string {
	if l.modulePath == "" {
		return filepath.Join(l.root, filepath.FromSlash(path))
	}
	if path == l.modulePath {
		return l.root
	}
	rel, ok := strings.CutPrefix(path, l.modulePath+"/")
	if !ok {
		return ""
	}
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// internal reports whether the import path is resolved by this loader (as
// opposed to the standard library).
func (l *Loader) internal(path string) bool {
	if l.modulePath != "" {
		return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
	}
	// Src layout: internal iff the fixture directory exists.
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// walkDirs returns every directory under base holding at least one buildable
// non-test Go file, skipping testdata, vendor, hidden, and underscore dirs.
func (l *Loader) walkDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := buildableGoFiles(path); err == nil {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// buildableGoFiles lists the non-test Go files of dir that build on the host
// platform, in sorted order.
func buildableGoFiles(dir string) ([]string, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := append([]string(nil), bp.GoFiles...)
	sort.Strings(files)
	return files, nil
}

// stdImporter is the shared source-based importer for standard-library
// packages. It type-checks GOROOT sources on demand and caches results for
// the life of the process; its FileSet is private because no diagnostic ever
// points into the standard library.
var (
	stdImporterOnce sync.Once
	stdImporterInst types.ImporterFrom
)

func stdImporter() types.ImporterFrom {
	stdImporterOnce.Do(func() {
		stdImporterInst = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	})
	return stdImporterInst
}

// loaderImporter satisfies types.ImporterFrom for one Loader, routing
// internal paths back into the loader and everything else to the shared
// standard-library importer.
type loaderImporter struct{ l *Loader }

func (i loaderImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, i.l.root, 0)
}

func (i loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if i.l.internal(path) {
		pkg, err := i.l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdImporter().ImportFrom(path, dir, mode)
}

// load parses and type-checks one package (memoized).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: %q is not under this loader's root", path)
	}
	names, err := buildableGoFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: loaderImporter{l}}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
