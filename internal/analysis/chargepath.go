package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ChargePath checks that cross-processor byte movement in measured packages
// flows through the layers that charge latency and occupancy:
//
//   - Raw delivery: sim.Proc.Deliver and sim.Proc.NewMsg bypass the
//     msg.Endpoint send path (per-message cost, Transfer occupancy,
//     notification latency) and the interconnect accounting. Outside the sim
//     and interconnect layers themselves — and outside the msg package,
//     which is the sanctioned wrapper — a protocol calling them moves data
//     for free, silently skewing every virtual-time result.
//   - Free bytes: a call to the byte-moving entry points (msg.Endpoint
//     Send/Call/CallStart/Reply/ReplyClass, interconnect
//     Transfer/RemoteRead) whose `bytes` argument is a compile-time constant
//     <= 0 charges no occupancy at all; a literal 0 is almost always a
//     placeholder that was never filled in with the wire size.
var ChargePath = &Analyzer{
	Name: "chargepath",
	Doc: "require cross-node byte movement in measured packages to flow " +
		"through the charging layers (no raw Deliver/NewMsg, no constant " +
		"non-positive bytes arguments)",
	Run: runChargePath,
}

// chargeByteMethods maps receiver type → methods whose `bytes` parameter
// must not be a constant <= 0.
var chargeByteMethods = map[string]map[string]bool{
	"Endpoint": {
		"Send": true, "Call": true, "CallStart": true,
		"Reply": true, "ReplyClass": true,
	},
	"Interconnect": {
		"Transfer": true, "RemoteRead": true,
	},
}

func runChargePath(pass *Pass) error {
	leaf := pathLeaf(pass.Path)
	measured := MeasuredPackage(pass.Path)
	rawDelivery := measured && leaf != "sim" && leaf != "interconnect"
	freeBytes := measured || leaf == "msg"
	if !rawDelivery && !freeBytes {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := funcObj(pass.Info, call)
			if f == nil {
				return true
			}
			if rawDelivery && isSimProcMethod(f) && (f.Name() == "Deliver" || f.Name() == "NewMsg") {
				pass.Reportf(call.Pos(),
					"raw sim.Proc.%s bypasses the charging path: route the message through msg.Endpoint (or interconnect.Interrupt) so per-message cost and occupancy are charged",
					f.Name())
			}
			if freeBytes {
				checkConstBytes(pass, call, f)
			}
			return true
		})
	}
	return nil
}

// isSimProcMethod reports whether f is a method on the Proc type of a
// package with path leaf "sim".
func isSimProcMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := recvNamed(sig.Recv().Type())
	if n == nil || n.Obj().Name() != "Proc" {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pathLeaf(pkg.Path()) == "sim"
}

// checkConstBytes flags a constant non-positive argument in the `bytes`
// parameter slot of the byte-moving entry points.
func checkConstBytes(pass *Pass, call *ast.CallExpr, f *types.Func) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	n := recvNamed(sig.Recv().Type())
	if n == nil {
		return
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return
	}
	leaf := pathLeaf(pkg.Path())
	if leaf != "msg" && leaf != "interconnect" {
		return
	}
	methods := chargeByteMethods[n.Obj().Name()]
	if methods == nil || !methods[f.Name()] {
		return
	}
	idx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == "bytes" {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	arg := call.Args[idx]
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if v, ok := constant.Int64Val(tv.Value); ok && v <= 0 {
		pass.Reportf(arg.Pos(),
			"constant %d bytes argument to %s.%s charges no occupancy: pass the actual wire size (header + payload)",
			v, n.Obj().Name(), f.Name())
	}
}
