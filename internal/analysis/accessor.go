package analysis

import (
	"go/ast"
	"go/types"
)

// accessorLayers are the package-path leaves allowed to touch vm.Space page
// frames directly: the VM substrate itself and the layers that implement
// the charged accessor API on top of it (core's accessors, the two
// protocols' page-transfer and diff machinery). Everywhere else — the
// applications, examples, tools — every shared access must route through
// core.Proc accessors so fault, mprotect, cache, and traffic costs are
// charged (DESIGN.md §1).
var accessorLayers = map[string]bool{
	"vm":         true,
	"core":       true,
	"cashmere":   true,
	"treadmarks": true,
}

// Accessor flags direct element access to vm.Space-backed page frames
// (indexing, slicing, or copy/append consumption of Frame/EnsureFrame
// results) outside the accessor layers.
var Accessor = &Analyzer{
	Name: "accessor",
	Doc: "forbid direct vm.Space frame access outside the layers that " +
		"charge fault and mprotect costs",
	Run: runAccessor,
}

func runAccessor(pass *Pass) error {
	if accessorLayers[pathLeaf(pass.Path)] {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFrameAccess(pass, fn.Body)
		}
	}
	return nil
}

// checkFrameAccess flags frame-derived element accesses within one function
// body. Taint is tracked one assignment deep: a variable assigned from a
// Frame/EnsureFrame call is itself a frame.
func checkFrameAccess(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && isFrameCall(pass, rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							tainted[obj] = true
						} else if obj := pass.Info.Uses[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if isFrameExpr(pass, n.X, tainted) {
				pass.Reportf(n.Pos(), "direct index of a vm.Space page frame outside the accessor layer: route the access through core.Proc accessors so fault and mprotect costs are charged")
			}
		case *ast.SliceExpr:
			if isFrameExpr(pass, n.X, tainted) {
				pass.Reportf(n.Pos(), "direct slice of a vm.Space page frame outside the accessor layer: route the access through core.Proc accessors so fault and mprotect costs are charged")
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj != types.Universe.Lookup("copy") && obj != types.Universe.Lookup("append") {
				return true
			}
			for _, arg := range n.Args {
				// Bare frame values only: indexed/sliced arguments are
				// already reported by the cases above.
				switch ast.Unparen(arg).(type) {
				case *ast.IndexExpr, *ast.SliceExpr:
					continue
				}
				if isFrameExpr(pass, arg, tainted) {
					pass.Reportf(arg.Pos(), "vm.Space page frame passed to %s outside the accessor layer: bulk data movement must route through the charged accessor API", id.Name)
				}
			}
		}
		return true
	})
}

// isFrameExpr reports whether the expression denotes a page frame: a direct
// Frame/EnsureFrame call or a variable assigned from one.
func isFrameExpr(pass *Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	expr = ast.Unparen(expr)
	if isFrameCall(pass, expr) {
		return true
	}
	id, ok := expr.(*ast.Ident)
	return ok && tainted[pass.Info.Uses[id]]
}

// isFrameCall reports whether the expression is a call of (*vm.Space).Frame
// or (*vm.Space).EnsureFrame (matched by method name, receiver type Space,
// and receiver package name vm).
func isFrameCall(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || (f.Name() != "Frame" && f.Name() != "EnsureFrame") {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Space" && obj.Pkg() != nil && obj.Pkg().Name() == "vm"
}
