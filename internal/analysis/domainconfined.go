package analysis

import (
	"go/ast"
	"go/types"
)

// Annotation markers for the DomainConfined analyzer. The convention
// (documented in DESIGN.md "Machine-checked invariants"):
//
//   - a struct field whose doc or line comment contains
//     "dsmvet:domain-confined" is scheduling state owned by one domain's
//     baton holder — it must never be touched by a goroutine that does not
//     provably hold that domain's baton;
//   - a function or method whose doc comment contains "dsmvet:dispatch" is
//     a declared dispatch path: it runs only while holding the owning
//     domain's baton (or while the domain is provably quiescent, e.g. the
//     coordinator between windows, or Run before workers start).
//
// The analyzer mechanizes the confinement contract of internal/sim's domain
// struct (DESIGN.md §3b): every syntactic access to a confined field must
// occur inside an annotated dispatch function. The allowlist is
// package-level — the set of annotated declarations in the package that
// declares the field — so adding a new access path forces the author to
// annotate it, and the annotation is the reviewable claim that the new path
// holds the baton.
const (
	ConfinedMarker = "dsmvet:domain-confined"
	DispatchMarker = "dsmvet:dispatch"
)

// DomainConfined enforces that fields annotated dsmvet:domain-confined are
// accessed only from functions annotated dsmvet:dispatch.
var DomainConfined = &Analyzer{
	Name: "domainconfined",
	Doc: "restrict dsmvet:domain-confined fields to dsmvet:dispatch " +
		"functions (the owning domain's scheduling paths)",
	Run: runDomainConfined,
}

func runDomainConfined(pass *Pass) error {
	confined := map[types.Object]bool{}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !commentHasMarker(field.Doc, ConfinedMarker) && !commentHasMarker(field.Comment, ConfinedMarker) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						confined[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(confined) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		inspectWithFunc(file, func(n ast.Node, fn *ast.FuncDecl) {
			id, ok := n.(*ast.Ident)
			if !ok || !confined[pass.Info.Uses[id]] {
				return
			}
			if fn != nil && commentHasMarker(fn.Doc, DispatchMarker) {
				return
			}
			where := "package-scope code"
			if fn != nil {
				where = fn.Name.Name
			}
			pass.Reportf(id.Pos(), "domain-confined field %q accessed from %s, which is not an annotated dispatch path: only functions marked %s may touch per-domain scheduling state", id.Name, where, DispatchMarker)
		})
	}
	return nil
}
