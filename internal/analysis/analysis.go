// Package analysis implements dsmvet, a suite of static analyzers that
// machine-check the determinism and virtual-time invariants the simulator's
// correctness argument rests on (DESIGN.md §3/§3a/§3b and the
// "Machine-checked invariants" section).
//
// The suite mirrors the golang.org/x/tools/go/analysis API shape — an
// Analyzer holding a Run function over a per-package Pass — but is
// self-contained: the module deliberately has no external dependencies, so
// the driver (cmd/dsmvet), the package loader (load.go), and the fixture
// harness (atest_test.go) are built here on go/parser, go/types, and
// go/importer alone.
//
// Analyzers:
//
//   - nondeterminism: no wall clocks, unseeded randomness, undeclared
//     environment reads, or runtime-randomized selects in measured packages.
//   - maporder: no map iteration whose body leaks host iteration order into
//     slices, channels, struct fields, or formatted output.
//   - accessor: no direct access to vm.Space page frames outside the layers
//     that charge fault and mprotect costs.
//   - domainconfined: fields annotated "dsmvet:domain-confined" are touched
//     only by functions annotated "dsmvet:dispatch" (the scheduling paths
//     that provably hold the owning domain's baton).
//   - domainescape: a flow-aware, cross-function prover classifying every
//     protocol field access reachable from the core.Proc entry points as
//     node-confined, message-mediated, or cluster-global escaping; a
//     protocol declaring DomainSafe()==true with a non-empty escape
//     inventory is a diagnostic, and dsmvet -json emits the per-protocol
//     domain-safety report.
//   - capsgate: every RemoteRead/WriteThrough call site must be dominated
//     by a check of the corresponding interconnect Caps field (or carry a
//     "dsmvet:caps-checked" marker pointing at the caller that checks).
//   - chargepath: no raw sim.Proc.Deliver/NewMsg outside the charging
//     layers, and no constant non-positive bytes argument to the
//     byte-moving entry points.
//
// Test files (*_test.go) are exempt from every analyzer: they never run on a
// measured path, and the loader does not even parse them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // package import path
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, located in resolved file:line:col form.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full dsmvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Nondeterminism, MapOrder, Accessor, DomainConfined, DomainEscape, CapsGate, ChargePath}
}

// Run applies each analyzer to each package and returns all findings sorted
// by position (file, line, column, analyzer). The diagnostics of a broken
// invariant are the product; an analyzer's own error (a nil Info, an
// unresolvable object) aborts the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// measuredLeaves are the package-path leaf elements of the measured
// packages: code whose execution order or charged costs feed virtual-time
// results. internal/apps and its subpackages are matched by the "apps" path
// element instead.
var measuredLeaves = map[string]bool{
	"sim":          true,
	"core":         true,
	"cashmere":     true,
	"treadmarks":   true,
	"interconnect": true,
	"vm":           true,
}

// MeasuredPackage reports whether the import path names one of the measured
// packages the nondeterminism analyzer patrols: internal/{sim, core,
// cashmere, treadmarks, interconnect, vm} and everything under
// internal/apps.
func MeasuredPackage(path string) bool {
	elems := strings.Split(path, "/")
	for _, e := range elems {
		if e == "apps" {
			return true
		}
	}
	return measuredLeaves[elems[len(elems)-1]]
}

// pathLeaf returns the last element of an import path.
func pathLeaf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// commentHasMarker reports whether any line of the comment group contains
// the given dsmvet annotation marker.
func commentHasMarker(g *ast.CommentGroup, marker string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// funcObj resolves a call expression to the *types.Func it invokes (package
// functions and methods), or nil for builtins, conversions, and calls of
// function-typed values.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// objPkgPath returns the import path of the package an object belongs to,
// or "" for builtins and universe-scope objects.
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// inspectWithFunc walks every node of the file, passing along the enclosing
// top-level function declaration (nil for package-scope code), so analyzers
// can consult the enclosing function's doc comment for dsmvet annotations.
// Go has no nested function declarations — function literals inside a
// declaration report that declaration — so a per-declaration walk suffices.
func inspectWithFunc(file *ast.File, visit func(n ast.Node, fn *ast.FuncDecl)) {
	for _, decl := range file.Decls {
		fn, _ := decl.(*ast.FuncDecl)
		ast.Inspect(decl, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			visit(n, fn)
			return true
		})
	}
}
