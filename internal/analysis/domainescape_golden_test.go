package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenProtocols maps the protocol packages whose escape inventories the
// repository pins to their golden report files. The reports are the refactor
// worklist for the top ROADMAP item (make Cashmere/TreadMarks domain-safe);
// regenerate with:
//
//	DSMVET_UPDATE_REPORTS=1 go test ./internal/analysis -run TestDomainEscapeGolden
var goldenProtocols = []struct {
	pattern string
	golden  string
}{
	{"repro/internal/core", "core.golden.json"},
	{"repro/internal/cashmere", "cashmere.golden.json"},
	{"repro/internal/treadmarks", "treadmarks.golden.json"},
}

// TestDomainEscapeGolden pins the per-protocol domain-safety reports for the
// real repository: cashmere/treadmarks must have a non-empty escape
// inventory (they declare DomainSafe()==false for exactly these reasons),
// and the baseline NullProtocol must be fully node-confined.
func TestDomainEscapeGolden(t *testing.T) {
	l, err := NewModuleLoader(".")
	if err != nil {
		t.Fatalf("locating module: %v", err)
	}
	for _, g := range goldenProtocols {
		g := g
		t.Run(filepath.Base(g.pattern), func(t *testing.T) {
			pkgs, err := l.Load(g.pattern)
			if err != nil {
				t.Fatalf("loading %s: %v", g.pattern, err)
			}
			reports, err := DomainEscapeReports(pkgs)
			if err != nil {
				t.Fatalf("building reports: %v", err)
			}
			if len(reports) == 0 {
				t.Fatalf("no protocol (DomainSafe() bool method) found in %s", g.pattern)
			}
			// Positions churn with unrelated edits; the golden pins the
			// structural inventory only.
			for i := range reports {
				stripPositions(&reports[i])
			}
			got, err := json.MarshalIndent(reports, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "reports", g.golden)
			if os.Getenv("DSMVET_UPDATE_REPORTS") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (regenerate with DSMVET_UPDATE_REPORTS=1): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("domain-safety report for %s changed.\n--- got ---\n%s\n--- want (%s) ---\n%s\nIf the change is intended, regenerate with DSMVET_UPDATE_REPORTS=1.",
					g.pattern, got, path, want)
			}

			checkInventoryInvariants(t, g.pattern, reports)
		})
	}
}

func stripPositions(r *ProtocolReport) {
	for i := range r.Escaping {
		r.Escaping[i].Pos = ""
	}
	for i := range r.MessageMediated {
		r.MessageMediated[i].Pos = ""
	}
}

// checkInventoryInvariants asserts the acceptance criteria directly, so a
// blanket golden regeneration cannot silently accept a broken analyzer.
func checkInventoryInvariants(t *testing.T, pattern string, reports []ProtocolReport) {
	t.Helper()
	escRoots := map[string]bool{}
	for _, r := range reports {
		for _, fu := range r.Escaping {
			escRoots[fu.Root] = true
		}
		if r.DeclaredSafe == nil {
			t.Errorf("%s: protocol %s has a non-literal DomainSafe body", pattern, r.Type)
		}
	}
	switch pattern {
	case "repro/internal/core":
		for _, r := range reports {
			if len(r.Escaping) != 0 || len(r.MessageMediated) != 0 {
				t.Errorf("baseline protocol %s must be fully node-confined, got %d escaping / %d mediated",
					r.Type, len(r.Escaping), len(r.MessageMediated))
			}
			if r.DeclaredSafe != nil && !*r.DeclaredSafe {
				t.Errorf("baseline protocol %s declares DomainSafe()==false", r.Type)
			}
		}
	case "repro/internal/cashmere":
		if len(escRoots) == 0 {
			t.Errorf("cashmere escape inventory is empty; its DomainSafe comment documents shared directory/lock/barrier state")
		}
		// The prose blockers in Protocol.DomainSafe's comment, machine-checked.
		for _, root := range []string{"dir", "locks", "barrier", "wn"} {
			if !escRoots[root] {
				t.Errorf("cashmere escape inventory lost root %q documented in the DomainSafe comment", root)
			}
		}
	case "repro/internal/treadmarks":
		if len(escRoots) == 0 {
			t.Errorf("treadmarks escape inventory is empty; its DomainSafe comment documents shared lock-manager/barrier state")
		}
		for _, root := range []string{"bars"} {
			if !escRoots[root] {
				t.Errorf("treadmarks escape inventory lost root %q documented in the DomainSafe comment", root)
			}
		}
	}
	for _, r := range reports {
		if r.DeclaredSafe != nil && *r.DeclaredSafe && len(r.Escaping) > 0 {
			t.Errorf("%s: protocol %s declares DomainSafe()==true with a non-empty escape inventory (the analyzer should have reported this)",
				pattern, r.Type)
		}
	}
}
