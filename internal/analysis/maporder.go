package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags map iterations whose bodies can leak the host's randomized
// map iteration order into something order-sensitive: appends to a slice
// that outlives the loop, channel sends, writes to fields of structures
// declared outside the loop, and fmt-family output. Order-independent
// bodies — writes keyed by the range variables (map-to-map copies, keyed
// accumulation) and commutative integer updates (+=, counters) — are
// allowed, as is the standard collect-then-sort idiom: an append is exempt
// when a later statement in the same block passes the collecting slice to a
// sort/slices sorting function.
//
// In this repository the stakes are bit-determinism: event order inside the
// simulator and byte-identical rendered/serialized results outside it
// (DESIGN.md §3, §6a). Test files are exempt.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration order from leaking into slices, channels, " +
		"struct fields, or formatted output",
	Run: runMapOrder,
}

var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// commutativeAssignOps are the compound assignments that are
// order-independent on integer operands.
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true, token.OR_ASSIGN: true, token.XOR_ASSIGN: true,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := unlabel(stmt).(*ast.RangeStmt)
				if ok && isMapRange(pass, rs) {
					checkMapRange(pass, rs, list[i+1:])
				}
			}
			return true
		})
	}
	return nil
}

func unlabel(stmt ast.Stmt) ast.Stmt {
	for {
		ls, ok := stmt.(*ast.LabeledStmt)
		if !ok {
			return stmt
		}
		stmt = ls.Stmt
	}
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body. rest holds the statements
// following the loop in its enclosing block, consulted for the
// collect-then-sort exemption.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	keyVars := rangeVars(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs && isMapRange(pass, n) {
				// A nested map range is analyzed on its own; attributing its
				// body to the outer loop would double-report.
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receivers observe values in the host's randomized map order")
		case *ast.CallExpr:
			checkMapRangeCall(pass, n, rs, keyVars, rest)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkMapRangeWrite(pass, n, lhs, rs, keyVars)
			}
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr, rs *ast.RangeStmt, keyVars map[types.Object]bool, rest []ast.Stmt) {
	if f := funcObj(pass.Info, call); f != nil {
		if objPkgPath(f) == "fmt" && fmtPrinters[f.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration: output lines appear in the host's randomized map order; collect and sort first", f.Name())
		}
		return
	}
	// Builtin append: flag when the destination outlives the loop and is not
	// keyed by a range variable, unless the collection is sorted afterwards.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
		pass.Info.Uses[id] != types.Universe.Lookup("append") || len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if ix, ok := dst.(*ast.IndexExpr); ok && mentionsAny(pass, ix.Index, keyVars) {
		return // per-key bucket (m2[k] = append(m2[k], v)): order-independent
	}
	root := rootIdentObj(pass, dst)
	if root == nil || declaredWithin(root, rs.Body) {
		return // loop-local collection dies with the iteration
	}
	if keyVars[root] {
		return // appending to a structure owned by the map value itself
	}
	if sortedAfter(pass, rest, root) {
		return
	}
	pass.Reportf(call.Pos(), "append to %q inside map iteration collects values in the host's randomized map order; sort it immediately after the loop or iterate sorted keys", root.Name())
}

func checkMapRangeWrite(pass *Pass, assign *ast.AssignStmt, lhs ast.Expr, rs *ast.RangeStmt, keyVars map[types.Object]bool) {
	lhs = ast.Unparen(lhs)
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		if mentionsAny(pass, lhs.Index, keyVars) {
			return // keyed by the range variable: order-independent
		}
		root := rootIdentObj(pass, lhs.X)
		if root == nil || declaredWithin(root, rs.Body) || keyVars[root] {
			return
		}
		pass.Reportf(lhs.Pos(), "write to %q at a loop-carried index inside map iteration: element order follows the host's randomized map order", root.Name())
	case *ast.SelectorExpr:
		root := rootIdentObj(pass, lhs)
		if root == nil || declaredWithin(root, rs.Body) || keyVars[root] {
			return
		}
		if commutativeAssignOps[assign.Tok] && isIntegerType(pass.Info.TypeOf(lhs)) {
			return // commutative integer accumulation: order-independent
		}
		pass.Reportf(lhs.Pos(), "write to field %s of %q inside map iteration: the surviving value depends on the host's randomized map order", lhs.Sel.Name, root.Name())
	}
}

// rangeVars returns the objects bound to the range's key and value.
func rangeVars(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	return vars
}

// mentionsAny reports whether expr references any of the given objects.
func mentionsAny(pass *Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// rootIdentObj walks selector/index/star/paren chains down to the base
// identifier and returns its object (nil if the base is not an identifier,
// e.g. a call result).
func rootIdentObj(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[e]; obj != nil {
				return obj
			}
			return pass.Info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object is declared inside the node.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj.Pos() != token.NoPos && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// sortedAfter reports whether any later statement in the loop's block sorts
// a collection rooted at obj (sort.* or slices.Sort*), the deterministic
// collect-then-sort idiom.
func sortedAfter(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	objs := map[types.Object]bool{obj: true}
	for _, stmt := range rest {
		es, ok := unlabel(stmt).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		f := funcObj(pass.Info, call)
		if f == nil {
			continue
		}
		names := sortFuncs[objPkgPath(f)]
		if names == nil || !names[f.Name()] {
			continue
		}
		for _, arg := range call.Args {
			if mentionsAny(pass, arg, objs) {
				return true
			}
		}
	}
	return false
}
