package analysis

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixtureTest loads fixture packages from testdata/src and checks one
// analyzer's diagnostics against the "// want `regexp`" comments in the
// fixture sources, analysistest-style: every want must be matched by a
// diagnostic on its line, and every diagnostic must be wanted.
func runFixtureTest(t *testing.T, a *Analyzer, patterns ...string) {
	t.Helper()
	l := NewSrcLoader(filepath.Join("testdata", "src"))
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					res, ok := parseWant(t, c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], res...)
				}
			}
		}
	}

	got := map[key][]Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	for k, ds := range got {
		ws := wants[k]
		if len(ws) != len(ds) {
			t.Errorf("%s:%d: got %d diagnostics, want %d:\n%s",
				k.file, k.line, len(ds), len(ws), diagLines(ds))
			continue
		}
		for i, d := range ds {
			if !ws[i].MatchString(d.Message) {
				t.Errorf("%s:%d: diagnostic %q does not match want %q",
					k.file, k.line, d.Message, ws[i])
			}
		}
	}
	for k, ws := range wants {
		if len(got[k]) == 0 {
			t.Errorf("%s:%d: want %d diagnostics (%v), got none", k.file, k.line, len(ws), ws)
		}
	}
}

func diagLines(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWant extracts the expectation regexps from a want comment. The second
// result is false for comments that are not want comments at all.
func parseWant(t *testing.T, comment string) ([]*regexp.Regexp, bool) {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(comment), "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, false
	}
	var res []*regexp.Regexp
	for _, q := range wantArgRe.FindAllString(rest, -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("bad want expectation %s: %v", q, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", s, err)
		}
		res = append(res, re)
	}
	if len(res) == 0 {
		t.Fatalf("want comment with no quoted expectation: %s", comment)
	}
	return res, true
}

func TestNondeterminismFixtures(t *testing.T) {
	runFixtureTest(t, Nondeterminism, "nondet/...")
}

func TestMapOrderFixtures(t *testing.T) {
	runFixtureTest(t, MapOrder, "maporder/...")
}

func TestAccessorFixtures(t *testing.T) {
	runFixtureTest(t, Accessor, "accessor/...")
}

func TestDomainConfinedFixtures(t *testing.T) {
	runFixtureTest(t, DomainConfined, "confined/...")
}

func TestDomainEscapeFixtures(t *testing.T) {
	runFixtureTest(t, DomainEscape, "descape/...")
}

func TestCapsGateFixtures(t *testing.T) {
	runFixtureTest(t, CapsGate, "capsgate/...")
}

func TestChargePathFixtures(t *testing.T) {
	runFixtureTest(t, ChargePath, "charge/...")
}
