package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// EnvSwitchMarker annotates a function as a declared environment switch
// site: it may read a single SIM_*-prefixed variable (the documented
// SIM_NO_FASTPATH / SIM_PARALLEL toggles). Everywhere else in a measured
// package, environment reads are flagged — a run's result must be a pure
// function of its RunSpec, never of ambient process state.
const EnvSwitchMarker = "dsmvet:env-switch"

// Nondeterminism flags host-level nondeterminism sources inside the
// measured packages (internal/{sim,core,cashmere,treadmarks,interconnect,vm} and
// internal/apps/...): wall-clock reads, the globally seeded math/rand
// top-level functions (only apputil.Rng's seeded rand.New(rand.NewSource)
// is allowed), crypto/rand, environment reads outside the declared SIM_*
// switch sites, and select statements with more than one communication case
// (the runtime chooses among ready cases pseudorandomly).
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall clocks, unseeded randomness, undeclared env reads, " +
		"and runtime-randomized selects in measured packages",
	Run: runNondeterminism,
}

// wallClockFuncs are time-package functions that read the host clock or
// create wall-clock-driven channels/timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
}

// globalRandOK are the math/rand package-level functions that do NOT touch
// the global, randomly-seeded source: explicit-source constructors.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runNondeterminism(pass *Pass) error {
	if !MeasuredPackage(pass.Path) {
		return nil
	}
	apputil := pathLeaf(pass.Path) == "apputil"
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2":
				// apputil.Rng(seed) is the one sanctioned constructor of
				// application randomness; everything else must take a
				// *rand.Rand (or derived values) from it.
				if !apputil {
					pass.Reportf(imp.Pos(), "import of %s in measured package %s: derive randomness from apputil.Rng(seed) so every stream is seeded and reproducible", path, pass.Path)
				}
			case "crypto/rand":
				pass.Reportf(imp.Pos(), "import of crypto/rand in measured package %s: cryptographic randomness is inherently nondeterministic", pass.Path)
			}
		}
		inspectWithFunc(file, func(n ast.Node, fn *ast.FuncDecl) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n, fn)
			case *ast.SelectStmt:
				comm := 0
				for _, clause := range n.Body.List {
					if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select with %d communication cases: the runtime picks among ready cases pseudorandomly, so event order would depend on host scheduling; poll the channels in a fixed order instead", comm)
				}
			}
		})
	}
	return nil
}

func checkNondetCall(pass *Pass, call *ast.CallExpr, fn *ast.FuncDecl) {
	f := funcObj(pass.Info, call)
	if f == nil {
		return
	}
	pkgPath := objPkgPath(f)
	switch pkgPath {
	case "time":
		if f.Type().(*types.Signature).Recv() == nil && wallClockFuncs[f.Name()] {
			pass.Reportf(call.Pos(), "wall-clock time.%s in measured package %s: virtual time (sim.Time via Proc clocks) is the only clock allowed on measured paths", f.Name(), pass.Path)
		}
	case "math/rand", "math/rand/v2":
		if f.Type().(*types.Signature).Recv() == nil && !globalRandOK[f.Name()] {
			pass.Reportf(call.Pos(), "global rand.%s uses the shared, randomly-seeded source: derive a seeded stream from apputil.Rng(seed) instead", f.Name())
		}
	case "os":
		switch f.Name() {
		case "Getenv", "LookupEnv":
			if !envSwitchAllowed(pass, call, fn) {
				pass.Reportf(call.Pos(), "os.%s outside a declared %s site: environment reads make results depend on ambient process state; route new toggles through an annotated SIM_* switch function", f.Name(), EnvSwitchMarker)
			}
		case "Environ":
			pass.Reportf(call.Pos(), "os.Environ in measured package %s: environment reads make results depend on ambient process state", pass.Path)
		}
	}
}

// envSwitchAllowed reports whether an os.Getenv/os.LookupEnv call is a
// declared switch site: the enclosing function's doc comment carries the
// dsmvet:env-switch marker and the argument is a SIM_*-prefixed string
// constant.
func envSwitchAllowed(pass *Pass, call *ast.CallExpr, fn *ast.FuncDecl) bool {
	if fn == nil || !commentHasMarker(fn.Doc, EnvSwitchMarker) {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.HasPrefix(constant.StringVal(tv.Value), "SIM_")
}

// isTestFile reports whether the file is a _test.go file. The loaders never
// parse test files, but analyzers guard anyway so a caller feeding its own
// files gets the documented exemption.
func isTestFile(pass *Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}
