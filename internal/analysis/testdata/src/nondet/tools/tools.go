// Package tools is an unmeasured fixture (leaf "tools"): the same
// constructs that are flagged in measured packages carry no diagnostics
// here.
package tools

import (
	"math/rand"
	"os"
	"time"
)

func WallClock() int64 { return time.Now().UnixNano() }

func Global() int { return rand.Intn(10) }

func Env() string { return os.Getenv("HOME") }
