// Package sim is a nondeterminism fixture standing in for a measured
// simulator package: its import-path leaf ("sim") makes MeasuredPackage
// true, so every construct below is patrolled.
package sim

import (
	"math/rand" // want `import of math/rand in measured package`
	"os"
	"time"
)

func WallClock() int64 {
	t := time.Now()   // want `wall-clock time\.Now`
	_ = time.Since(t) // want `wall-clock time\.Since`
	return t.UnixNano()
}

// Seeded is the sanctioned shape of randomness: an explicit seeded source
// (what apputil.Rng returns). Only the import is flagged outside apputil.
func Seeded() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func Global() int {
	return rand.Intn(10) // want `global rand\.Intn uses the shared, randomly-seeded source`
}

// FastPathEnabled mirrors the real declared switch site: annotated, and
// reading a SIM_*-prefixed constant.
//
// dsmvet:env-switch
func FastPathEnabled() bool { return os.Getenv("SIM_NO_FASTPATH") == "" }

// BadPrefix is annotated but reads a non-SIM_ variable, so the annotation
// does not cover it.
//
// dsmvet:env-switch
func BadPrefix() string { return os.Getenv("HOME") } // want `os\.Getenv outside a declared dsmvet:env-switch site`

func Undeclared() string { return os.Getenv("SIM_PARALLEL") } // want `os\.Getenv outside a declared dsmvet:env-switch site`

func Pick(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// TryRecv is deterministic: one communication case plus default.
func TryRecv(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}
