// Package mo exercises the maporder analyzer: map iterations that leak the
// host's randomized iteration order into order-sensitive sinks, next to the
// deterministic idioms that must stay clean.
package mo

import (
	"fmt"
	"sort"
)

type Result struct {
	Key string
	Val int
}

type tally struct {
	count int
	sum   float64
	last  int
}

// LeakResults reproduces the bug class the analyzer exists for: a results
// slice filled in map order serializes differently on every run.
func LeakResults(m map[string]int) []Result {
	var results []Result
	for k, v := range m {
		results = append(results, Result{k, v}) // want `append to "results" inside map iteration`
	}
	return results
}

// SortedResults is the collect-then-sort idiom: the later sort makes the
// collection order immaterial.
func SortedResults(m map[string]int) []Result {
	var results []Result
	for k, v := range m {
		results = append(results, Result{k, v})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Key < results[j].Key })
	return results
}

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func SendAll(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

func Print(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside map iteration`
	}
}

func FieldWrites(m map[string]int, t *tally) {
	for _, v := range m {
		t.count += 1        // commutative integer accumulation: clean
		t.sum += float64(v) // want `write to field sum of "t" inside map iteration`
		t.last = v          // want `write to field last of "t" inside map iteration`
	}
}

// KeyedCopy writes through the range key: each entry lands in its own slot,
// so iteration order is immaterial.
func KeyedCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// Buckets appends into a per-key bucket: order-independent across keys.
func Buckets(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		for _, v := range vs {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// LocalScratch collects into a slice that dies inside the iteration.
func LocalScratch(m map[string]int) int {
	total := 0
	for _, v := range m {
		tmp := []int{}
		tmp = append(tmp, v)
		total += tmp[0]
	}
	return total
}
