// Package core is an accessor-layer stand-in (path leaf "core"): identical
// frame accesses are allowed here, because this is the layer that charges
// fault and mprotect costs.
package core

import "accessor/vm"

func ReadByte(sp *vm.Space, page, off int) byte {
	return sp.EnsureFrame(page)[off]
}

func WriteByte(sp *vm.Space, page, off int, b byte) {
	fr := sp.EnsureFrame(page)
	fr[off] = b
}
