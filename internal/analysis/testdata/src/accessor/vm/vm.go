// Package vm is a stand-in for the real internal/vm: the accessor analyzer
// matches the receiver type name (Space) and package name (vm), and exempts
// this package itself.
package vm

const PageSize = 8192

type Space struct {
	frames [][]byte
}

func NewSpace(pages int) *Space { return &Space{frames: make([][]byte, pages)} }

func (s *Space) Frame(page int) []byte { return s.frames[page] }

func (s *Space) EnsureFrame(page int) []byte {
	if s.frames[page] == nil {
		s.frames[page] = make([]byte, PageSize)
	}
	return s.frames[page]
}
