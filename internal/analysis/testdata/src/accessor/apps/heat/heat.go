// Package heat violates the accessor contract: an application touching page
// frames directly, bypassing the accessor API that charges fault costs.
package heat

import "accessor/vm"

func Direct(sp *vm.Space) byte {
	return sp.Frame(0)[5] // want `direct index of a vm\.Space page frame`
}

func ViaLocal(sp *vm.Space) []byte {
	fr := sp.EnsureFrame(1)
	fr[0] = 1      // want `direct index of a vm\.Space page frame`
	return fr[2:8] // want `direct slice of a vm\.Space page frame`
}

func Bulk(sp *vm.Space, buf []byte) {
	fr := sp.Frame(2)
	copy(buf, fr) // want `page frame passed to copy`
}

// NilCheck performs no element access, so it is clean.
func NilCheck(sp *vm.Space) bool {
	return sp.Frame(3) == nil
}
