// Package clean is a protocol whose host state is provably node-confined:
// declaring DomainSafe()==true produces no diagnostic.
package clean

import "descape/core"

type Proto struct {
	// perRank is written only at the accessing processor's own rank.
	perRank []int64
	// perNode is written only at the accessing processor's own node, through
	// a local bound to p.Node().
	perNode [][]bool
	// cfg is read-only after Setup.
	cfg int
}

func (t *Proto) Setup(nprocs int) { t.perRank = make([]int64, nprocs) }

func (t *Proto) OnWriteFault(p *core.Proc, page int) {
	t.perRank[p.Rank()] += int64(t.cfg)
	node := p.Node()
	// Self at the OUTER level of a nested index: still confined.
	t.perNode[node][page] = true
}

func (t *Proto) DomainSafe() bool { return true }
