// Package msg is a stand-in for the real internal/msg (path leaf "msg"):
// Endpoint method calls are the sanctioned message-mediated channel, so a
// rooted value passed to them is a message payload, not a mutation.
package msg

type Endpoint struct{ id int }

func (ep *Endpoint) Send(target *Endpoint, kind int, data any, bytes int64) {}

func (ep *Endpoint) Call(target *Endpoint, kind int, data any, bytes int64) any { return nil }

func (ep *Endpoint) Reply(to int, data any, bytes int64) {}
