// Package proto exercises the domainescape classification: per-rank slots
// are node-confined, handler-only mutations are message-mediated, direct
// cross-slot mutations escape — and a DomainSafe()==true declaration over a
// non-empty escape inventory is the diagnostic.
package proto

import (
	"descape/core"
	"descape/msg"
)

type Proto struct {
	// dir is indexed by page and mutated from the faulting processor's
	// goroutine: a cluster-global escape.
	dir []int64
	// hits is a shared counter incremented in direct context: escapes.
	hits int64
	// perRank is only ever written at the accessing processor's own rank:
	// node-confined.
	perRank [][]int32
	// mailbox is mutated only while servicing addressed requests:
	// message-mediated.
	mailbox []int64
	// cfg is immutable after Setup: node-confined.
	cfg int
	// eps members are only passed to Endpoint calls: node-confined.
	eps []*msg.Endpoint
}

// Setup runs before the processors start; its mutations never count.
func (t *Proto) Setup(pages int) {
	t.dir = make([]int64, pages)
	t.mailbox = make([]int64, pages)
}

func (t *Proto) OnReadFault(p *core.Proc, page int) {
	t.hits++
	t.bump(page)
	r := p.Rank()
	t.perRank[r] = append(t.perRank[r], int32(page))
	if t.cfg > 0 {
		t.eps[0].Send(t.eps[1], 1, nil, 64)
	}
}

// bump mutates the directory through a cross-function call path; the
// analyzer attributes the write to its direct-context callers.
func (t *Proto) bump(page int) { t.dir[page]++ }

// Service mutates the mailbox only in handler context.
func (t *Proto) Service(p *core.Proc, page int) { t.mailbox[page]++ }

func (t *Proto) DomainSafe() bool { return true } // want `Proto declares DomainSafe\(\)==true but 2 field access\(es\) escape .*roots: dir, hits`
