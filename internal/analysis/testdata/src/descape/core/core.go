// Package core is a stand-in for the real internal/core (path leaf
// "core"): the domainescape analyzer recognizes *core.Proc entry parameters
// and the Rank/Node self-index methods by receiver type and package leaf.
package core

type Proc struct {
	rank, node int
}

func (p *Proc) Rank() int { return p.rank }
func (p *Proc) Node() int { return p.node }
