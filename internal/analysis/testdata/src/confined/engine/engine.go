// Package engine exercises the domainconfined analyzer: fields annotated
// dsmvet:domain-confined may only be touched by functions annotated
// dsmvet:dispatch.
package engine

type domain struct {
	id   int
	runq []int // dsmvet:domain-confined

	// polling is set while a dispatcher evaluates a poll inline.
	// dsmvet:domain-confined
	polling bool
}

// dsmvet:dispatch — holds the baton for the whole call.
func (d *domain) dispatch() int {
	if d.polling {
		return -1
	}
	v := d.runq[0]
	d.runq = d.runq[1:]
	return v
}

func (d *domain) peek() int {
	return d.runq[0] // want `domain-confined field "runq" accessed from peek`
}

// dsmvet:dispatch — constructor; the domain is not yet shared.
func newDomain() *domain {
	return &domain{runq: []int{}}
}

func reset(d *domain) {
	d.polling = false // want `domain-confined field "polling" accessed from reset`
}

// unannotated identifier accesses (not just selectors) are caught too: the
// composite-literal key below names the confined field.
func clone(d *domain) *domain {
	return &domain{id: d.id, runq: nil} // want `domain-confined field "runq" accessed from clone`
}

var _ = newDomain
var _ = (*domain).peek
var _ = reset
var _ = clone
