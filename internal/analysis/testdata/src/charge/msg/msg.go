// Package msg is a stand-in for the real internal/msg (path leaf "msg"):
// it is the sanctioned wrapper, so its raw Deliver/NewMsg calls are exempt —
// but its own byte-moving entry points must not be fed constant zero sizes.
package msg

import "charge/sim"

type Endpoint struct{ p *sim.Proc }

// Send is the charging path: the raw delivery below is sanctioned because
// the msg package charges the per-message cost first.
func (ep *Endpoint) Send(target *Endpoint, kind int, data any, bytes int64) {
	target.p.Deliver(ep.p.NewMsg(kind, data))
}

func (ep *Endpoint) Call(target *Endpoint, kind int, data any, bytes int64) any {
	ep.Send(target, kind, data, bytes)
	return nil
}

func forward(ep, target *Endpoint) {
	ep.Send(target, 1, nil, 0) // want `constant 0 bytes argument to Endpoint.Send`
}
