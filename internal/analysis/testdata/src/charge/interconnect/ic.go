// Package interconnect is a stand-in for the real internal/interconnect:
// chargepath checks the bytes argument of Interconnect.Transfer/RemoteRead
// at call sites in measured packages.
package interconnect

type Interconnect interface {
	Transfer(dst int, bytes int64) int64
	RemoteRead(src int, bytes int64) int64
}
