// Package core is a measured package (path leaf "core"): raw deliveries
// bypass the charging layers here, and constant non-positive byte sizes
// charge no occupancy.
package core

import (
	ic "charge/interconnect"
	"charge/msg"
	"charge/sim"
)

func rawDelivery(p, q *sim.Proc) {
	m := p.NewMsg(3, nil) // want `raw sim\.Proc\.NewMsg bypasses the charging path`
	q.Deliver(m)          // want `raw sim\.Proc\.Deliver bypasses the charging path`
}

func freeBytes(n ic.Interconnect, ep, target *msg.Endpoint, size int64) {
	n.Transfer(1, 0) // want `constant 0 bytes argument to Interconnect.Transfer`
	n.Transfer(1, 4096)
	n.RemoteRead(2, -8) // want `constant -8 bytes argument to Interconnect.RemoteRead`
	n.RemoteRead(2, size)
	ep.Call(target, 7, nil, 0) // want `constant 0 bytes argument to Endpoint.Call`
	ep.Call(target, 7, nil, 64)
}
