// Package sim is a stand-in for the real internal/sim (path leaf "sim"):
// Proc.Deliver/NewMsg are the raw delivery primitives the charging layers
// wrap; the sim package itself is exempt from the raw-delivery rule.
package sim

type Msg struct {
	Kind int
	Data any
}

type Proc struct{ inbox []Msg }

func (p *Proc) NewMsg(kind int, data any) Msg { return Msg{Kind: kind, Data: data} }

func (p *Proc) Deliver(m Msg) { p.inbox = append(p.inbox, m) }

// internalUse: the scheduler layer delivers raw messages legitimately.
func internalUse(p *Proc) {
	p.Deliver(p.NewMsg(0, nil))
}
