// Package interconnect is a stand-in for the real internal/interconnect
// (path leaf "interconnect"): capsgate matches the Caps fields and the gated
// methods by receiver package leaf, and exempts this package itself.
package interconnect

type Caps struct {
	RemoteReads     bool
	RemoteWrites    bool
	TotalWriteOrder bool
}

type Net struct{ caps Caps }

func (n *Net) Caps() Caps { return n.caps }

func (n *Net) RemoteRead(src int, bytes int64) int64 { return bytes }

func (n *Net) WriteThrough(home int, bytes int64) {}

// internalUse shows the defining package is exempt: the backends themselves
// implement the panic-on-missing-cap behavior.
func internalUse(n *Net) {
	n.RemoteRead(0, 8)
	n.WriteThrough(0, 8)
}
