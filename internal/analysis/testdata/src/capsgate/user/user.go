// Package user exercises the capsgate dominance analysis: gated calls in
// every sanctioned shape, and the negative cases that must be flagged.
package user

import ic "capsgate/interconnect"

func gatedDirect(n *ic.Net) {
	if n.Caps().RemoteReads {
		n.RemoteRead(1, 64)
	}
}

func ungated(n *ic.Net) {
	n.RemoteRead(1, 64) // want `call to RemoteRead is not dominated by a Caps\(\).RemoteReads check`
}

func wrongBranch(n *ic.Net) {
	if n.Caps().RemoteReads {
		_ = n.Caps()
	} else {
		n.RemoteRead(1, 64) // want `call to RemoteRead is not dominated by a Caps\(\).RemoteReads check`
	}
}

func wrongCap(n *ic.Net) {
	if n.Caps().TotalWriteOrder {
		n.RemoteRead(1, 64) // want `call to RemoteRead is not dominated by a Caps\(\).RemoteReads check`
	}
}

func boolVar(n *ic.Net) {
	ok := n.Caps().RemoteReads
	if ok {
		n.RemoteRead(1, 64)
	}
}

func earlyReturn(n *ic.Net) {
	if !n.Caps().RemoteReads {
		return
	}
	n.RemoteRead(1, 64)
}

func earlyPanic(n *ic.Net) {
	if !n.Caps().RemoteWrites {
		panic("no remote writes")
	}
	n.WriteThrough(2, 64)
}

func conjunction(n *ic.Net, fast bool) {
	if fast && n.Caps().RemoteReads {
		n.RemoteRead(1, 64)
	}
}

// disjunctionIsNotEnough: cond true does not imply the capability.
func disjunctionIsNotEnough(n *ic.Net, fast bool) {
	if fast || n.Caps().RemoteReads {
		n.RemoteRead(1, 64) // want `call to RemoteRead is not dominated by a Caps\(\).RemoteReads check`
	}
}

func ungatedWriteThrough(n *ic.Net) {
	n.WriteThrough(2, 64) // want `call to WriteThrough is not dominated by a Caps\(\).RemoteWrites check`
}

// markerGated is reached only from callers that check the capability
// (e.g. a Setup-time panic guard).
//
// dsmvet:caps-checked RemoteWrites
func markerGated(n *ic.Net) {
	n.WriteThrough(2, 64)
}

// markerWrongCap asserts a different capability than the call needs.
//
// dsmvet:caps-checked RemoteReads
func markerWrongCap(n *ic.Net) {
	n.WriteThrough(2, 64) // want `call to WriteThrough is not dominated by a Caps\(\).RemoteWrites check`
}

// gatedClosure: an inline closure executes under the dominating check.
func gatedClosure(n *ic.Net) {
	if n.Caps().RemoteReads {
		f := func() { n.RemoteRead(1, 64) }
		f()
	}
}
