package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CapsGate checks that every call to the capability-gated interconnect
// operations is dominated by a check of the corresponding Caps field:
// RemoteRead panics on backends without Caps.RemoteReads (the Memory Channel
// and the switched fabric), and WriteThrough is only meaningful on backends
// declaring Caps.RemoteWrites — an ungated call compiles fine and then
// crashes (or silently mismodels) the first sweep that selects the wrong
// backend.
//
// A call site is considered gated when, on every path reaching it inside its
// function, the required capability has been established by:
//
//   - an if-condition testing the Caps field (including `a && b`
//     conjunctions, a bool variable one assignment away from the field, and
//     `!caps.X` early-return guards whose taken branch terminates), or
//   - a `dsmvet:caps-checked <Cap>` marker on the enclosing function's doc
//     comment, for sites whose dominating check lives in a caller (e.g. a
//     Setup-time panic guard).
//
// The interconnect package itself — the layer that defines and panics on the
// capabilities — is exempt.
var CapsGate = &Analyzer{
	Name: "capsgate",
	Doc: "require every RemoteRead/WriteThrough call site to be dominated " +
		"by the corresponding interconnect Caps check",
	Run: runCapsGate,
}

// CapsCheckedMarker, followed by a capability name, asserts on a function's
// doc comment that the named Caps field is checked before the function can
// be reached (typically a Setup-time panic guard).
const CapsCheckedMarker = "dsmvet:caps-checked"

// capForMethod maps gated interconnect methods to the Caps field that must
// dominate their call sites.
var capForMethod = map[string]string{
	"RemoteRead":   "RemoteReads",
	"WriteThrough": "RemoteWrites",
}

// capFields is the set of Caps field names that may establish gating facts.
var capFields = map[string]bool{
	"RemoteReads":     true,
	"RemoteWrites":    true,
	"TotalWriteOrder": true,
}

func runCapsGate(pass *Pass) error {
	if pathLeaf(pass.Path) == "interconnect" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &capsWalker{pass: pass, boolVars: map[types.Object]string{}}
			w.stmts(fn.Body.List, markerFacts(fn.Doc))
		}
	}
	return nil
}

// markerFacts collects the capabilities asserted by CapsCheckedMarker lines
// in a doc comment.
func markerFacts(doc *ast.CommentGroup) map[string]bool {
	facts := map[string]bool{}
	if doc == nil {
		return facts
	}
	for _, c := range doc.List {
		text := c.Text
		for {
			i := strings.Index(text, CapsCheckedMarker)
			if i < 0 {
				break
			}
			rest := text[i+len(CapsCheckedMarker):]
			if f := strings.Fields(rest); len(f) > 0 && capFields[f[0]] {
				facts[f[0]] = true
			}
			text = rest
		}
	}
	return facts
}

// capsWalker performs the dominance walk: facts is the set of capabilities
// known true on every path reaching the current statement.
type capsWalker struct {
	pass *Pass
	// boolVars tracks bool locals one assignment away from a Caps field
	// (`ok := net.Caps().RemoteReads`).
	boolVars map[types.Object]string
}

// stmts walks a statement sequence, threading facts through early-return
// guards.
func (w *capsWalker) stmts(list []ast.Stmt, facts map[string]bool) {
	for _, s := range list {
		facts = w.stmt(s, facts)
	}
}

// stmt walks one statement under facts and returns the facts holding after
// it (facts can grow after `if !caps.X { return }` guards).
func (w *capsWalker) stmt(s ast.Stmt, facts map[string]bool) map[string]bool {
	switch s := s.(type) {
	case nil:
		return facts
	case *ast.BlockStmt:
		w.stmts(s.List, facts)
		return facts
	case *ast.IfStmt:
		facts = w.stmt(s.Init, facts)
		w.checkExpr(s.Cond, facts)
		pos, whenFalse := condFacts(w.pass, w.boolVars, s.Cond)
		w.stmt(s.Body, factsPlus(facts, pos))
		if s.Else != nil {
			w.stmt(s.Else, factsPlus(facts, whenFalse))
		}
		after := facts
		if terminates(s.Body) {
			after = factsPlus(after, whenFalse)
		}
		if s.Else != nil && stmtTerminates(s.Else) {
			after = factsPlus(after, pos)
		}
		return after
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkExpr(r, facts)
		}
		// One-deep bool taint: `ok := x.Caps().RemoteReads`.
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.pass.Info.Defs[id]
				if obj == nil {
					obj = w.pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if cap := capAtom(w.pass, s.Rhs[i]); cap != "" {
					w.boolVars[obj] = cap
				} else {
					delete(w.boolVars, obj)
				}
			}
		}
		return facts
	case *ast.ExprStmt:
		w.checkExpr(s.X, facts)
		return facts
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, facts)
		}
		return facts
	case *ast.ForStmt:
		facts = w.stmt(s.Init, facts)
		if s.Cond != nil {
			w.checkExpr(s.Cond, facts)
		}
		w.stmt(s.Post, facts)
		w.stmt(s.Body, facts)
		return facts
	case *ast.RangeStmt:
		w.checkExpr(s.X, facts)
		w.stmt(s.Body, facts)
		return facts
	case *ast.SwitchStmt:
		facts = w.stmt(s.Init, facts)
		if s.Tag != nil {
			w.checkExpr(s.Tag, facts)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, x := range cc.List {
				w.checkExpr(x, facts)
			}
			w.stmts(cc.Body, facts)
		}
		return facts
	case *ast.TypeSwitchStmt:
		facts = w.stmt(s.Init, facts)
		w.stmt(s.Assign, facts)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, facts)
		}
		return facts
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm, facts)
			w.stmts(cc.Body, facts)
		}
		return facts
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, facts)
	case *ast.DeferStmt:
		w.checkExpr(s.Call, facts)
		return facts
	case *ast.GoStmt:
		w.checkExpr(s.Call, facts)
		return facts
	case *ast.SendStmt:
		w.checkExpr(s.Chan, facts)
		w.checkExpr(s.Value, facts)
		return facts
	case *ast.IncDecStmt:
		w.checkExpr(s.X, facts)
		return facts
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if x, ok := n.(ast.Expr); ok {
				w.checkExpr(x, facts)
				return false
			}
			return true
		})
		return facts
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if x, ok := n.(ast.Expr); ok {
				w.checkExpr(x, facts)
				return false
			}
			return true
		})
		return facts
	}
}

// checkExpr reports ungated calls to the gated methods anywhere inside x.
// Function literals are walked with the current facts: an inline closure
// (SpinWait bodies) executes under the dominating check.
func (w *capsWalker) checkExpr(x ast.Expr, facts map[string]bool) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(w.pass.Info, call)
		if f == nil {
			return true
		}
		cap, gated := capForMethod[f.Name()]
		if !gated || !interconnectMethod(f) {
			return true
		}
		if !facts[cap] {
			w.pass.Reportf(call.Pos(),
				"call to %s is not dominated by a Caps().%s check: gate it with `if ... .Caps().%s` or mark the enclosing function `%s %s` if a caller checks",
				f.Name(), cap, cap, CapsCheckedMarker, cap)
		}
		return true
	})
}

// interconnectMethod reports whether f is a method whose receiver type is
// declared in a package with path leaf "interconnect".
func interconnectMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := recvNamed(sig.Recv().Type())
	if n == nil {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pathLeaf(pkg.Path()) == "interconnect"
}

// capAtom recognizes an expression that is exactly a Caps field test: a
// selector resolving to a bool field named in capFields on the interconnect
// Caps struct, or a bool variable bound to one.
func capAtom(pass *Pass, x ast.Expr) string {
	return capAtomVars(pass, nil, x)
}

func capAtomVars(pass *Pass, boolVars map[types.Object]string, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		sel := pass.Info.Selections[x]
		if sel == nil || sel.Kind() != types.FieldVal {
			return ""
		}
		fld, ok := sel.Obj().(*types.Var)
		if !ok || !capFields[fld.Name()] {
			return ""
		}
		if fld.Pkg() == nil || pathLeaf(fld.Pkg().Path()) != "interconnect" {
			return ""
		}
		return fld.Name()
	case *ast.Ident:
		if boolVars == nil {
			return ""
		}
		obj := pass.Info.Uses[x]
		if obj == nil {
			return ""
		}
		return boolVars[obj]
	}
	return ""
}

// condFacts decomposes an if-condition into the capabilities established in
// the then-branch (pos) and in the else-branch / after a terminating
// then-branch (whenFalse).
func condFacts(pass *Pass, boolVars map[types.Object]string, cond ast.Expr) (pos, whenFalse map[string]bool) {
	pos = map[string]bool{}
	whenFalse = map[string]bool{}
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			// cond true ⇒ both true.
			p1, _ := condFacts(pass, boolVars, c.X)
			p2, _ := condFacts(pass, boolVars, c.Y)
			pos = factsPlus(p1, p2)
		case "||":
			// cond false ⇒ both false.
			_, f1 := condFacts(pass, boolVars, c.X)
			_, f2 := condFacts(pass, boolVars, c.Y)
			whenFalse = factsPlus(f1, f2)
		}
	case *ast.UnaryExpr:
		if c.Op.String() == "!" {
			p, f := condFacts(pass, boolVars, c.X)
			return f, p
		}
	default:
		if cap := capAtomVars(pass, boolVars, cond); cap != "" {
			pos[cap] = true
		}
	}
	return pos, whenFalse
}

// factsPlus unions fact sets without mutating either operand.
func factsPlus(a, b map[string]bool) map[string]bool {
	if len(b) == 0 {
		return a
	}
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// terminates reports whether a block always transfers control out of the
// sequence (return, panic, or an unlabeled branch statement).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
