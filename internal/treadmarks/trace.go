package treadmarks

import (
	"fmt"
	"math"
)

var trace bool

func tracef(format string, args ...any) {
	if trace {
		fmt.Printf(format+"\n", args...)
	}
}

func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
