package treadmarks

import (
	"testing"

	"repro/internal/apps/fuzz"
	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
)

func gcConfig(nodes, ppn, interval int, capture **Protocol) core.Config {
	return core.Config{
		Nodes: nodes, ProcsPerNode: ppn,
		MC: interconnect.MCFirstGeneration(), Costs: core.DefaultCosts(),
		Msg: msg.DefaultParams(msg.ModePoll), PollingInstrumented: true,
		NewProtocol: func(rt *core.Runtime) core.Protocol {
			pr := New(Config{GCBarrierInterval: interval})(rt).(*Protocol)
			if capture != nil {
				*capture = pr
			}
			return pr
		},
		Variant: "tmk_gc",
	}
}

// TestGCPreservesCorrectness runs the race-free fuzz program with aggressive
// GC (every barrier episode) and checks the oracle still holds.
func TestGCPreservesCorrectness(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		var proto *Protocol
		c := fuzz.Default(seed)
		res, err := core.Run(gcConfig(2, 2, 1, &proto), fuzz.New(c))
		if err != nil {
			t.Fatal(err)
		}
		wantArr, wantTok := fuzz.ExpectedChecks(c, 4)
		if got := res.Checks["arraysum"]; got != wantArr {
			t.Errorf("seed %d: arraysum = %v, want %v", seed, got, wantArr)
		}
		if got := res.Checks["token"]; got != float64(wantTok) {
			t.Errorf("seed %d: token = %v, want %v", seed, got, wantTok)
		}
		if res.Counters["gc_runs"] == 0 {
			t.Error("GC never ran")
		}
		if res.Counters["diffs_dropped"] == 0 && res.Counters["records_dropped"] == 0 {
			t.Error("GC dropped nothing")
		}
	}
}

// TestGCBoundsMetadata: with GC on, retained diffs and foreign interval
// records must be far fewer than without.
func TestGCBoundsMetadata(t *testing.T) {
	retained := func(interval int) (diffs, records int) {
		var proto *Protocol
		c := fuzz.Default(3)
		c.Rounds = 10
		if _, err := core.Run(gcConfig(2, 2, interval, &proto), fuzz.New(c)); err != nil {
			t.Fatal(err)
		}
		for _, st := range proto.ps {
			for _, ds := range st.diffs {
				diffs += len(ds)
			}
			for q := range st.log {
				records += len(st.log[q])
			}
		}
		return diffs, records
	}
	dOff, rOff := retained(0)
	dOn, rOn := retained(2)
	if dOn >= dOff {
		t.Errorf("GC kept %d diffs, no-GC kept %d", dOn, dOff)
	}
	if rOn >= rOff {
		t.Errorf("GC kept %d records, no-GC kept %d", rOn, rOff)
	}
}

// TestGCSOR runs a producer-consumer workload (SOR-like boundary sharing)
// under aggressive GC and verifies data still flows correctly afterwards.
func TestGCSOR(t *testing.T) {
	l := core.NewLayout()
	arr := l.F64Pages(2048)
	prog := &core.Program{
		Name: "gcflow", SharedBytes: l.Size(), Barriers: 1,
		Body: func(p *core.Proc) {
			n := arr.N
			np := p.NumProcs()
			for round := 0; round < 8; round++ {
				writer := round % np
				if p.Rank() == writer {
					for i := 0; i < n; i++ {
						arr.Set(p, i, float64(round*10+i%5))
					}
				}
				p.Barrier(0)
				for i := 0; i < n; i += 97 {
					if got := arr.At(p, i); got != float64(round*10+i%5) {
						t.Errorf("round %d rank %d: arr[%d] = %v", round, p.Rank(), i, got)
						return
					}
				}
				p.Barrier(0)
			}
			p.Finish()
		},
	}
	var proto *Protocol
	if _, err := core.Run(gcConfig(2, 2, 3, &proto), prog); err != nil {
		t.Fatal(err)
	}
	if proto.gcRuns == 0 {
		t.Error("GC never triggered")
	}
}
