package treadmarks

// Run is one contiguous range of changed bytes in a diff.
type Run struct {
	Off  int32
	Data []byte
}

// Diff is a run-length encoding of the changes a processor made to one page:
// the result of comparing the current copy against its twin (§2.2).
type Diff struct {
	// Tag is the highest interval of the creating processor whose write
	// notice the diff covers. One diff can cover several write notices when
	// the page stayed writable across intervals; the tag records the newest.
	Tag int32
	// VT is the vector timestamp of the covering interval: diffs are merged
	// in the causal order these timestamps define (§2.2). For a diff flushed
	// while its newest writes are still in the open interval, VT is the open
	// interval's lower-bound timestamp, which is safe for data-race-free
	// programs (any conflicting later write must synchronize through a point
	// that dominates it).
	VT   VT
	Runs []Run
}

// Bytes returns the payload size of the diff's changed data.
func (d Diff) Bytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// WireBytes estimates the message size of the diff: run headers plus data.
func (d Diff) WireBytes() int64 { return int64(8*len(d.Runs) + d.Bytes()) }

// diffWord is the comparison granularity. TreadMarks diffs pages at word
// granularity (a changed word is shipped whole); we use 8-byte words so that
// a float64 is never split across diffs.
const diffWord = 8

// MakeDiff compares a page against its twin and returns the changed runs at
// word granularity. The data slices are copies, safe to retain after the
// page changes. Trailing bytes beyond the last whole word are compared as
// one short word.
func MakeDiff(frame, twin []byte) []Run {
	var runs []Run
	n := len(frame)
	wordDiffers := func(i int) bool {
		end := i + diffWord
		if end > n {
			end = n
		}
		for k := i; k < end; k++ {
			if frame[k] != twin[k] {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; {
		if !wordDiffers(i) {
			i += diffWord
			continue
		}
		j := i + diffWord
		for j < n && wordDiffers(j) {
			j += diffWord
		}
		if j > n {
			j = n
		}
		runs = append(runs, Run{Off: int32(i), Data: append([]byte(nil), frame[i:j]...)})
		i = j
	}
	return runs
}

// ApplyDiff merges a diff's runs into a page frame.
func ApplyDiff(frame []byte, runs []Run) {
	for _, r := range runs {
		copy(frame[r.Off:], r.Data)
	}
}
