// Package treadmarks implements the TreadMarks distributed shared memory
// protocol (paper §2.2): lazy release consistency with vector timestamps,
// intervals, write notices, twins, and diffs. Remote memory access is used
// only as a fast messaging layer, exactly as in the paper's MC port of
// TreadMarks 0.10.1 (§3.4).
package treadmarks

import "sort"

// VT is a vector timestamp: entry q is the most recent interval of processor
// q in the owner's logical past.
type VT []int32

// NewVT returns a zero vector of length n.
func NewVT(n int) VT { return make(VT, n) }

// Clone returns a copy of v.
func (v VT) Clone() VT { return append(VT(nil), v...) }

// MaxInto sets v to the pairwise maximum of v and o.
func (v VT) MaxInto(o VT) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Covers reports whether v dominates o pointwise (o's knowledge is contained
// in v's).
func (v VT) Covers(o VT) bool {
	for i, x := range o {
		if v[i] < x {
			return false
		}
	}
	return true
}

// Sum returns the total event count. Sums strictly increase along causality,
// so sorting by (Sum, proc) is a linear extension of the happens-before
// partial order — the order diffs are merged in (§2.2 "in the causal order
// defined by the timestamps of the write notices").
func (v VT) Sum() int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}

// Interval is one processor's closed interval: the unit of write-notice
// propagation. Interval (Proc, ID) carries the pages the processor dirtied
// during it and the vector timestamp at its close (with VT[Proc] == ID).
type Interval struct {
	Proc  int32
	ID    int32
	VT    VT
	Pages []int32
}

// sortIntervals orders interval records so that, per creating processor, ids
// ascend (required for contiguous log appends) and across processors a
// causal linear extension holds.
func sortIntervals(recs []Interval) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		sa, sb := a.VT.Sum(), b.VT.Sum()
		if sa != sb {
			return sa < sb
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.ID < b.ID
	})
}
