package treadmarks

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
)

// mimic Water: per-chunk force merge where each proc SKIPS chunks without
// contributions and takes locks in ascending order (not offset by rank).
func TestWaterMergePattern(t *testing.T) {
	trace = os.Getenv("TRACE") != ""
	defer func() { trace = false }()
	var proto *Protocol
	cfg := core.Config{
		Nodes: 2, ProcsPerNode: 2,
		MC: interconnect.MCFirstGeneration(), Costs: core.DefaultCosts(),
		Msg: msg.DefaultParams(msg.ModePoll), PollingInstrumented: true,
		NewProtocol: func(rt *core.Runtime) core.Protocol {
			pr := New(Config{})(rt).(*Protocol)
			proto = pr
			return pr
		},
		Variant: "tmk",
	}
	l := core.NewLayout()
	arr := l.F64Pages(64)
	prog := &core.Program{
		Name: "watermerge", SharedBytes: l.Size(), Locks: 4, Barriers: 3,
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			for step := 0; step < 3; step++ {
				// phase 1: owner clears its chunk
				q := p.Rank()
				for m := q * 16; m < (q+1)*16; m++ {
					arr.Set(p, m, 0)
				}
				p.Barrier(0)
				// phase 2: everyone adds to every chunk in ascending order
				for c := 0; c < np; c++ {
					p.Lock(c)
					for m := c * 16; m < (c+1)*16; m++ {
						arr.Set(p, m, arr.At(p, m)+1)
					}
					p.Unlock(c)
				}
				p.Barrier(1)
				bad := 0
				for m := 0; m < 64; m++ {
					if got := arr.At(p, m); got != float64(np) {
						if bad < 4 {
							t.Errorf("step %d rank %d: arr[%d] = %v, want %v", step, p.Rank(), m, got, np)
						}
						bad++
					}
				}
				if bad > 0 {
					return
				}
				p.Barrier(2) // separate the check from the next step's writes
			}
			p.Finish()
		},
	}
	if _, err := core.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	_ = proto
}
