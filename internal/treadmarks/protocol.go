package treadmarks

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Request kinds.
const (
	// kindLockAcquire is sent to a lock's manager with the requester's VT.
	kindLockAcquire = iota
	// kindLockHandoff is the manager's forward of an acquire to the lock's
	// current owner (one-way; the owner replies to the requester directly).
	kindLockHandoff
	// kindDiffRequest asks a writer for the diffs of one page beyond the
	// requester's applied horizon.
	kindDiffRequest
	// kindPageRequest asks a page's static manager for a full copy plus the
	// vector describing which writers' intervals the copy reflects.
	kindPageRequest
	// kindBarrierArrive carries a processor's VT and fresh intervals to the
	// barrier manager, which replies with everything the arriver lacks.
	kindBarrierArrive
)

// Config holds TreadMarks-specific knobs.
type Config struct {
	// GCBarrierInterval triggers consistency-metadata garbage collection
	// every N barrier episodes (0 disables). At a GC barrier every
	// processor first brings each page it has a copy of fully up to date
	// (applying all known diffs), a second barrier round confirms global
	// completion, and then stored diffs and foreign interval records below
	// the common horizon are discarded — TreadMarks' mechanism for bounding
	// twin/diff/interval memory.
	GCBarrierInterval int

	// TestDropDiffRuns, when N > 0, deliberately corrupts every Nth diff
	// served by serveDiff: the reply's copy of that diff loses its last run.
	// This is the dsmcheck harness's injected diff-loss bug — a fault the
	// schedule-exploration checker must detect and shrink to a minimal
	// repro — and exists only for that self-test. Variants never set it.
	TestDropDiffRuns int
}

// New returns a core.Config protocol factory for TreadMarks.
func New(cfg Config) func(rt *core.Runtime) core.Protocol {
	return func(rt *core.Runtime) core.Protocol {
		return &Protocol{rt: rt, cfg: cfg}
	}
}

// lockState is a processor's local view of one lock.
type lockState int

const (
	lockFree lockState = iota
	lockAcquiring
	lockHeld
)

// pstate is one processor's protocol state.
type pstate struct {
	vt  VT
	cur int32 // number of closed intervals

	// pending holds pages with a write notice in the open interval.
	pending []int32
	// twins maps page -> pristine copy made at the first write fault.
	twins map[int][]byte
	// log[q] holds interval records of processor q, contiguous from id
	// logBase[q]+1 (records at or below the base were garbage-collected).
	log     [][]Interval
	logBase []int32
	// known[page][w], allocated lazily, is the highest interval of writer w
	// with a write notice for page that this processor has incorporated.
	known [][]int32
	// applied[page][w], allocated lazily, is the highest interval of writer
	// w whose writes are reflected in this processor's copy of page.
	applied [][]int32
	// lastClosedDirty[page] is the highest closed local interval that
	// published a write notice for page.
	lastClosedDirty []int32
	// twinBirth[page] is the first interval whose notice covers the live
	// twin: the ordering stamp for the eventual diff. Because twins are
	// flushed as soon as conflicting knowledge arrives, all of a twin's
	// writes causally belong to its birth era.
	twinBirth map[int]int32
	// diffs[page] holds this processor's stored diffs for page, ascending
	// by tag.
	diffs map[int][]Diff

	// lock client state
	lockSt []lockState
	// hasBaton[lock] is true while this processor holds the lock's
	// ownership baton: received with a grant, passed on with a handoff.
	hasBaton []bool
	// pendingHandoff queues handoff requests received while the lock is
	// held or being acquired (FIFO ownership chain).
	pendingHandoff [][]handoffReq

	// barrier client state
	managerVTGuess VT // conservative guess of the barrier manager's VT
	// gcHorizon is the vector time captured when a GC round begins; only
	// metadata at or below it is dropped (diffs created by flushes during
	// the GC phase itself must survive).
	gcHorizon VT
}

type handoffReq struct {
	req msg.Request
	vt  VT
}

// lock manager state (lives on the manager's rank slot).
type lockMgr struct {
	owner int32 // compute rank of current owner, -1 if never acquired
}

// barrier manager state (rank 0).
type barrierSt struct {
	arrived []msg.Request
	vts     []VT
}

// Wire payloads.
type lockAcqMsg struct {
	Lock int
	VT   VT
}
type lockHandoffMsg struct {
	Lock int
	Orig msg.Request
	VT   VT
}
type lockGrant struct {
	VT        VT
	Intervals []Interval
}
type diffReqMsg struct {
	Page    int
	Applied int32 // requester's applied horizon for this writer
}
type diffReply struct {
	Covered int32
	Diffs   []Diff
}
type pageReqMsg struct {
	Page int
}
type pageReply struct {
	Data    []byte
	Applied []int32 // per-writer applied horizon of the copy (nil = zeros)
}
type barrierArriveMsg struct {
	Barrier   int
	VT        VT
	Intervals []Interval
}
type barrierRelease struct {
	VT        VT
	Intervals []Interval
	// GC asks arrivers to run the garbage-collection round: validate every
	// page they hold, confirm with a second arrival, then drop consistency
	// metadata below the common horizon.
	GC bool
}

// Protocol is the TreadMarks protocol state for all processors. All fields
// are only touched by the processor that owns them (or by its request
// handlers, which run on the owning processor's goroutine), so the
// single-baton scheduler provides all needed atomicity.
type Protocol struct {
	rt     *core.Runtime
	cfg    Config
	nprocs int

	ps   []*pstate
	mgrs []map[int]*lockMgr // lock managers: [rank][lock]
	bars map[int]*barrierSt // on rank 0

	// GC state
	barrierEpisodes int64
	gcRuns          int64
	diffsDropped    int64
	recordsDropped  int64

	// counters
	intervalsClosed int64
	lockForwards    int64
	diffRequests    int64
	pageRequests    int64
	invalidations   int64

	// diffsServed counts diffs copied into serveDiff replies; testRunsLost
	// counts the runs the injected TestDropDiffRuns bug discarded. Both only
	// drive the injection and its counter (absent unless the bug is armed).
	diffsServed  int64
	testRunsLost int64
}

// Name implements core.Protocol.
func (t *Protocol) Name() string { return "treadmarks" }

// WantsWriteHook implements core.Protocol: TreadMarks needs no per-store
// action (twins capture writes).
func (t *Protocol) WantsWriteHook() bool { return false }

// Setup implements core.Protocol.
func (t *Protocol) Setup(rt *core.Runtime) {
	if rt.Config().DedicatedServer {
		panic("treadmarks: no dedicated-server variant in the paper")
	}
	t.nprocs = len(rt.ComputeProcs())
	numPages := rt.NumPages()
	locks := rt.Program().Locks
	for r := 0; r < t.nprocs; r++ {
		st := &pstate{
			vt:              NewVT(t.nprocs),
			twins:           make(map[int][]byte),
			log:             make([][]Interval, t.nprocs),
			logBase:         make([]int32, t.nprocs),
			known:           make([][]int32, numPages),
			applied:         make([][]int32, numPages),
			lastClosedDirty: make([]int32, numPages),
			twinBirth:       make(map[int]int32),
			diffs:           make(map[int][]Diff),
			lockSt:          make([]lockState, locks),
			hasBaton:        make([]bool, locks),
			pendingHandoff:  make([][]handoffReq, locks),
			managerVTGuess:  NewVT(t.nprocs),
		}
		t.ps = append(t.ps, st)
		t.mgrs = append(t.mgrs, make(map[int]*lockMgr))
	}
	t.bars = make(map[int]*barrierSt)
	// Shared memory starts valid everywhere: the initial data distribution
	// happens at (untimed) startup, so cold accesses do not fault. Faults
	// come only from invalidations and first writes (twins).
	for _, p := range rt.ComputeProcs() {
		for pg := 0; pg < numPages; pg++ {
			p.Space().SetProt(pg, vm.ProtRead)
		}
	}
}

func (t *Protocol) state(p *core.Proc) *pstate { return t.ps[p.Rank()] }

// lockManagerRank returns the rank managing lock id (static distribution).
func (t *Protocol) lockManagerRank(id int) int { return id % t.nprocs }

// pageManagerRank returns the rank serving initial copies of page (static
// distribution, as in TreadMarks).
func (t *Protocol) pageManagerRank(page int) int { return page % t.nprocs }

// rec returns processor q's interval record with the given id from p's log.
func (st *pstate) rec(q, id int32) Interval {
	return st.log[q][id-1-st.logBase[q]]
}

// logTop returns the highest interval id of q present in the log.
func (st *pstate) logTop(q int32) int32 {
	return st.logBase[q] + int32(len(st.log[q]))
}

func (t *Protocol) slot(arr [][]int32, page int) []int32 {
	if arr[page] == nil {
		arr[page] = make([]int32, t.nprocs)
	}
	return arr[page]
}

// ---------------------------------------------------------------------------
// Intervals and incorporation

// closeInterval publishes the open interval if any pages are dirty: a write
// notice per dirty page, stamped with the new interval id. Every page with a
// live twin is conservatively treated as modified during the interval — the
// protocol cannot know whether a still-writable page was written, so notices
// for "all logically previous writes" are re-published (§2.2's TreadMarks
// conservatism). This also keeps diff stamps fresh: a diff's covering notice
// always dominates the knowledge its writer held at its last close.
func (t *Protocol) closeInterval(p *core.Proc) {
	st := t.state(p)
	if len(st.twins) > 0 {
		pages := make([]int, 0, len(st.twins))
		for pg := range st.twins {
			pages = append(pages, pg)
		}
		sort.Ints(pages)
		for _, pg := range pages {
			if !pagePending(st, pg) {
				st.pending = append(st.pending, int32(pg))
			}
		}
	}
	if len(st.pending) == 0 {
		return
	}
	rank := int32(p.Rank())
	id := st.cur + 1
	st.cur = id
	st.vt[rank] = id
	tracef("t=%d r%d closeInterval id=%d pages=%v", p.Sim().Now(), p.Rank(), id, st.pending)
	rec := Interval{Proc: rank, ID: id, VT: st.vt.Clone(), Pages: st.pending}
	st.log[rank] = append(st.log[rank], rec)
	for _, pg := range st.pending {
		st.lastClosedDirty[pg] = id
		if st.twins[int(pg)] != nil && st.twinBirth[int(pg)] == 0 {
			st.twinBirth[int(pg)] = id
		}
		t.slot(st.known, int(pg))[rank] = id
		t.slot(st.applied, int(pg))[rank] = id
	}
	p.ChargeProtocol(sim.Time(len(st.pending)) * p.Costs().MemAccess * 4)
	st.pending = nil
	t.intervalsClosed++
}

// intervalsSince collects every interval record in p's log that the given
// vector has not seen, in causal order.
func (t *Protocol) intervalsSince(p *core.Proc, have VT) []Interval {
	st := t.state(p)
	var out []Interval
	for q := int32(0); q < int32(t.nprocs); q++ {
		start := have[q] + 1
		if start <= st.logBase[q] {
			panic(fmt.Sprintf("treadmarks: rank %d asked for GC'd intervals of %d below %d", p.Rank(), q, st.logBase[q]))
		}
		for id := start; id <= st.vt[q]; id++ {
			out = append(out, st.rec(q, id))
		}
	}
	sortIntervals(out)
	return out
}

// wireBytes estimates the message size of an interval set: a compact header
// per interval plus its write notices. (Vector timestamps are delta-encoded
// against the carrying message's VT rather than shipped per interval.)
func wireBytes(recs []Interval) int64 {
	var b int64
	for _, r := range recs {
		b += 12 + int64(4*len(r.Pages))
	}
	return b
}

// incorporate merges received interval records: logs them, updates the
// write-notice horizon, and invalidates pages with unseen writes (§2.2).
func (t *Protocol) incorporate(p *core.Proc, recs []Interval, senderVT VT) {
	st := t.state(p)
	rank := int32(p.Rank())
	// A write notice for a page we have dirty supersedes our twin's span:
	// flush the diff now, stamped with our pre-incorporation knowledge, so
	// that chain-ordered writes keep chain-ordered stamps. (Processing the
	// records first would inflate the stamp past the very writes that came
	// after ours.)
	if len(st.twins) > 0 {
		for _, rec := range recs {
			if rec.Proc == rank || st.logTop(rec.Proc) >= rec.ID {
				continue
			}
			for _, pg := range rec.Pages {
				if st.twins[int(pg)] != nil {
					t.flushDiff(p, int(pg))
				}
			}
		}
	}
	for _, rec := range recs {
		q := rec.Proc
		if st.logTop(q) >= rec.ID {
			continue // already known
		}
		if st.logTop(q)+1 != rec.ID {
			panic(fmt.Sprintf("treadmarks: proc %d got interval (%d,%d) with log at %d (gap)",
				p.Rank(), q, rec.ID, st.logTop(q)))
		}
		st.log[q] = append(st.log[q], rec)
		if st.vt[q] < rec.ID {
			st.vt[q] = rec.ID
		}
		p.ChargeProtocol(p.Costs().HandlerWork / 2)
		if q == rank {
			continue
		}
		for _, pg := range rec.Pages {
			known := t.slot(st.known, int(pg))
			if known[q] < rec.ID {
				known[q] = rec.ID
			}
			applied := t.slot(st.applied, int(pg))
			if applied[q] < rec.ID && p.Space().Prot(int(pg)) != vm.ProtNone {
				tracef("t=%d r%d invalidate page=%d (wn %d,%d)", p.Sim().Now(), p.Rank(), pg, q, rec.ID)
				p.Space().SetProt(int(pg), vm.ProtNone)
				if p.Space().Frame(int(pg)) != nil {
					// Unmapping a page the processor actually has mapped
					// costs an mprotect; a never-touched page is only
					// bookkeeping.
					p.ChargeProtocol(p.Costs().ProtChange)
				}
				t.invalidations++
			}
		}
	}
	if senderVT != nil {
		st.vt.MaxInto(senderVT)
	}
}

// ---------------------------------------------------------------------------
// Page validation: fetch, diff collection, merge

// flushDiff turns the current twin into a stored diff (write-protecting the
// page) so that subsequently applied remote diffs do not pollute our own.
// The diff is tagged with its covering write-notice interval: the open
// interval (lower-bound timestamp) if the page has unpublished writes, else
// the latest closed interval that published a notice for the page.
func (t *Protocol) flushDiff(p *core.Proc, page int) {
	st := t.state(p)
	twin := st.twins[page]
	if twin == nil {
		return
	}
	// If the twin covers writes of the still-open interval, close the
	// interval first so the diff is tagged with a real, published write
	// notice. (Interval boundaries may legally fall anywhere; the notice
	// only propagates through future synchronization.)
	if pagePending(st, page) {
		t.closeInterval(p)
	}
	rank := int32(p.Rank())
	tag := st.lastClosedDirty[page]
	birth := st.twinBirth[page]
	delete(st.twinBirth, page)
	if tag < 1 || birth < 1 {
		panic(fmt.Sprintf("treadmarks: rank %d flushing twin for page %d with no covering notice (tag %d birth %d)", p.Rank(), page, tag, birth))
	}
	// Coverage is the newest covering notice (tag); the ordering timestamp
	// is the twin's BIRTH notice. The twin was flushed before any
	// conflicting notice was incorporated, so all of its writes causally
	// belong to the birth era; later re-notices merely re-advertise them
	// and must not re-stamp them past a chain successor's newer diff.
	dvt := st.rec(rank, birth).VT
	frame := p.Space().Frame(page)
	runs := MakeDiff(frame, twin)
	d := Diff{Tag: tag, VT: dvt, Runs: runs}
	tracef("t=%d r%d flushDiff page=%d tag=%d vt=%v bytes=%d c3frame=%v c3twin=%v", p.Sim().Now(), p.Rank(), page, d.Tag, d.VT, d.Bytes(), dbgVal(frame), dbgVal(twin))
	st.diffs[page] = append(st.diffs[page], d)
	delete(st.twins, page)
	if p.Space().Prot(page).CanWrite() {
		p.Space().SetProt(page, vm.ProtRead)
		p.ChargeProtocol(p.Costs().ProtChange)
	}
	p.ChargeProtocol(p.Costs().DiffCreate(d.Bytes(), vm.PageSize))
	p.Stats().DiffsCreated++
}

// validate makes page logically current on p: flush our own twin, fetch a
// base copy if we have none, then request and merge every missing diff in
// causal order. On return the page is mapped read-only.
func (t *Protocol) validate(p *core.Proc, page int) {
	st := t.state(p)
	rank := p.Rank()
	if st.twins[page] != nil {
		t.flushDiff(p, page)
	}
	if p.Space().Frame(page) == nil {
		t.fetchPage(p, page)
	}
	frame := p.Space().Frame(page)
	applied := t.slot(st.applied, page)
	known := st.known[page]
	// Request the missing diffs from every writer in parallel (as
	// TreadMarks does), then collect all replies before merging.
	type gathered struct {
		writer int
		diff   Diff
	}
	var all []gathered
	if known != nil {
		type inflight struct {
			writer int
			token  uint64
		}
		var calls []inflight
		for w := 0; w < t.nprocs; w++ {
			if w == rank || known[w] <= applied[w] {
				continue
			}
			tracef("t=%d r%d validate page=%d need writer=%d top=%d applied=%d", p.Sim().Now(), p.Rank(), page, w, known[w], applied[w])
			t.diffRequests++
			tok := p.EP().CallStart(t.rt.ProcByRank(w).EP(), kindDiffRequest,
				diffReqMsg{Page: page, Applied: applied[w]}, 24)
			calls = append(calls, inflight{writer: w, token: tok})
		}
		for _, c := range calls {
			dr := p.EP().WaitReply(c.token).(diffReply)
			for _, d := range dr.Diffs {
				all = append(all, gathered{writer: c.writer, diff: d})
			}
			if dr.Covered > applied[c.writer] {
				applied[c.writer] = dr.Covered
			}
		}
	}
	// Merge in the causal order defined by the diffs' interval timestamps
	// (§2.2): timestamp sums give a linear extension of happens-before;
	// ties (concurrent diffs) are ordered by writer then tag, which is safe
	// because concurrent diffs of data-race-free programs touch disjoint
	// bytes.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		sa, sb := a.diff.VT.Sum(), b.diff.VT.Sum()
		if sa != sb {
			return sa < sb
		}
		if a.writer != b.writer {
			return a.writer < b.writer
		}
		return a.diff.Tag < b.diff.Tag
	})
	for _, g := range all {
		ApplyDiff(frame, g.diff.Runs)
		if g.writer != rank {
			p.ChargeProtocol(p.Costs().DiffApplyBase + p.Costs().Copy(g.diff.Bytes()))
			p.Stats().DiffsApplied++
		}
		tracef("t=%d r%d applied diff w%d tag=%d vt=%v c3=%v", p.Sim().Now(), p.Rank(), g.writer, g.diff.Tag, g.diff.VT, dbgVal(frame))
	}
	p.Space().SetProt(page, vm.ProtRead)
	p.ChargeProtocol(p.Costs().ProtChange)
}

// pagePending reports whether the page has a write notice in the open
// interval.
func pagePending(st *pstate, page int) bool {
	for _, pg := range st.pending {
		if int(pg) == page {
			return true
		}
	}
	return false
}

// fetchPage obtains a base copy of the page from its static manager, along
// with the vector describing which intervals the copy reflects.
func (t *Protocol) fetchPage(p *core.Proc, page int) {
	st := t.state(p)
	frame := p.Space().EnsureFrame(page)
	mgr := t.pageManagerRank(page)
	if mgr == p.Rank() {
		// Our own managed page: base copy is the initial image.
		if img := t.rt.InitialPage(page); img != nil {
			copy(frame, img)
			p.ChargeProtocol(p.Costs().Copy(vm.PageSize))
		}
		return
	}
	t.pageRequests++
	tracef("t=%d r%d fetchPage page=%d from mgr=%d", p.Sim().Now(), p.Rank(), page, mgr)
	reply := p.EP().Call(t.rt.ProcByRank(mgr).EP(), kindPageRequest, pageReqMsg{Page: page}, 16)
	pr := reply.(pageReply)
	tracef("t=%d r%d gotPage page=%d applied=%v", p.Sim().Now(), p.Rank(), page, pr.Applied)
	copy(frame, pr.Data)
	p.ChargeProtocol(p.Costs().Copy(vm.PageSize))
	p.Stats().PageFetches++
	if pr.Applied != nil {
		applied := t.slot(st.applied, page)
		for w, v := range pr.Applied {
			if v > applied[w] {
				applied[w] = v
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fault handlers

// OnReadFault implements core.Protocol.
func (t *Protocol) OnReadFault(p *core.Proc, page int) {
	p.ChargeProtocol(p.Costs().PageFault)
	t.validate(p, page)
}

// OnWriteFault implements core.Protocol: validate if needed, then twin the
// page and record the write notice for the open interval.
func (t *Protocol) OnWriteFault(p *core.Proc, page int) {
	st := t.state(p)
	p.ChargeProtocol(p.Costs().PageFault)
	if !p.Space().Prot(page).CanRead() {
		t.validate(p, page)
	}
	if st.twins[page] == nil {
		tracef("t=%d r%d twin page=%d cur=%d", p.Sim().Now(), p.Rank(), page, st.cur)
		frame := p.MaterializedFrame(page)
		st.twins[page] = append([]byte(nil), frame...)
		p.ChargeProtocol(p.Costs().TwinCopy)
		p.Stats().Twins++
		if !pagePending(st, page) { // a flush within this interval may have left it pending
			st.pending = append(st.pending, int32(page))
		}
	}
	p.Space().SetProt(page, vm.ProtReadWrite)
	p.ChargeProtocol(p.Costs().ProtChange)
}

// OnSharedWrite implements core.Protocol (unused).
func (t *Protocol) OnSharedWrite(p *core.Proc, addr core.Addr, size int) {}

// ---------------------------------------------------------------------------
// Locks

// Lock implements core.Protocol (§2.2 lock acquire).
func (t *Protocol) Lock(p *core.Proc, id int) {
	st := t.state(p)
	if st.lockSt[id] != lockFree {
		panic(fmt.Sprintf("treadmarks: rank %d re-acquiring lock %d", p.Rank(), id))
	}
	tracef("t=%d r%d lock %d", p.Sim().Now(), p.Rank(), id)
	mgrRank := t.lockManagerRank(id)
	if mgrRank == p.Rank() {
		mgr := t.mgr(p.Rank(), id)
		if mgr.owner < 0 || mgr.owner == int32(p.Rank()) {
			// Free, or we were the last owner: local acquire, no messages.
			mgr.owner = int32(p.Rank())
			st.lockSt[id] = lockHeld
			st.hasBaton[id] = true
			p.ChargeProtocol(p.Costs().HandlerWork)
			return
		}
		// Forward to the current owner and wait for its grant.
		st.lockSt[id] = lockAcquiring
		owner := t.rt.ProcByRank(int(mgr.owner))
		mgr.owner = int32(p.Rank())
		t.lockForwards++
		reply := p.EP().Call(owner.EP(), kindLockHandoff,
			lockHandoffMsg{Lock: id, VT: st.vt.Clone()}, 16+int64(4*t.nprocs))
		t.applyGrant(p, id, reply.(lockGrant))
		return
	}
	st.lockSt[id] = lockAcquiring
	reply := p.EP().Call(t.rt.ProcByRank(mgrRank).EP(), kindLockAcquire,
		lockAcqMsg{Lock: id, VT: st.vt.Clone()}, 16+int64(4*t.nprocs))
	t.applyGrant(p, id, reply.(lockGrant))
}

func (t *Protocol) applyGrant(p *core.Proc, id int, g lockGrant) {
	st := t.state(p)
	t.incorporate(p, g.Intervals, g.VT)
	st.lockSt[id] = lockHeld
	st.hasBaton[id] = true
	// A handoff may have queued while the grant was in flight: it waits for
	// our unlock (we are now in the critical section).
}

func (t *Protocol) mgr(rank, id int) *lockMgr {
	m := t.mgrs[rank][id]
	if m == nil {
		m = &lockMgr{owner: -1}
		t.mgrs[rank][id] = m
	}
	return m
}

// Unlock implements core.Protocol: close the interval; if another processor
// is waiting for this lock, hand ownership (and unseen intervals) over.
func (t *Protocol) Unlock(p *core.Proc, id int) {
	st := t.state(p)
	if st.lockSt[id] != lockHeld {
		panic(fmt.Sprintf("treadmarks: rank %d unlocking lock %d it does not hold", p.Rank(), id))
	}
	t.closeInterval(p)
	st.lockSt[id] = lockFree
	tracef("t=%d r%d unlock %d pending=%d", p.Sim().Now(), p.Rank(), id, len(st.pendingHandoff[id]))
	if q := st.pendingHandoff[id]; len(q) > 0 {
		h := q[0]
		st.pendingHandoff[id] = q[1:]
		t.grantLock(p, id, h)
	}
}

// grantLock sends the requester everything it has not seen, completing the
// ownership transfer (the baton leaves this processor).
func (t *Protocol) grantLock(p *core.Proc, lock int, h handoffReq) {
	t.state(p).hasBaton[lock] = false
	st := t.state(p)
	recs := t.intervalsSince(p, h.vt)
	p.ChargeProtocol(p.Costs().HandlerWork)
	p.EP().Reply(h.req.From, h.req, lockGrant{VT: st.vt.Clone(), Intervals: recs},
		16+wireBytes(recs))
}

// ---------------------------------------------------------------------------
// Barriers

// Barrier implements core.Protocol (§2.2 barrier synchronization with a
// centralized manager at rank 0).
func (t *Protocol) Barrier(p *core.Proc, id int) {
	st := t.state(p)
	t.closeInterval(p)
	if t.nprocs == 1 {
		return
	}
	if p.Rank() == 0 {
		t.barrierManager(p, id)
		return
	}
	// Send our VT plus the intervals the manager may lack, per our
	// conservative guess of its vector timestamp.
	recs := t.intervalsSince(p, st.managerVTGuess)
	reply := p.EP().Call(t.rt.ProcByRank(0).EP(), kindBarrierArrive,
		barrierArriveMsg{Barrier: id, VT: st.vt.Clone(), Intervals: recs},
		16+int64(4*t.nprocs)+wireBytes(recs))
	rel := reply.(barrierRelease)
	t.incorporate(p, rel.Intervals, rel.VT)
	st.managerVTGuess = rel.VT.Clone()
	if rel.GC {
		st.gcHorizon = st.vt.Clone()
		t.gcValidate(p)
		reply2 := p.EP().Call(t.rt.ProcByRank(0).EP(), kindBarrierArrive,
			barrierArriveMsg{Barrier: id, VT: st.vt.Clone()}, 16+int64(4*t.nprocs))
		rel2 := reply2.(barrierRelease)
		t.incorporate(p, rel2.Intervals, rel2.VT)
		st.managerVTGuess = rel2.VT.Clone()
		t.gcDrop(p)
	}
}

// barrierManager collects all arrivals (servicing other requests meanwhile),
// merges their knowledge, and releases everyone with what they lack.
func (t *Protocol) barrierManager(p *core.Proc, id int) {
	st := t.state(p)
	t.barrierEpisodes++
	gc := t.cfg.GCBarrierInterval > 0 && t.barrierEpisodes%int64(t.cfg.GCBarrierInterval) == 0
	t.barrierRound(p, id, gc)
	st.managerVTGuess = st.vt.Clone()
	if gc {
		t.gcRuns++
		st.gcHorizon = st.vt.Clone()
		t.gcValidate(p)
		t.barrierRound(p, id, false) // confirmation round
		t.gcDrop(p)
	}
}

// barrierRound gathers all arrivals for barrier id (servicing other requests
// meanwhile) and releases everyone with the intervals they lack.
func (t *Protocol) barrierRound(p *core.Proc, id int, gc bool) {
	st := t.state(p)
	bs := t.bars[id]
	if bs == nil {
		bs = &barrierSt{}
		t.bars[id] = bs
	}
	for len(bs.arrived) < t.nprocs-1 {
		m := p.Sim().Recv("barrier manager awaiting arrivals")
		t.dispatchAt(p, m)
	}
	p.ChargeProtocol(sim.Time(t.nprocs) * p.Costs().HandlerWork)
	for i, req := range bs.arrived {
		recs := t.intervalsSince(p, bs.vts[i])
		p.EP().Reply(req.From, req, barrierRelease{VT: st.vt.Clone(), Intervals: recs, GC: gc},
			16+int64(4*t.nprocs)+wireBytes(recs))
	}
	bs.arrived = nil
	bs.vts = nil
}

// gcValidate brings every page this processor holds a copy of fully up to
// date, so that stored diffs become globally redundant.
func (t *Protocol) gcValidate(p *core.Proc) {
	st := t.state(p)
	rank := p.Rank()
	for pg := 0; pg < t.rt.NumPages(); pg++ {
		if p.Space().Frame(pg) == nil {
			continue
		}
		known := st.known[pg]
		if known == nil {
			continue
		}
		applied := t.slot(st.applied, pg)
		need := false
		for w := 0; w < t.nprocs; w++ {
			if w != rank && known[w] > applied[w] {
				need = true
				break
			}
		}
		if need {
			t.validate(p, pg)
		}
	}
}

// gcDrop discards stored diffs and foreign interval records below the
// post-barrier horizon. Own records are kept (diff birth stamps may still
// refer to them).
func (t *Protocol) gcDrop(p *core.Proc) {
	st := t.state(p)
	rank := int32(p.Rank())
	horizon := st.gcHorizon
	kept := make(map[int][]Diff)
	for pg, ds := range st.diffs {
		for _, d := range ds {
			if d.Tag > horizon[rank] {
				kept[pg] = append(kept[pg], d)
			} else {
				t.diffsDropped++
			}
		}
	}
	st.diffs = kept
	for q := int32(0); q < int32(t.nprocs); q++ {
		if q == rank || horizon[q] <= st.logBase[q] {
			continue
		}
		drop := horizon[q] - st.logBase[q]
		if drop > int32(len(st.log[q])) {
			drop = int32(len(st.log[q]))
		}
		t.recordsDropped += int64(drop)
		st.log[q] = append([]Interval(nil), st.log[q][drop:]...)
		st.logBase[q] += drop
	}
}

// dbgVal reads the float64 at byte offset 384 (test chunk 3) of a frame.
func dbgVal(b []byte) float64 {
	if b == nil || len(b) < 392 {
		return -1
	}
	bits := uint64(0)
	for i := 7; i >= 0; i-- {
		bits = bits<<8 | uint64(b[128+i])
	}
	return mathFloat64frombits(bits)
}

// dispatchAt routes one raw inbox message through the endpoint's handler
// path (used by the barrier manager's wait loop).
func (t *Protocol) dispatchAt(p *core.Proc, m sim.Msg) {
	switch m.Kind {
	case msg.KindReply:
		panic("treadmarks: barrier manager received a stray reply")
	case msg.KindShutdown:
		panic("treadmarks: barrier manager received shutdown mid-barrier")
	default:
		t.Service(p, m, m.Data.(msg.Request))
	}
}

// ---------------------------------------------------------------------------
// Request service

// Service implements core.Protocol.
func (t *Protocol) Service(p *core.Proc, m sim.Msg, req msg.Request) {
	st := t.state(p)
	switch m.Kind {
	case kindLockAcquire:
		la := req.Data.(lockAcqMsg)
		mgr := t.mgr(p.Rank(), la.Lock)
		requester := t.rt.ProcBySimID(req.From).Rank()
		tracef("t=%d r%d mgr acq lock=%d req=%d owner=%d", p.Sim().Now(), p.Rank(), la.Lock, requester, mgr.owner)
		if mgr.owner < 0 {
			// First acquire anywhere: grant with no history.
			mgr.owner = int32(requester)
			p.ChargeProtocol(p.Costs().HandlerWork)
			p.EP().Reply(req.From, req, lockGrant{}, 16)
			return
		}
		prevOwner := int(mgr.owner)
		mgr.owner = int32(requester)
		if prevOwner == requester {
			// Repeated acquire by the last owner: it already has the lock's
			// entire sync history, so grant without interval transfer.
			p.ChargeProtocol(p.Costs().HandlerWork)
			p.EP().Reply(req.From, req, lockGrant{}, 16)
			return
		}
		if prevOwner == p.Rank() {
			// We are the previous owner: hand off directly.
			t.handleHandoff(p, req, la.VT, la.Lock)
			return
		}
		t.lockForwards++
		p.ChargeProtocol(p.Costs().HandlerWork)
		p.EP().Send(t.rt.ProcByRank(prevOwner).EP(), kindLockHandoff,
			lockHandoffMsg{Lock: la.Lock, Orig: req, VT: la.VT}, 16+int64(4*t.nprocs))
	case kindLockHandoff:
		h := req.Data.(lockHandoffMsg)
		orig := h.Orig
		if orig.Token == 0 {
			// Direct handoff: the manager itself is the requester, so the
			// enclosing request carries the reply token. (Forwarded
			// requests always have a non-zero Call token.)
			orig = req
		}
		t.handleHandoff(p, orig, h.VT, h.Lock)
	case kindDiffRequest:
		t.serveDiff(p, req)
	case kindPageRequest:
		t.servePage(p, req)
	case kindBarrierArrive:
		ba := req.Data.(barrierArriveMsg)
		t.incorporate(p, ba.Intervals, ba.VT)
		bs := t.bars[ba.Barrier]
		if bs == nil {
			bs = &barrierSt{}
			t.bars[ba.Barrier] = bs
		}
		bs.arrived = append(bs.arrived, req)
		bs.vts = append(bs.vts, ba.VT.Clone())
	default:
		panic(fmt.Sprintf("treadmarks: unknown request kind %d", m.Kind))
	}
	_ = st
}

// handleHandoff grants the lock now if we are not inside (or entering) the
// critical section, else queues the requester.
func (t *Protocol) handleHandoff(p *core.Proc, orig msg.Request, reqVT VT, lock int) {
	st := t.state(p)
	tracef("t=%d r%d handoff lock=%d from=%d state=%d", p.Sim().Now(), p.Rank(), lock, orig.From, st.lockSt[lock])
	if !st.hasBaton[lock] || st.lockSt[lock] == lockHeld {
		// Either we are inside the critical section, or our own baton is
		// still in flight (we are acquiring a later chain position): the
		// handoff waits for our unlock.
		st.pendingHandoff[lock] = append(st.pendingHandoff[lock], handoffReq{req: orig, vt: reqVT})
		return
	}
	// We hold the baton but are not in the critical section (idle previous
	// owner, possibly re-acquiring a later position): pass it on now.
	t.closeInterval(p)
	t.grantLock(p, lock, handoffReq{req: orig, vt: reqVT})
}

// serveDiff answers a diff request: create the twin's diff if a published
// write notice is not yet covered by a stored diff, then return all stored
// diffs beyond the requester's horizon.
func (t *Protocol) serveDiff(p *core.Proc, req msg.Request) {
	st := t.state(p)
	dr := req.Data.(diffReqMsg)
	page := dr.Page
	stored := st.diffs[page]
	highest := int32(0)
	if len(stored) > 0 {
		highest = stored[len(stored)-1].Tag
	}
	if st.twins[page] != nil && st.lastClosedDirty[page] > highest {
		t.flushDiff(p, page)
		stored = st.diffs[page]
		highest = stored[len(stored)-1].Tag
	}
	var out []Diff
	var bytes int64
	for _, d := range stored {
		if d.Tag > dr.Applied {
			t.diffsServed++
			if n := t.cfg.TestDropDiffRuns; n > 0 && t.diffsServed%int64(n) == 0 && len(d.Runs) > 0 {
				// Injected diff-loss bug (Config.TestDropDiffRuns): serve a
				// copy of the diff missing its last run. The struct copy
				// shares the runs' backing array but truncating the length
				// never mutates stored state.
				d.Runs = d.Runs[:len(d.Runs)-1]
				t.testRunsLost++
			}
			out = append(out, d)
			bytes += d.WireBytes()
		}
	}
	covered := st.lastClosedDirty[page]
	if highest > covered {
		covered = highest
	}
	tracef("t=%d r%d serveDiff page=%d appliedReq=%d -> %d diffs covered=%d (lastClosed=%d)", p.Sim().Now(), p.Rank(), page, dr.Applied, len(out), covered, st.lastClosedDirty[page])
	p.ChargeProtocol(p.Costs().HandlerWork)
	p.EP().ReplyClass(req.From, req, diffReply{Covered: covered, Diffs: out},
		16+bytes, interconnect.TrafficPage)
}

// servePage answers a page request with our current copy (flushing our twin
// first so the copy is self-described by our applied vector) plus that
// vector.
func (t *Protocol) servePage(p *core.Proc, req msg.Request) {
	st := t.state(p)
	page := req.Data.(pageReqMsg).Page
	if st.twins[page] != nil {
		t.flushDiff(p, page)
	}
	frame := p.Space().Frame(page)
	var data []byte
	if frame != nil {
		data = append([]byte(nil), frame...)
	} else {
		data = make([]byte, vm.PageSize)
		if img := t.rt.InitialPage(page); img != nil {
			copy(data, img)
		}
	}
	var applied []int32
	if st.applied[page] != nil {
		applied = append([]int32(nil), st.applied[page]...)
	}
	p.ChargeProtocol(p.Costs().HandlerWork + p.Costs().Copy(vm.PageSize))
	p.EP().ReplyClass(req.From, req, pageReply{Data: data, Applied: applied},
		int64(vm.PageSize+4*len(applied)), interconnect.TrafficPage)
}

// Finalize implements core.Protocol.
func (t *Protocol) Finalize(p *core.Proc) {}

// DomainSafe implements core.DomainSafety. TreadMarks' host-level bookkeeping
// is cluster-global: interval records, write notices, and cached diffs live
// in shared per-page structures that the requesting processor reads and
// mutates directly during its own acquire (rather than through timestamped
// simulator messages), the lock-manager queues are mutated from requesters'
// goroutines, and garbage collection walks every processor's interval lists
// in place. The node-parallel engine therefore cannot run this protocol;
// core.Run falls back to the sequential engine.
//
// The exact escape inventory is machine-checked: the domainescape analyzer
// classifies every field access reachable from the entry points, and the
// golden report internal/analysis/testdata/reports/treadmarks.golden.json
// pins the field → call-path pairs (barrier state and the shared protocol
// counters mutated from requesters' goroutines; the diff-serving counters
// are message-mediated) that force this declaration. Flipping it to true
// without emptying that list is itself a dsmvet diagnostic.
func (t *Protocol) DomainSafe() bool { return false }

// MaxCostJitter implements core.SchedulePerturbable: any cost inflation up
// to 100% per operation is legal. TreadMarks' ordering decisions are all
// logical, not temporal — vector timestamps order intervals, lock batons
// order critical sections, the barrier manager counts arrivals — and every
// wait is condition-based (Recv blocks until the reply message exists).
// The conservative barrier-manager VT guess is the one timing-sensitive
// heuristic, and it errs only toward re-sending intervals the manager
// already has, never toward dropping any. Stretching costs therefore yields
// another legal execution of the same protocol.
func (t *Protocol) MaxCostJitter() float64 { return 1.0 }

// Counters implements core.Protocol.
func (t *Protocol) Counters() map[string]int64 {
	m := map[string]int64{
		"gc_runs":         t.gcRuns,
		"diffs_dropped":   t.diffsDropped,
		"records_dropped": t.recordsDropped,
		"intervals":       t.intervalsClosed,
		"lock_forwards":   t.lockForwards,
		"diff_requests":   t.diffRequests,
		"page_requests":   t.pageRequests,
		"invalidations":   t.invalidations,
	}
	if t.cfg.TestDropDiffRuns > 0 {
		// Only present when the injected bug is armed, so ordinary runs'
		// counter maps (and their serialized results) are unchanged.
		m["test_diff_runs_lost"] = t.testRunsLost
	}
	return m
}
