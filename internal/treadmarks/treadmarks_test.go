package treadmarks

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
)

func testConfig(nodes, ppn int, variant string) core.Config {
	cfg := core.Config{
		Nodes:        nodes,
		ProcsPerNode: ppn,
		MC:           interconnect.MCFirstGeneration(),
		Costs:        core.DefaultCosts(),
		NewProtocol:  New(Config{}),
		Variant:      variant,
	}
	switch variant {
	case "tmk_udp_int":
		cfg.Msg = msg.DefaultParams(msg.ModeUDP)
	case "tmk_mc_int":
		cfg.Msg = msg.DefaultParams(msg.ModeInterrupt)
	default: // tmk_mc_poll
		cfg.Msg = msg.DefaultParams(msg.ModePoll)
		cfg.PollingInstrumented = true
	}
	return cfg
}

// --- unit: vector timestamps -------------------------------------------------

func TestVTBasics(t *testing.T) {
	v := NewVT(4)
	o := VT{1, 0, 3, 0}
	v.MaxInto(o)
	if v[0] != 1 || v[2] != 3 {
		t.Errorf("MaxInto: %v", v)
	}
	if !v.Covers(o) {
		t.Error("v should cover o")
	}
	if o.Covers(VT{2, 0, 0, 0}) {
		t.Error("o should not cover")
	}
	c := v.Clone()
	c[0] = 99
	if v[0] == 99 {
		t.Error("Clone aliases")
	}
	if v.Sum() != 4 {
		t.Errorf("Sum = %d", v.Sum())
	}
}

// Property: MaxInto is a lattice join — commutative, idempotent, monotone.
func TestVTJoinProperties(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		mk := func(x [4]uint8) VT {
			v := NewVT(4)
			for i := range v {
				v[i] = int32(x[i])
			}
			return v
		}
		va, vb := mk(a), mk(b)
		ab := va.Clone()
		ab.MaxInto(vb)
		ba := vb.Clone()
		ba.MaxInto(va)
		// commutative
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		// idempotent
		aa := va.Clone()
		aa.MaxInto(va)
		for i := range aa {
			if aa[i] != va[i] {
				return false
			}
		}
		// monotone: join covers both
		return ab.Covers(va) && ab.Covers(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sortIntervals yields a linear extension of happens-before.
func TestSortIntervalsCausal(t *testing.T) {
	recs := []Interval{
		{Proc: 1, ID: 2, VT: VT{0, 2, 1}},
		{Proc: 0, ID: 1, VT: VT{1, 0, 0}},
		{Proc: 2, ID: 1, VT: VT{0, 1, 1}},
		{Proc: 1, ID: 1, VT: VT{0, 1, 0}},
	}
	sortIntervals(recs)
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			// recs[j] must not happen-before recs[i].
			if recs[i].VT.Covers(recs[j].VT) && recs[i].VT.Sum() != recs[j].VT.Sum() {
				t.Errorf("order violates causality: %v before %v", recs[j], recs[i])
			}
		}
	}
	// Per-proc ids must ascend.
	last := map[int32]int32{}
	for _, r := range recs {
		if r.ID <= last[r.Proc] {
			t.Errorf("proc %d ids not ascending", r.Proc)
		}
		last[r.Proc] = r.ID
	}
}

// --- unit: diffs -------------------------------------------------------------

func TestMakeApplyDiffRoundTrip(t *testing.T) {
	f := func(twin []byte, edits []uint16) bool {
		if len(twin) == 0 {
			twin = []byte{0}
		}
		frame := append([]byte(nil), twin...)
		for _, e := range edits {
			frame[int(e)%len(frame)] ^= byte(e >> 8)
		}
		runs := MakeDiff(frame, twin)
		rebuilt := append([]byte(nil), twin...)
		ApplyDiff(rebuilt, runs)
		return bytes.Equal(rebuilt, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffEmptyWhenIdentical(t *testing.T) {
	twin := make([]byte, 256)
	frame := make([]byte, 256)
	if runs := MakeDiff(frame, twin); len(runs) != 0 {
		t.Errorf("identical pages produced %d runs", len(runs))
	}
}

func TestDiffSizes(t *testing.T) {
	twin := make([]byte, 128)
	frame := append([]byte(nil), twin...)
	frame[10], frame[11], frame[50] = 1, 2, 3
	runs := MakeDiff(frame, twin)
	// Word granularity: bytes 10-11 dirty word 8..16, byte 50 dirty word
	// 48..56 — two 8-byte runs.
	d := Diff{Tag: 1, Runs: runs}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0].Off != 8 || runs[1].Off != 48 {
		t.Errorf("run offsets = %d,%d, want 8,48", runs[0].Off, runs[1].Off)
	}
	if d.Bytes() != 16 {
		t.Errorf("Bytes = %d, want 16", d.Bytes())
	}
	if d.WireBytes() != int64(8*len(runs)+16) {
		t.Errorf("WireBytes = %d", d.WireBytes())
	}
}

// --- integration -------------------------------------------------------------

func producerConsumer(t *testing.T, cfg core.Config, n int) *core.Result {
	t.Helper()
	l := core.NewLayout()
	arr := l.F64Pages(n)
	prog := &core.Program{
		Name:        "prodcons",
		SharedBytes: l.Size(),
		Barriers:    2,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				for i := 0; i < n; i++ {
					arr.Set(p, i, float64(i)+0.5)
				}
			}
			p.Barrier(0)
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += arr.At(p, i)
			}
			want := float64(n*(n-1))/2 + 0.5*float64(n)
			if sum != want {
				t.Errorf("rank %d sum = %v, want %v", p.Rank(), sum, want)
			}
			p.Barrier(1)
			p.Finish()
		},
	}
	res, err := core.Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProducerConsumer(t *testing.T) {
	res := producerConsumer(t, testConfig(2, 1, "tmk_mc_poll"), 3000)
	if res.Total.Twins == 0 {
		t.Error("no twins created")
	}
	if res.Total.DiffsCreated == 0 || res.Total.DiffsApplied == 0 {
		t.Errorf("diffs: %d created, %d applied", res.Total.DiffsCreated, res.Total.DiffsApplied)
	}
	if res.Total.Messages == 0 {
		t.Error("no messages counted")
	}
}

func TestAllVariants(t *testing.T) {
	for _, v := range []string{"tmk_udp_int", "tmk_mc_int", "tmk_mc_poll"} {
		producerConsumer(t, testConfig(2, 2, v), 1200)
	}
}

func TestVariantTimingOrder(t *testing.T) {
	times := make(map[string]sim.Time)
	for _, v := range []string{"tmk_udp_int", "tmk_mc_int", "tmk_mc_poll"} {
		times[v] = producerConsumer(t, testConfig(2, 1, v), 2000).Time
	}
	if !(times["tmk_mc_poll"] < times["tmk_mc_int"]) {
		t.Errorf("poll %d not faster than int %d", times["tmk_mc_poll"], times["tmk_mc_int"])
	}
	if !(times["tmk_mc_int"] <= times["tmk_udp_int"]) {
		t.Errorf("mc_int %d not faster than udp_int %d", times["tmk_mc_int"], times["tmk_udp_int"])
	}
}

func TestLockMutualExclusion(t *testing.T) {
	l := core.NewLayout()
	counter := l.I64Pages(1)
	const perProc = 25
	prog := &core.Program{
		Name:        "lockcount",
		SharedBytes: l.Size(),
		Locks:       3,
		Barriers:    1,
		Body: func(p *core.Proc) {
			for i := 0; i < perProc; i++ {
				p.Lock(1)
				counter.Set(p, 0, counter.At(p, 0)+1)
				p.Unlock(1)
				p.Compute(15 * sim.Microsecond)
			}
			p.Barrier(0)
			if got := counter.At(p, 0); got != int64(perProc*p.NumProcs()) {
				t.Errorf("rank %d: counter = %d, want %d", p.Rank(), got, perProc*p.NumProcs())
			}
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(2, 2, "tmk_mc_poll"), prog); err != nil {
		t.Fatal(err)
	}
}

// TestMultiWriterFalseSharing: two processors write disjoint halves of the
// same page concurrently; after the barrier both halves must be merged.
func TestMultiWriterFalseSharing(t *testing.T) {
	l := core.NewLayout()
	arr := l.F64Pages(1024) // one page per 1024 f64s exactly
	prog := &core.Program{
		Name:        "multiwriter",
		SharedBytes: l.Size(),
		Barriers:    2,
		Body: func(p *core.Proc) {
			n := arr.N
			half := n / 2
			lo, hi := 0, half
			if p.Rank() == 1 {
				lo, hi = half, n
			}
			if p.Rank() < 2 {
				for i := lo; i < hi; i++ {
					arr.Set(p, i, float64(p.Rank()+1))
				}
			}
			p.Barrier(0)
			for i := 0; i < n; i++ {
				want := 1.0
				if i >= half {
					want = 2.0
				}
				if got := arr.At(p, i); got != want {
					t.Fatalf("rank %d: arr[%d] = %v, want %v", p.Rank(), i, got, want)
				}
			}
			p.Barrier(1)
			p.Finish()
		},
	}
	res, err := core.Run(testConfig(2, 1, "tmk_mc_poll"), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.DiffsApplied == 0 {
		t.Error("multi-writer page merged without diffs?")
	}
}

// TestMigratoryLockChain: data protected by a lock migrating across all
// processors must accumulate correctly (lazy interval propagation through
// the lock's sync chain).
func TestMigratoryLockChain(t *testing.T) {
	l := core.NewLayout()
	obj := l.F64Pages(32)
	prog := &core.Program{
		Name:        "migratory",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    1,
		Body: func(p *core.Proc) {
			for round := 0; round < 8; round++ {
				p.Lock(0)
				for j := 0; j < obj.N; j++ {
					obj.Set(p, j, obj.At(p, j)+1)
				}
				p.Unlock(0)
				p.Compute(30 * sim.Microsecond)
			}
			p.Barrier(0)
			if got := obj.At(p, 0); got != float64(8*p.NumProcs()) {
				t.Errorf("rank %d: obj = %v, want %v", p.Rank(), got, 8*p.NumProcs())
			}
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(2, 2, "tmk_mc_poll"), prog); err != nil {
		t.Fatal(err)
	}
}

// TestCausalChain: writes propagate transitively through different locks
// (A writes x under L0; B reads x, writes y under L1; C reads both).
func TestCausalChain(t *testing.T) {
	l := core.NewLayout()
	x := l.F64Pages(1)
	y := l.F64Pages(1)
	seq := l.I64Pages(1)
	prog := &core.Program{
		Name:        "causal",
		SharedBytes: l.Size(),
		Locks:       2,
		Barriers:    1,
		Body: func(p *core.Proc) {
			switch p.Rank() {
			case 0:
				p.Lock(0)
				x.Set(p, 0, 41)
				seq.Set(p, 0, 1)
				p.Unlock(0)
			case 1:
				for {
					p.Lock(0)
					s := seq.At(p, 0)
					if s >= 1 {
						v := x.At(p, 0)
						p.Unlock(0)
						p.Lock(1)
						y.Set(p, 0, v+1)
						seq.Set(p, 0, 2)
						p.Unlock(1)
						break
					}
					p.Unlock(0)
					p.Compute(50 * sim.Microsecond)
				}
			case 2:
				for {
					p.Lock(1)
					s := seq.At(p, 0)
					if s >= 2 {
						// x's write must be visible transitively through the
						// L0 -> rank1 -> L1 chain.
						if got := x.At(p, 0); got != 41 {
							t.Errorf("causal x = %v, want 41", got)
						}
						if got := y.At(p, 0); got != 42 {
							t.Errorf("causal y = %v, want 42", got)
						}
						p.Unlock(1)
						break
					}
					p.Unlock(1)
					p.Compute(50 * sim.Microsecond)
				}
			}
			p.Barrier(0)
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(3, 1, "tmk_mc_poll"), prog); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	r1 := producerConsumer(t, testConfig(2, 2, "tmk_mc_poll"), 1500)
	r2 := producerConsumer(t, testConfig(2, 2, "tmk_mc_poll"), 1500)
	if r1.Time != r2.Time {
		t.Errorf("nondeterministic: %d vs %d", r1.Time, r2.Time)
	}
	if r1.Total.Messages != r2.Total.Messages {
		t.Error("nondeterministic message count")
	}
}

func TestDedicatedServerRejected(t *testing.T) {
	cfg := testConfig(2, 1, "tmk_mc_poll")
	cfg.DedicatedServer = true
	_, err := core.Run(cfg, &core.Program{Name: "x", SharedBytes: 8192, Body: func(p *core.Proc) {}})
	if err == nil {
		t.Error("dedicated-server TreadMarks accepted")
	}
}

// TestRepeatedBarriers stresses interval logs and barrier manager state
// reuse across many phases.
func TestRepeatedBarriers(t *testing.T) {
	l := core.NewLayout()
	arr := l.F64Pages(256)
	prog := &core.Program{
		Name:        "phases",
		SharedBytes: l.Size(),
		Barriers:    1,
		Body: func(p *core.Proc) {
			n := p.NumProcs()
			for phase := 0; phase < 6; phase++ {
				// Round-robin band ownership each phase.
				owner := phase % n
				if p.Rank() == owner {
					for i := 0; i < arr.N; i++ {
						arr.Set(p, i, float64(phase*100+i))
					}
				}
				p.Barrier(0)
				if got := arr.At(p, 7); got != float64(phase*100+7) {
					t.Fatalf("phase %d rank %d: got %v", phase, p.Rank(), got)
				}
				p.Barrier(0)
			}
			p.Finish()
		},
	}
	if _, err := core.Run(testConfig(2, 2, "tmk_mc_poll"), prog); err != nil {
		t.Fatal(err)
	}
}

// TestDiffBirthStamps: a diff created after several re-noticed intervals
// must be ordered by its twin's birth notice, not its latest coverage tag.
func TestDiffBirthStamps(t *testing.T) {
	var proto *Protocol
	cfg := testConfig(2, 1, "tmk_mc_poll")
	inner := cfg.NewProtocol
	cfg.NewProtocol = func(rt *core.Runtime) core.Protocol {
		p := inner(rt).(*Protocol)
		proto = p
		return p
	}
	l := core.NewLayout()
	arr := l.F64Pages(64)
	sync := l.F64Pages(1)
	prog := &core.Program{
		Name:        "birth",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    2,
		Body: func(p *core.Proc) {
			if p.Rank() == 0 {
				arr.Set(p, 0, 1) // twin born here
				// Several unrelated sync ops re-notice the dirty page.
				for i := 0; i < 3; i++ {
					p.Lock(0)
					sync.Set(p, 0, float64(i))
					p.Unlock(0)
				}
			}
			p.Barrier(0)
			if p.Rank() == 1 {
				if got := arr.At(p, 0); got != 1 {
					t.Errorf("reader got %v", got)
				}
			}
			p.Barrier(1)
			p.Finish()
		},
	}
	if _, err := core.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
	// Rank 0's stored diff for arr's page: coverage tag is the latest
	// covering interval, birth stamp is the first (VT[0] of the stamp is
	// the birth id, below the tag).
	st := proto.ps[0]
	page := 0
	ds := st.diffs[page]
	if len(ds) == 0 {
		t.Fatal("no stored diff")
	}
	d := ds[0]
	if d.VT[0] > d.Tag {
		t.Errorf("birth stamp %v exceeds coverage tag %d", d.VT, d.Tag)
	}
	if d.VT[0] < 1 {
		t.Errorf("birth stamp %v missing", d.VT)
	}
}

// TestLogBaseGapPanics: asking for garbage-collected intervals must fail
// loudly rather than fabricate history.
func TestLogBaseGapPanics(t *testing.T) {
	st := &pstate{
		vt:      NewVT(2),
		log:     make([][]Interval, 2),
		logBase: []int32{5, 0},
	}
	st.vt[0] = 5
	defer func() {
		if recover() == nil {
			t.Error("no panic for GC'd interval request")
		}
	}()
	// Directly exercise rec() below the base.
	_ = st.rec(0, 3)
}
