package treadmarks

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
)

func TestTraceCS(t *testing.T) {
	if os.Getenv("TRACE") == "" {
		t.Skip("set TRACE=1")
	}
	trace = true
	defer func() { trace = false }()
	cfg := core.Config{
		Nodes: 2, ProcsPerNode: 2,
		MC: interconnect.MCFirstGeneration(), Costs: core.DefaultCosts(),
		Msg: msg.DefaultParams(msg.ModePoll), PollingInstrumented: true,
		NewProtocol: New(Config{}), Variant: "tmk",
	}
	l := core.NewLayout()
	arr := l.F64Pages(64)
	prog := &core.Program{
		Name: "cs", SharedBytes: l.Size(), Locks: 4, Barriers: 2,
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			for round := 0; round < 6; round++ {
				for dq := 0; dq < np; dq++ {
					q := (p.Rank() + dq) % np
					p.Lock(q)
					for m := q * 16; m < (q+1)*16; m++ {
						arr.Set(p, m, arr.At(p, m)+1)
					}
					p.Unlock(q)
					p.Compute(20 * sim.Microsecond)
				}
			}
			p.Barrier(0)
			for m := 0; m < 64; m += 16 {
				if got := arr.At(p, m); got != float64(6*np) {
					fmt.Printf("BAD rank %d: arr[%d] = %v, want %v\n", p.Rank(), m, got, 6*np)
				}
			}
			p.Barrier(1)
			p.Finish()
		},
	}
	if _, err := core.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
}
