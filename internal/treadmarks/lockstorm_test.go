package treadmarks

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/interconnect"
	"repro/internal/msg"
	"repro/internal/sim"
)

// TestLockStorm mimics Water's phase-3 merge: many locks, every proc takes
// each lock once per round, with barriers between rounds.
func TestLockStorm(t *testing.T) {
	trace = os.Getenv("TRACE") != ""
	defer func() { trace = false }()
	cfg := core.Config{
		Nodes: 2, ProcsPerNode: 2,
		MC: interconnect.MCFirstGeneration(), Costs: core.DefaultCosts(),
		Msg: msg.DefaultParams(msg.ModePoll), PollingInstrumented: true,
		NewProtocol: New(Config{}), Variant: "tmk",
	}
	l := core.NewLayout()
	arr := l.F64Pages(64)
	prog := &core.Program{
		Name: "lockstorm", SharedBytes: l.Size(), Locks: 4, Barriers: 1,
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			for round := 0; round < 3; round++ {
				for dq := 0; dq < np; dq++ {
					q := (p.Rank() + dq) % np
					p.Lock(q)
					for m := q * 16; m < (q+1)*16; m++ {
						arr.Set(p, m, arr.At(p, m)+1)
					}
					p.Unlock(q)
					p.Compute(5 * sim.Microsecond)
				}
				p.Barrier(0)
			}
			for m := 0; m < 64; m++ {
				if got := arr.At(p, m); got != float64(3*np) {
					t.Errorf("rank %d: arr[%d] = %v, want %v", p.Rank(), m, got, 3*np)
				}
			}
			p.Finish()
		},
	}
	if _, err := core.Run(cfg, prog); err != nil {
		t.Fatal(err)
	}
}
