package sim

import (
	"fmt"
	"runtime"
)

// Proc is one simulated processor. All of its methods must be called from the
// processor's own body function (the goroutine started by Run), except
// Deliver and WakeAt which are called from whichever processor currently
// holds the baton.
type Proc struct {
	// ID is the global processor id, 0..NumProcs-1, dense by node.
	ID int
	// Node is the SMP node the processor belongs to.
	Node int
	// CPU is the processor's index within its node.
	CPU int

	eng    *Engine
	dom    *domain
	body   func(*Proc)
	resume chan struct{}

	now      Time
	state    procState
	queueSeq uint64 // validity stamp for run-queue entries
	queuedAt Time   // resume time of the live run-queue entry (state == stateQueued)

	// wakeToken records that a WakeAt was issued and not yet consumed by a
	// Block. Tokens survive intervening Yields so that a wake issued while
	// the target is merely between scheduling points is not lost.
	wakeToken   bool
	wakeTokenAt Time

	blockReason string

	// killed is set by the engine when a failed Run unwinds parked
	// goroutines; the next resume exits via runtime.Goexit.
	killed bool

	// poll, when non-nil, lets dispatchers evaluate this parked processor's
	// wait condition inline instead of resuming its goroutine (see PollWait).
	poll func() (bool, Time)

	inbox mailbox

	// lastYield tracks the clock at the most recent scheduler handoff so
	// that YieldIfQuantum can bound how far a processor runs ahead between
	// interaction points.
	lastYield Time

	// jstate is this processor's splitmix64 cost-jitter stream, seeded at Run
	// from (schedule seed, proc ID) when a jittering schedule is committed.
	// Advanced only by the owning goroutine, in program order.
	jstate uint64
}

// Engine returns the engine this processor belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the processor's virtual clock in nanoseconds.
func (p *Proc) Now() Time { return p.now }

// Advance adds d nanoseconds of local work to the processor's clock. It never
// yields; callers that can tolerate a scheduling point should follow up with
// YieldIfQuantum.
//
// Under a cost-jittering schedule (SetSchedule) the charged duration is
// inflated by a seed-derived amount in [0, d*CostJitter]: never shrunk, never
// past the declared fraction, so every jittered cost stays within the range
// the model layer declared legal. Integer arithmetic only; the intermediate
// product bounds d below ~100 virtual days per call, far past any real
// charge.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %d Advance(%d): negative duration", p.ID, d))
	}
	if k := p.eng.jitterK; k != 0 && d > 0 {
		u := int64(jitterNext(&p.jstate) & 1023)
		d += (d * u / 1024) * k / 1024
	}
	p.now += d
}

// AdvanceTo moves the clock forward to t if t is in the future; it is a no-op
// otherwise.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.now {
		p.now = t
	}
}

func (p *Proc) run() {
	<-p.resume // wait for the first dispatch
	if p.killed {
		return // engine teardown before the body ever ran
	}
	done := false
	defer func() {
		r := recover()
		if p.killed {
			// Engine teardown unwound us mid-yield; nobody is listening on
			// the reports channel any more.
			return
		}
		if r != nil {
			p.dom.reports <- report{p: p, kind: reportPanic, err: fmt.Errorf("sim: proc %d panicked: %v", p.ID, r)}
			return
		}
		if !done {
			// The body exited via runtime.Goexit (e.g. t.Fatalf in a test
			// body). Report it so the engine does not hang.
			p.dom.reports <- report{p: p, kind: reportPanic, err: fmt.Errorf("sim: proc %d exited abnormally (runtime.Goexit)", p.ID)}
		}
	}()
	p.body(p)
	done = true
	p.dom.reports <- report{p: p, kind: reportDone}
}

// Yield hands the baton back to the scheduler and resumes when this processor
// once again has the minimum clock among runnable processors. Every globally
// visible action must be preceded by a Yield (directly or via Block) so that
// cross-processor interactions happen in virtual-time order.
func (p *Proc) Yield() { p.yieldUntil(p.now) }

// YieldUntil parks the processor until virtual time t, resuming earlier if
// another processor issues a WakeAt with an earlier time (message delivery
// does this). Unlike SleepUntil, the clock is not advanced up front, so an
// early wake resumes with the clock unchanged.
func (p *Proc) YieldUntil(t Time) {
	if t < p.now {
		t = p.now
	}
	p.yieldUntil(t)
}

// dsmvet:dispatch — runs on the yielding processor's goroutine, which holds
// the baton.
func (p *Proc) yieldUntil(t Time) {
	if p.dom.polling {
		panic(fmt.Sprintf("sim: proc %d yielded inside a dispatcher-run poll (PollWait closures must not yield)", p.ID))
	}
	if p.dom.canElide(t) {
		// Fast path: the scheduler would hand the baton straight back, so
		// perform exactly the state updates the round-trip would have made —
		// reset the quantum origin and advance the clock to the resume time —
		// and keep running. Bit-exact with the slow path: no other processor
		// could have run in between.
		p.dom.elided++
		p.lastYield = p.now
		if t > p.now {
			p.now = t
		}
		return
	}
	p.lastYield = p.now
	if p.eng.fastYield && p.dom.handoff(p, t) {
		// Baton passed (or bounced straight back) without waking the dispatcher.
		if p.killed {
			runtime.Goexit()
		}
		return
	}
	p.queuedAt = t
	p.dom.reports <- report{p: p, kind: reportYield, at: t}
	<-p.resume
	if p.killed {
		runtime.Goexit()
	}
}

// PollWait repeatedly evaluates poll until it reports done. A poll returning
// (false, next) means "re-evaluate me at virtual time next"; the processor's
// clock is expected to already be at next (polls advance it themselves, like
// a spin loop's backoff sleep).
//
// This is the scheduling primitive behind spin waits. Its value over a plain
// sleep-yield loop is host cost: when the processor parks, the poll closure
// is registered with the scheduler, and whichever goroutine dispatches the
// processor's queue entry — a peer's direct handoff or the domain worker —
// evaluates the poll inline, re-queueing on false without ever switching to
// this goroutine. The processor's goroutine is only resumed when the poll
// reports done. A contended spin that used to cost two goroutine switches
// per probe costs zero. This is bit-exact with the yield loop: the closure
// runs at exactly the same virtual times, in the same global order, with the
// same effects — only the host goroutine executing it differs.
//
// dsmvet:dispatch — runs on the polling processor's goroutine, which holds
// the baton at every touch of domain state.
//
// The contract is that poll must not yield, block, park, or otherwise touch
// the scheduler (delivering messages and waking other processors is fine) —
// it runs on a goroutine that already holds a baton mid-dispatch. Violations
// panic. Polls also must not close over goroutine identity (goroutine-local
// state, testing.T.Helper, ...).
func (p *Proc) PollWait(poll func() (done bool, next Time)) {
	for {
		done, next := poll()
		if done {
			return
		}
		if next < p.now {
			next = p.now
		}
		if p.dom.canElide(next) {
			// Nothing else can run before next: skip the park entirely,
			// exactly as an elided yield would.
			p.dom.elided++
			p.lastYield = p.now
			if next > p.now {
				p.now = next
			}
			continue
		}
		p.lastYield = p.now
		if !p.eng.fastYield {
			// Slow path pinned (SIM_NO_FASTPATH): behave exactly like a
			// sleep-yield loop, evaluating every poll on this goroutine.
			p.queuedAt = next
			p.dom.reports <- report{p: p, kind: reportYield, at: next}
			<-p.resume
			if p.killed {
				runtime.Goexit()
			}
			continue
		}
		p.poll = poll
		if p.dom.handoff(p, next) {
			if p.killed {
				runtime.Goexit()
			}
			if p.poll == nil {
				return // a dispatcher saw the poll report done and resumed us
			}
			p.poll = nil // own entry bounced straight back: keep polling here
			continue
		}
		// No successor inside the window: report to the worker, which will
		// evaluate the poll inline from its dispatch loop.
		p.queuedAt = next
		p.dom.reports <- report{p: p, kind: reportYield, at: next}
		<-p.resume
		if p.killed {
			runtime.Goexit()
		}
		if p.poll == nil {
			return
		}
		p.poll = nil
	}
}

// YieldIfQuantum yields only if the processor has run more than quantum
// nanoseconds since its last scheduling point. Long local computations call
// this periodically so that their clock does not race arbitrarily far ahead
// of processors that might want to interact with them.
func (p *Proc) YieldIfQuantum(quantum Time) {
	if p.now-p.lastYield >= quantum {
		p.Yield()
	}
}

// CheckpointQuiet reports whether a poll-and-yield checkpoint would be a
// no-op at the current clock: no message is visible in the inbox and the
// processor is still within its quantum. Hot access paths consult this
// before paying for the full checkpoint; the answer is exact, not heuristic,
// so skipping on true cannot change any virtual-time result.
func (p *Proc) CheckpointQuiet(quantum Time) bool {
	return (len(p.inbox.msgs) == 0 || p.inbox.msgs[0].At > p.now) &&
		p.now-p.lastYield < quantum
}

// dsmvet:dispatch — runs on the blocking processor's goroutine, which holds
// the baton.
//
// Block parks the processor until another processor calls WakeAt (or until a
// message is delivered by code that wakes it). The reason string appears in
// deadlock reports. If an unconsumed wake is outstanding (issued at any point
// since the last Block returned), it is consumed immediately and the
// processor does not park. Callers must therefore treat Block as a condition
// variable wait: re-check the condition in a loop.
func (p *Proc) Block(reason string) {
	if p.dom.polling {
		panic(fmt.Sprintf("sim: proc %d blocked inside a dispatcher-run poll (PollWait closures must not block)", p.ID))
	}
	if p.wakeToken {
		p.wakeToken = false
		p.AdvanceTo(p.wakeTokenAt)
		return
	}
	p.blockReason = reason
	p.lastYield = p.now
	if p.eng.fastYield && p.dom.dispatchBlocked(p) {
		// Baton passed directly; a WakeAt re-queued us and a dispatcher
		// (worker or peer) handed it back.
	} else {
		kind := reportBlock
		if p.state == stateQueued {
			// An inline poll's delivery woke us while dispatchBlocked was
			// looking for a successor, but our entry lies past the window
			// horizon: park as queued, not blocked, so the entry stays live.
			kind = reportParked
		}
		p.dom.reports <- report{p: p, kind: kind}
		<-p.resume
	}
	if p.killed {
		runtime.Goexit()
	}
	p.blockReason = ""
	p.wakeToken = false // the wake that resumed us is consumed
}

// wakeLocal makes the target processor runnable no earlier than virtual time
// t in its own domain and deposits a wake token consumed by the target's next
// Block. If the target is blocked it is queued to resume at max(its clock,
// t). If it is already queued with a later resume time, the earlier time
// wins. Must only run while the target's domain is quiescent for the caller:
// by the domain's own baton holder, or by the coordinator between windows.
func wakeLocal(target *Proc, t Time) {
	if !target.wakeToken || t < target.wakeTokenAt {
		target.wakeToken = true
		target.wakeTokenAt = t
	}
	switch target.state {
	case stateBlocked:
		target.dom.enqueue(target, t)
	case stateQueued:
		if t < target.queuedAt {
			// Supersede the stale entry: pushing with a fresh sequence stamp
			// invalidates the old one, which is skipped when popped.
			target.dom.enqueue(target, t)
		}
	}
}

// WakeAt makes the target processor runnable no earlier than virtual time t.
// It must be called by the processor currently holding the baton (or by the
// engine before Run). In parallel mode the engine cannot tell which domain
// the calling goroutine belongs to, so this form is only legal sequentially;
// use Proc.WakeAt, which names the caller, instead.
func (e *Engine) WakeAt(target *Proc, t Time) {
	if e.parallelActive {
		panic("sim: Engine.WakeAt is ambiguous in parallel mode; use the caller's Proc.WakeAt")
	}
	wakeLocal(target, t)
}

// WakeAt makes target runnable no earlier than virtual time t, with p — the
// processor currently holding its domain's baton — as the caller. Within a
// domain (or a sequential engine) this is the plain wake. Across domains the
// wake is staged and applied by the coordinator at the next window boundary;
// t must then be at least the engine's lookahead past p's clock.
func (p *Proc) WakeAt(target *Proc, t Time) {
	if !p.eng.parallelActive || target.dom == p.dom {
		wakeLocal(target, t)
		return
	}
	p.eng.checkLookahead(p, t)
	target.dom.stage(crossEvent{kind: crossWake, target: target.ID, at: t, from: p.dom.id})
}

// SleepUntil advances the processor's clock to virtual time t and yields, so
// that any processor with an earlier clock runs first. If t is not in the
// future it returns immediately without yielding.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.now {
		return
	}
	p.now = t
	p.Yield()
}

// Sleep blocks the processor for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) { p.SleepUntil(p.now + d) }
