package sim

// Msg is a timestamped message in a processor's inbox. Higher layers (the
// messaging and protocol packages) define the meaning of Kind and Data.
type Msg struct {
	// At is the virtual arrival time: the message is invisible to the
	// receiver until its clock reaches At.
	At Time
	// Seq is a globally unique sequence number used to order messages that
	// arrive at the same instant (deterministic tie-breaking).
	Seq uint64
	// From is the sending processor's id (-1 for engine-generated events).
	From int
	// Kind tags the message for the receiving layer.
	Kind int
	// Data is the payload.
	Data any
}

// mailbox keeps messages ordered by (At, Seq). Insertion keeps the slice
// sorted; traffic per processor is modest (protocol messages, not data-plane
// packets), so an ordered slice beats a heap on constant factors and gives
// stable iteration for free.
type mailbox struct {
	msgs []Msg
}

func (mb *mailbox) insert(m Msg) {
	// Find insertion point from the back: messages usually arrive roughly in
	// order, so this is O(1) amortized in the common case.
	i := len(mb.msgs)
	for i > 0 {
		prev := mb.msgs[i-1]
		if prev.At < m.At || (prev.At == m.At && prev.Seq < m.Seq) {
			break
		}
		i--
	}
	mb.msgs = append(mb.msgs, Msg{})
	copy(mb.msgs[i+1:], mb.msgs[i:])
	mb.msgs[i] = m
}

// Deliver places a message in the target processor's inbox and, if the target
// is parked, arranges for it to be woken no later than the arrival time. It
// must be called by a processor holding a baton — in parallel mode the sender
// is identified by m.From, so cross-domain messages must be built with the
// sender's NewMsg (or carry a valid From), and their arrival time must be at
// least the engine's lookahead past the sender's clock.
func (p *Proc) Deliver(m Msg) {
	e := p.eng
	if !e.parallelActive {
		if m.Seq == 0 {
			m.Seq = p.dom.nextMsgSeq()
		}
		p.inbox.insert(m)
		wakeLocal(p, m.At)
		return
	}
	if m.From < 0 || m.From >= len(e.procs) {
		panic("sim: parallel Deliver needs a valid sender (Msg.From) to identify the sending domain")
	}
	sender := e.procs[m.From]
	if m.Seq == 0 {
		m.Seq = sender.dom.nextMsgSeq()
	}
	if sender.dom == p.dom {
		p.inbox.insert(m)
		wakeLocal(p, m.At)
		return
	}
	// sender is the baton holder of its own domain (Deliver's contract), so
	// its clock is safe to read from this goroutine.
	e.checkLookahead(sender, m.At)
	p.dom.stage(crossEvent{kind: crossDeliver, target: p.ID, at: m.At, from: sender.dom.id, msg: m})
}

// NewMsg builds a message stamped with a fresh global sequence number, sent
// by this processor.
func (p *Proc) NewMsg(at Time, kind int, data any) Msg {
	return Msg{At: at, Seq: p.dom.nextMsgSeq(), From: p.ID, Kind: kind, Data: data}
}

// TryRecv removes and returns the earliest message whose arrival time is not
// in the processor's future. It reports false if no message is currently
// visible.
func (p *Proc) TryRecv() (Msg, bool) {
	if len(p.inbox.msgs) == 0 || p.inbox.msgs[0].At > p.now {
		return Msg{}, false
	}
	m := p.inbox.msgs[0]
	p.inbox.msgs = p.inbox.msgs[1:]
	return m, true
}

// PeekInbox reports whether any message is visible at the current clock
// without removing it.
func (p *Proc) PeekInbox() (Msg, bool) {
	if len(p.inbox.msgs) == 0 || p.inbox.msgs[0].At > p.now {
		return Msg{}, false
	}
	return p.inbox.msgs[0], true
}

// InboxLen returns the total number of messages in the inbox, including ones
// that have not yet arrived in virtual time.
func (p *Proc) InboxLen() int { return len(p.inbox.msgs) }

// Recv returns the earliest visible message, parking the processor until one
// arrives. The reason string appears in deadlock reports. The processor's
// clock advances to the arrival time of the returned message if needed.
func (p *Proc) Recv(reason string) Msg {
	for {
		if m, ok := p.TryRecv(); ok {
			return m
		}
		if len(p.inbox.msgs) > 0 {
			// Only future messages: park until the earliest arrives, or until
			// an even earlier delivery wakes us.
			p.YieldUntil(p.inbox.msgs[0].At)
			continue
		}
		p.Block(reason)
	}
}
