package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// scheduleWorkload attaches a 6-round message-passing ring to the engine's
// processors and returns the event trace buffer. Every processor charges the
// same cost per round, so without perturbation every round is a pile of
// same-instant ties — exactly the orderings FlipTies is supposed to explore.
// Appends are baton-serialized (one goroutine runs at a time), so the trace
// order is the event order.
func scheduleWorkload(e *Engine) *[]string {
	var trace []string
	n := e.NumProcs()
	for i := 0; i < n; i++ {
		p := e.Proc(i)
		e.Go(p, func(p *Proc) {
			const kindPing = 7
			peer := e.Proc((p.ID + 1) % n)
			for r := 0; r < 6; r++ {
				p.Advance(200)
				p.Yield()
				trace = append(trace, fmt.Sprintf("p%d r%d send t=%d", p.ID, r, p.Now()))
				peer.Deliver(p.NewMsg(p.Now()+6000, kindPing, r))
				m := p.Recv("ping")
				trace = append(trace, fmt.Sprintf("p%d r%d recv t=%d seq=%d from p%d", p.ID, r, p.Now(), m.Seq, m.From))
			}
		})
	}
	return &trace
}

// runScheduled executes the workload under the given schedule and returns the
// trace as one byte-comparable string plus the engine for inspection.
func runScheduled(t *testing.T, nodes, ppn int, s Schedule, parallel bool) (string, *Engine) {
	t.Helper()
	e := mustEngine(t, nodes, ppn)
	if parallel {
		e.SetParallel(true)
		e.SetLookahead(5200)
	}
	e.SetSchedule(s)
	trace := scheduleWorkload(e)
	if err := e.Run(); err != nil {
		t.Fatalf("run under schedule %+v: %v", s, err)
	}
	return strings.Join(*trace, "\n"), e
}

func fullSchedule(seed uint64) Schedule {
	return Schedule{Seed: seed, CostJitter: 0.75, FlipTies: true, Stagger: 3 * Millisecond}
}

// TestScheduleDeterminism: the same (program, schedule seed) pair must replay
// to a byte-identical event trace at any GOMAXPROCS — the perturbation layer
// is a pure function of its seeds, never of host scheduling.
func TestScheduleDeterminism(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("GOMAXPROCS=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for _, seed := range []uint64{1, 2, 42} {
				a, _ := runScheduled(t, 2, 2, fullSchedule(seed), false)
				b, _ := runScheduled(t, 2, 2, fullSchedule(seed), false)
				if a != b {
					t.Fatalf("seed %d: two runs diverged:\n--- run 1:\n%s\n--- run 2:\n%s", seed, a, b)
				}
			}
		})
	}
}

// TestScheduleDistinctSeeds: different schedule seeds must actually explore
// different orderings — otherwise the harness sweeps one schedule N times.
func TestScheduleDistinctSeeds(t *testing.T) {
	seen := map[string]uint64{}
	distinct := 0
	for seed := uint64(1); seed <= 8; seed++ {
		tr, _ := runScheduled(t, 2, 2, fullSchedule(seed), false)
		if _, dup := seen[tr]; !dup {
			distinct++
		}
		seen[tr] = seed
	}
	if distinct < 4 {
		t.Fatalf("only %d distinct traces across 8 schedule seeds", distinct)
	}
}

// TestScheduleZeroValueCanonical: a zero (or disabled) schedule must leave
// the canonical ordering untouched.
func TestScheduleZeroValueCanonical(t *testing.T) {
	if (Schedule{}).Enabled() {
		t.Fatal("zero schedule reports enabled")
	}
	if (Schedule{CostJitter: 0.5, FlipTies: true, Stagger: 100}).Enabled() {
		t.Fatal("schedule with zero seed reports enabled")
	}
	base, _ := runScheduled(t, 2, 2, Schedule{}, false)
	e := mustEngine(t, 2, 2)
	trace := scheduleWorkload(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(*trace, "\n"); got != base {
		t.Fatalf("zero schedule changed the canonical trace:\n--- with SetSchedule(Schedule{}):\n%s\n--- without:\n%s", base, got)
	}
}

// TestScheduleJitterBounds: jittered costs only ever grow, and never past the
// declared fraction — the legality contract the protocols rely on.
func TestScheduleJitterBounds(t *testing.T) {
	const steps, step = 50, 1000
	run := func(s Schedule) Time {
		e := mustEngine(t, 1, 1)
		e.SetSchedule(s)
		e.Go(e.Proc(0), func(p *Proc) {
			for i := 0; i < steps; i++ {
				p.Advance(step)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.MaxTime()
	}
	base := run(Schedule{})
	if base != steps*step {
		t.Fatalf("canonical clock %d, want %d", base, steps*step)
	}
	inflated := false
	for seed := uint64(1); seed <= 5; seed++ {
		got := run(Schedule{Seed: seed, CostJitter: 0.5})
		if got < base || got > base+base/2 {
			t.Fatalf("seed %d: jittered clock %d outside [%d, %d]", seed, got, base, base+base/2)
		}
		if got > base {
			inflated = true
		}
	}
	if !inflated {
		t.Fatal("cost jitter never inflated any cost across 5 seeds")
	}
}

// TestScheduleTieFlip: with ties flipped (and nothing else perturbed), the
// trace must differ from canonical for some seed — and virtual clocks must
// not move, because tie-flipping only reorders same-instant events.
func TestScheduleTieFlip(t *testing.T) {
	base, be := runScheduled(t, 2, 2, Schedule{}, false)
	flipped := false
	for seed := uint64(1); seed <= 8; seed++ {
		tr, fe := runScheduled(t, 2, 2, Schedule{Seed: seed, FlipTies: true}, false)
		if fe.MaxTime() != be.MaxTime() {
			t.Fatalf("seed %d: tie flip moved the clock: %d vs %d", seed, fe.MaxTime(), be.MaxTime())
		}
		if tr != base {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("FlipTies never changed the trace across 8 seeds")
	}
}

// TestScheduleStagger: staggered starts stay within [0, Stagger] and
// de-synchronize the lockstep startup for some seed.
func TestScheduleStagger(t *testing.T) {
	const maxOff = 10 * Microsecond
	starts := func(s Schedule) []Time {
		e := mustEngine(t, 2, 2)
		e.SetSchedule(s)
		var at []Time
		for i := 0; i < e.NumProcs(); i++ {
			p := e.Proc(i)
			e.Go(p, func(p *Proc) { at = append(at, p.Now()) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	spread := false
	for seed := uint64(1); seed <= 4; seed++ {
		at := starts(Schedule{Seed: seed, Stagger: maxOff})
		for _, v := range at {
			if v < 0 || v > maxOff {
				t.Fatalf("seed %d: start offset %d outside [0, %d]", seed, v, maxOff)
			}
		}
		for i := 1; i < len(at); i++ {
			if at[i] != at[0] {
				spread = true
			}
		}
	}
	if !spread {
		t.Fatal("stagger never separated any two start times across 4 seeds")
	}
}

// TestParallelScheduleFallback: a perturbed run pins the sequential engine
// and the slow path even when node-parallel execution was requested — the
// trace must be identical to the plain sequential perturbed run. (Named
// TestParallel* so CI's GOMAXPROCS 1/2/8 race loop covers it.)
func TestParallelScheduleFallback(t *testing.T) {
	for _, seed := range []uint64{3, 9} {
		s := fullSchedule(seed)
		seq, se := runScheduled(t, 2, 2, s, false)
		par, pe := runScheduled(t, 2, 2, s, true)
		if pe.ParallelActive() {
			t.Fatal("perturbed run engaged the parallel engine")
		}
		if pe.Domains() != 1 {
			t.Fatalf("perturbed run committed to %d domains, want 1", pe.Domains())
		}
		if par != seq {
			t.Fatalf("seed %d: parallel-requested perturbed trace diverged from sequential:\n--- sequential:\n%s\n--- parallel-requested:\n%s", seed, seq, par)
		}
		if se.ElidedYields() != 0 || pe.ElidedYields() != 0 {
			t.Fatalf("perturbed run used yield elision (%d/%d elisions): slow path not pinned", se.ElidedYields(), pe.ElidedYields())
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	for _, bad := range []Schedule{
		{Seed: 1, CostJitter: -0.1},
		{Seed: 1, CostJitter: MaxCostJitter + 1},
		{Seed: 1, Stagger: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("schedule %+v validated", bad)
		}
	}
	if err := (Schedule{Seed: 1, CostJitter: 1, FlipTies: true, Stagger: Millisecond}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetScheduleAfterRunPanics(t *testing.T) {
	e := mustEngine(t, 1, 1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetSchedule after Run did not panic")
		}
	}()
	e.SetSchedule(Schedule{Seed: 1, FlipTies: true})
}
