package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// irregularWorkload drives yields, quantum yields, message traffic, and
// block/wake pairs across eight processors and returns the final clocks.
// Used to compare the fast scheduling paths against the plain engine loop.
func irregularWorkload(t *testing.T, fast bool) ([]Time, uint64, uint64) {
	t.Helper()
	e := mustEngine(t, 2, 4)
	e.SetFastYield(fast)
	n := e.NumProcs()
	for i, p := range e.Procs() {
		i := i
		e.Go(p, func(p *Proc) {
			for step := 0; step < 30; step++ {
				p.Advance(Time((i*37+step*101)%500 + 1))
				switch step % 4 {
				case 0:
					p.Yield()
				case 1:
					p.YieldIfQuantum(200)
				case 2:
					p.YieldUntil(p.Now() + Time(i*13))
				}
				target := e.Proc((i + step) % n)
				if target != p {
					target.Deliver(p.NewMsg(p.Now()+Time(100+i), step, nil))
					e.WakeAt(target, p.Now()+Time(50+i))
				}
				for {
					if _, ok := p.TryRecv(); !ok {
						break
					}
				}
			}
			for p.InboxLen() > 0 {
				p.Recv("drain")
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	clocks := make([]Time, n)
	for i, p := range e.Procs() {
		clocks[i] = p.Now()
	}
	return clocks, e.ElidedYields(), e.DirectHandoffs()
}

// TestFastYieldEquivalence checks that yield elision and direct baton handoff
// are bit-exact: the same irregular workload must land every processor on
// exactly the same final clock with the fast paths on and off.
func TestFastYieldEquivalence(t *testing.T) {
	slow, slowElided, slowHandoffs := irregularWorkload(t, false)
	fast, fastElided, fastHandoffs := irregularWorkload(t, true)
	if slowElided != 0 || slowHandoffs != 0 {
		t.Fatalf("slow path took fast paths: elided=%d handoffs=%d", slowElided, slowHandoffs)
	}
	if fastElided == 0 && fastHandoffs == 0 {
		t.Fatal("fast path never elided or handed off; workload not exercising it")
	}
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("proc %d clock differs: slow=%d fast=%d", i, slow[i], fast[i])
		}
	}
}

// TestElisionCountsSoloYields checks that a lone processor's quantum yields
// are satisfied without scheduler round-trips: with an empty run queue the
// dispatch loop could only hand the baton straight back.
func TestElisionCountsSoloYields(t *testing.T) {
	e := mustEngine(t, 1, 1)
	e.SetFastYield(true)
	e.Go(e.Proc(0), func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(10)
			p.Yield()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.ElidedYields(); got != 100 {
		t.Fatalf("ElidedYields = %d, want 100", got)
	}
}

// TestHandoffBypassesEngine checks that a two-processor ping-pong passes the
// baton directly between the processor goroutines.
func TestHandoffBypassesEngine(t *testing.T) {
	e := mustEngine(t, 1, 2)
	e.SetFastYield(true)
	for _, p := range e.Procs() {
		e.Go(p, func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Advance(10)
				p.Yield()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.DirectHandoffs() == 0 {
		t.Fatal("ping-pong workload produced no direct handoffs")
	}
}

// waitGoroutines polls until the process goroutine count drops to at most
// want or the deadline passes, then returns the final count.
func waitGoroutines(want int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(end) {
			return n
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestNoGoroutineLeakOnDeadlock checks that an aborted Run unwinds every
// parked processor goroutine instead of leaking it.
func TestNoGoroutineLeakOnDeadlock(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := mustEngine(t, 1, 4)
		for _, p := range e.Procs() {
			e.Go(p, func(p *Proc) {
				p.Advance(Time(p.ID * 10))
				p.Yield()
				p.Block("leak-test: never woken")
			})
		}
		err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("Run = %v, want deadlock", err)
		}
	}
	if n := waitGoroutines(base+2, 5*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked after deadlocks: %d -> %d", base, n)
	}
}

// TestNoGoroutineLeakOnPanic checks the same for the panic abort path, with
// the surviving processors parked at various scheduling points.
func TestNoGoroutineLeakOnPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := mustEngine(t, 1, 4)
		e.Go(e.Proc(0), func(p *Proc) {
			p.Advance(500)
			p.Yield()
			panic("leak-test boom")
		})
		e.Go(e.Proc(1), func(p *Proc) {
			for {
				p.Advance(100)
				p.Yield()
			}
		})
		e.Go(e.Proc(2), func(p *Proc) { p.Block("leak-test: parked") })
		e.Go(e.Proc(3), func(p *Proc) { p.YieldUntil(Second) })
		err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("Run = %v, want panic propagation", err)
		}
	}
	if n := waitGoroutines(base+2, 5*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked after panics: %d -> %d", base, n)
	}
}

// TestNoGoroutineLeakSlowPath repeats the deadlock leak check with the fast
// paths disabled, covering the plain report/resume unwinding.
func TestNoGoroutineLeakSlowPath(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		e := mustEngine(t, 1, 4)
		e.SetFastYield(false)
		for _, p := range e.Procs() {
			e.Go(p, func(p *Proc) {
				p.Yield()
				p.Block("leak-test: never woken")
			})
		}
		if err := e.Run(); err == nil {
			t.Fatal("expected deadlock")
		}
	}
	if n := waitGoroutines(base+2, 5*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked: %d -> %d", base, n)
	}
}

// BenchmarkYieldElided measures the elided yield path: a lone processor whose
// yields never need a scheduler round-trip.
func BenchmarkYieldElided(b *testing.B) {
	e, err := NewEngine(Config{Nodes: 1, ProcsPerNode: 1})
	if err != nil {
		b.Fatal(err)
	}
	e.SetFastYield(true)
	n := b.N
	e.Go(e.Proc(0), func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Advance(10)
			p.Yield()
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkYieldSlowPath measures the two-processor ping-pong with every fast
// path disabled: each yield is a full report/resume round-trip through the
// engine goroutine.
func BenchmarkYieldSlowPath(b *testing.B) {
	e, err := NewEngine(Config{Nodes: 1, ProcsPerNode: 2})
	if err != nil {
		b.Fatal(err)
	}
	e.SetFastYield(false)
	n := b.N
	for _, p := range e.Procs() {
		e.Go(p, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Advance(10)
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
