package sim

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// testLookahead is the declared minimum cross-domain latency used by the
// parallel workloads below. Every cross-node interaction they issue targets a
// time at least this far past the sender's clock.
const testLookahead = Time(5000)

// clusterWorkload drives an irregular mix of local compute, same-node and
// cross-node messaging, spin waits, and block/wake pairs across a multi-node
// cluster, and returns the final clocks plus the engine for counter
// inspection. The same body runs under any engine mode, so it doubles as the
// sequential/parallel equivalence oracle.
func clusterWorkload(t *testing.T, nodes, ppn int, parallel bool) ([]Time, *Engine) {
	t.Helper()
	e := mustEngine(t, nodes, ppn)
	e.SetParallel(parallel)
	e.SetLookahead(testLookahead)
	n := e.NumProcs()
	// Each processor drains exactly the number of messages addressed to it:
	// waiting on InboxLen would observe in-flight (invisible) messages, which
	// the staged cross-domain path intentionally does not expose.
	expect := make([]int, n)
	for i := 0; i < n; i++ {
		for step := 0; step < 40; step++ {
			if tgt := (i + step + 1) % n; tgt != i {
				expect[tgt]++
			}
		}
	}
	for i, p := range e.Procs() {
		i := i
		e.Go(p, func(p *Proc) {
			received := 0
			for step := 0; step < 40; step++ {
				p.Advance(Time((i*131 + step*71) % 900))
				switch step % 3 {
				case 0:
					p.Yield()
				case 1:
					p.YieldIfQuantum(300)
				}
				target := e.Proc((i + step + 1) % n)
				if target != p {
					// Cross-node traffic must carry at least the declared
					// lookahead of latency; same-node traffic may be faster.
					lat := Time(200 + i)
					if target.Node != p.Node {
						lat = testLookahead + Time(10*i+step)
					}
					target.Deliver(p.NewMsg(p.Now()+lat, step, nil))
					p.WakeAt(target, p.Now()+lat)
				}
				if step%7 == 3 {
					// Spin until the inbox is visibly non-empty or a bounded
					// number of probes pass, advancing like a backoff loop.
					probes := 0
					p.PollWait(func() (bool, Time) {
						if _, ok := p.PeekInbox(); ok || probes > 25 {
							return true, 0
						}
						probes++
						p.Advance(150)
						return false, p.Now()
					})
				}
				for {
					if _, ok := p.TryRecv(); !ok {
						break
					}
					received++
				}
			}
			for received < expect[i] {
				p.Recv("drain")
				received++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	clocks := make([]Time, n)
	for i, p := range e.Procs() {
		clocks[i] = p.Now()
	}
	return clocks, e
}

// TestParallelEquivalence checks the tentpole claim: the node-parallel window
// protocol produces exactly the same virtual-time results as the sequential
// engine for a workload whose cross-node interactions respect the declared
// lookahead.
func TestParallelEquivalence(t *testing.T) {
	seq, se := clusterWorkload(t, 4, 2, false)
	par, pe := clusterWorkload(t, 4, 2, true)
	if se.ParallelActive() {
		t.Fatal("sequential run reported parallelActive")
	}
	if !pe.ParallelActive() {
		t.Fatal("parallel run did not engage parallel mode")
	}
	if pe.Domains() != 4 {
		t.Fatalf("Domains = %d, want 4", pe.Domains())
	}
	if pe.HorizonRounds() == 0 {
		t.Fatal("parallel run executed zero windows")
	}
	if pe.CrossEvents() == 0 {
		t.Fatal("parallel run drained zero cross-domain events; workload not exercising the protocol")
	}
	if ties := pe.CrossTies(); ties != 0 {
		t.Fatalf("workload produced %d cross-domain ties; equivalence only guaranteed at zero", ties)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("proc %d clock differs: sequential=%d parallel=%d", i, seq[i], par[i])
		}
	}
	if se.MaxTime() != pe.MaxTime() {
		t.Fatalf("MaxTime differs: sequential=%d parallel=%d", se.MaxTime(), pe.MaxTime())
	}
}

// TestParallelDeterminism runs the parallel engine repeatedly at different
// GOMAXPROCS settings: host scheduling freedom must not leak into any final
// clock.
func TestParallelDeterminism(t *testing.T) {
	ref, _ := clusterWorkload(t, 4, 2, true)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			got, _ := clusterWorkload(t, 4, 2, true)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("GOMAXPROCS=%d rep=%d: proc %d clock %d, want %d", procs, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestParallelRequiresLookaheadAndNodes checks the fallback rule: parallel
// mode only engages on a multi-node cluster with a positive declared
// lookahead; otherwise the engine runs sequentially.
func TestParallelRequiresLookaheadAndNodes(t *testing.T) {
	single := mustEngine(t, 1, 4)
	single.SetParallel(true)
	single.SetLookahead(testLookahead)
	if single.Domains() != 1 {
		t.Fatalf("single-node Domains = %d, want 1", single.Domains())
	}

	noLa := mustEngine(t, 4, 1)
	noLa.SetParallel(true)
	if noLa.Domains() != 1 {
		t.Fatalf("zero-lookahead Domains = %d, want 1", noLa.Domains())
	}

	e := mustEngine(t, 1, 2)
	e.SetParallel(true)
	e.SetLookahead(testLookahead)
	for _, p := range e.Procs() {
		e.Go(p, func(p *Proc) { p.Advance(10); p.Yield() })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.ParallelActive() {
		t.Fatal("single-node engine activated parallel mode")
	}
	if e.HorizonRounds() != 0 {
		t.Fatal("sequential fallback counted horizon rounds")
	}
}

// TestLookaheadViolationFailsRun checks that a cross-domain delivery closer
// than the declared lookahead aborts the run with a diagnostic instead of
// silently racing the window protocol.
func TestLookaheadViolationFailsRun(t *testing.T) {
	e := mustEngine(t, 2, 1)
	e.SetParallel(true)
	e.SetLookahead(testLookahead)
	e.Go(e.Proc(0), func(p *Proc) {
		target := e.Proc(1)
		target.Deliver(p.NewMsg(p.Now()+1, 0, nil)) // far below lookahead
	})
	e.Go(e.Proc(1), func(p *Proc) { p.Recv("waiting") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "lookahead violation") {
		t.Fatalf("Run = %v, want lookahead violation", err)
	}
}

// TestEngineWakeAtPanicsInParallel checks that the caller-ambiguous
// Engine.WakeAt form is rejected in parallel mode (Proc.WakeAt names the
// sending domain and must be used instead).
func TestEngineWakeAtPanicsInParallel(t *testing.T) {
	e := mustEngine(t, 2, 1)
	e.SetParallel(true)
	e.SetLookahead(testLookahead)
	e.Go(e.Proc(0), func(p *Proc) {
		e.WakeAt(e.Proc(1), p.Now()+testLookahead)
	})
	e.Go(e.Proc(1), func(p *Proc) { p.Block("waiting for wake") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("Run = %v, want Engine.WakeAt rejection", err)
	}
}

// TestProcWakeAtCrossDomain checks that a cross-domain Proc.WakeAt releases a
// blocked processor in another domain at the requested time.
func TestProcWakeAtCrossDomain(t *testing.T) {
	e := mustEngine(t, 2, 1)
	e.SetParallel(true)
	e.SetLookahead(testLookahead)
	const wakeAt = Time(12345 + testLookahead)
	e.Go(e.Proc(0), func(p *Proc) {
		p.Advance(12345)
		p.WakeAt(e.Proc(1), p.Now()+testLookahead)
	})
	var resumed Time
	e.Go(e.Proc(1), func(p *Proc) {
		p.Block("cross-domain wake")
		resumed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != wakeAt {
		t.Fatalf("woken at t=%d, want %d", resumed, wakeAt)
	}
}

// TestParallelDeadlockUnwinds checks that a cross-domain deadlock is detected
// (every domain idle with processors still blocked) and that the abort path
// unwinds every parked goroutine, including poll-parked ones.
func TestParallelDeadlockUnwinds(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		e := mustEngine(t, 2, 2)
		e.SetParallel(true)
		e.SetLookahead(testLookahead)
		for _, p := range e.Procs() {
			e.Go(p, func(p *Proc) {
				p.Advance(Time(p.ID * 100))
				p.Yield()
				p.Block("parallel leak-test: never woken")
			})
		}
		err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("Run = %v, want deadlock", err)
		}
	}
	if n := waitGoroutines(base+2, 5*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked after parallel deadlocks: %d -> %d", base, n)
	}
}

// TestParallelPanicUnwinds checks that a panic in one domain aborts the whole
// run and unwinds processors parked in every other domain.
func TestParallelPanicUnwinds(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		e := mustEngine(t, 2, 2)
		e.SetParallel(true)
		e.SetLookahead(testLookahead)
		e.Go(e.Proc(0), func(p *Proc) {
			p.Advance(500)
			p.Yield()
			panic("parallel leak-test boom")
		})
		e.Go(e.Proc(1), func(p *Proc) {
			for {
				p.Advance(100)
				p.Yield()
			}
		})
		e.Go(e.Proc(2), func(p *Proc) { p.Block("parallel leak-test: parked") })
		e.Go(e.Proc(3), func(p *Proc) { p.YieldUntil(Second) })
		err := e.Run()
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("Run = %v, want panic propagation", err)
		}
	}
	if n := waitGoroutines(base+2, 5*time.Second); n > base+2 {
		t.Fatalf("goroutines leaked after parallel panics: %d -> %d", base, n)
	}
}

// BenchmarkParallelSweep measures the parallel engine on a cross-node
// messaging workload; compare against the same workload sequentially by
// toggling the mode constant in the loop below.
func BenchmarkParallelSweep(b *testing.B) {
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for iter := 0; iter < b.N; iter++ {
				e, err := NewEngine(Config{Nodes: 4, ProcsPerNode: 2})
				if err != nil {
					b.Fatal(err)
				}
				e.SetParallel(parallel)
				e.SetLookahead(testLookahead)
				n := e.NumProcs()
				for i, p := range e.Procs() {
					i := i
					e.Go(p, func(p *Proc) {
						for step := 0; step < 300; step++ {
							p.Advance(Time((i*37+step*13)%700 + 50))
							p.Yield()
							target := e.Proc((i + 1) % n)
							if target != p {
								lat := Time(300)
								if target.Node != p.Node {
									lat = testLookahead
								}
								target.Deliver(p.NewMsg(p.Now()+lat, step, nil))
							}
							for {
								if _, ok := p.TryRecv(); !ok {
									break
								}
							}
						}
						for p.InboxLen() > 0 {
							p.Recv("drain")
						}
					})
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
