// Package sim provides a deterministic discrete-event simulation engine for a
// cluster of SMP nodes.
//
// Each simulated processor is a goroutine with its own virtual clock. Exactly
// one processor goroutine executes at any moment: control is handed back and
// forth between the engine and the running processor through unbuffered
// channels, so the simulation needs no locks and is bit-deterministic.
//
// The scheduling rule is the classic conservative one: the engine always
// resumes the runnable processor with the minimum virtual clock (ties are
// FIFO in queue-push order, which is itself deterministic). Processors
// accumulate virtual time locally with Advance and must Yield before
// performing any globally visible action (acquiring a
// lock, sending a message, updating a directory entry, ...). This guarantees
// that when a processor performs such an action at virtual time t, no other
// processor can still perform an earlier conflicting action: all runnable
// processors have clocks >= t and blocked processors can only be woken at
// times chosen by already-ordered events.
//
// Timing model: virtual time is int64 nanoseconds (type Time). Real wall-clock
// time plays no role anywhere in the package.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Config describes the simulated cluster shape.
type Config struct {
	// Nodes is the number of SMP nodes in the cluster.
	Nodes int
	// ProcsPerNode is the number of processors on each node.
	ProcsPerNode int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sim: config needs at least one node, got %d", c.Nodes)
	}
	if c.ProcsPerNode <= 0 {
		return fmt.Errorf("sim: config needs at least one processor per node, got %d", c.ProcsPerNode)
	}
	return nil
}

// TotalProcs returns the number of processors in the cluster.
func (c Config) TotalProcs() int { return c.Nodes * c.ProcsPerNode }

type procState uint8

const (
	stateNew     procState = iota
	stateQueued            // in the run queue, waiting to be resumed
	stateRunning           // currently holds the baton
	stateBlocked           // waiting for a Wake
	stateDone              // body function returned
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

type reportKind uint8

const (
	reportYield reportKind = iota
	reportBlock
	reportDone
	reportPanic
)

type report struct {
	p    *Proc
	kind reportKind
	at   Time // resume time for reportYield
	err  error
}

// Engine owns the simulated cluster: its processors, the run queue, and the
// global event ordering. Create one with NewEngine, add processors with
// NewProc, give each a body with Go, then call Run.
type Engine struct {
	cfg       Config
	procs     []*Proc
	runq      runQueue
	reports   chan report
	msgSeq    uint64 // global sequence for deterministic message tie-breaking
	pushCount uint64 // global run-queue push counter for FIFO tie-breaking
	started   bool
}

// NewEngine creates an engine for the given cluster shape and instantiates
// all of its processors. The processors have no bodies yet; attach them with
// Go before calling Run.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		reports: make(chan report),
	}
	for n := 0; n < cfg.Nodes; n++ {
		for c := 0; c < cfg.ProcsPerNode; c++ {
			p := &Proc{
				ID:     len(e.procs),
				Node:   n,
				CPU:    c,
				eng:    e,
				resume: make(chan struct{}),
			}
			e.procs = append(e.procs, p)
		}
	}
	return e, nil
}

// Config returns the cluster shape the engine was created with.
func (e *Engine) Config() Config { return e.cfg }

// Procs returns all processors in id order. The slice must not be modified.
func (e *Engine) Procs() []*Proc { return e.procs }

// Proc returns the processor with the given id.
func (e *Engine) Proc(id int) *Proc { return e.procs[id] }

// NumProcs returns the number of processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Go attaches a body function to a processor. The body starts executing, at
// virtual time 0, when Run is called. Go panics if called after Run or if the
// processor already has a body.
func (e *Engine) Go(p *Proc, body func(*Proc)) {
	if e.started {
		panic("sim: Go called after Run")
	}
	if p.body != nil {
		panic(fmt.Sprintf("sim: proc %d already has a body", p.ID))
	}
	p.body = body
}

// Run executes the simulation until every processor with a body has finished,
// or until no progress is possible (deadlock). It returns an error describing
// a deadlock or a panic inside a processor body.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true

	active := 0
	for _, p := range e.procs {
		if p.body == nil {
			p.state = stateDone
			continue
		}
		active++
		e.enqueue(p, 0)
		go p.run()
	}

	var firstErr error
	for active > 0 {
		ent, ok := e.runq.pop()
		if !ok {
			return e.deadlockError(active)
		}
		p := e.procs[ent.procID]
		if p.state != stateQueued || ent.seq != p.queueSeq {
			continue // stale queue entry superseded by a later Wake
		}
		if ent.at > p.now {
			p.now = ent.at
		}
		p.state = stateRunning
		p.resume <- struct{}{}
		r := <-e.reports
		switch r.kind {
		case reportYield:
			e.enqueue(p, r.at)
		case reportBlock:
			p.state = stateBlocked
		case reportDone:
			p.state = stateDone
			active--
		case reportPanic:
			p.state = stateDone
			active--
			if firstErr == nil {
				firstErr = r.err
			}
			// Drain: other goroutines are parked on their resume channels
			// and will be collected when the process exits; the simulation
			// result is already invalid.
			return firstErr
		}
	}
	return firstErr
}

func (e *Engine) deadlockError(active int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock with %d processors unfinished:", active)
	ids := make([]int, 0, len(e.procs))
	for _, p := range e.procs {
		if p.state != stateDone {
			ids = append(ids, p.ID)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := e.procs[id]
		fmt.Fprintf(&b, "\n  proc %d (node %d) %s at t=%dns: %s", p.ID, p.Node, p.state, p.now, p.blockReason)
	}
	return fmt.Errorf("%s", b.String())
}

// MaxTime returns the largest virtual clock over all processors. After Run it
// is the simulated parallel execution time.
func (e *Engine) MaxTime() Time {
	var max Time
	for _, p := range e.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

// nextMsgSeq hands out globally unique message sequence numbers, used to
// break ties between messages that arrive at the same virtual instant.
func (e *Engine) nextMsgSeq() uint64 {
	e.msgSeq++
	return e.msgSeq
}
