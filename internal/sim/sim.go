// Package sim provides a deterministic discrete-event simulation engine for a
// cluster of SMP nodes.
//
// Each simulated processor is a goroutine with its own virtual clock. The
// processors are partitioned into scheduling domains; exactly one processor
// goroutine executes at any moment within a domain: control is handed back
// and forth between the domain's dispatcher and the running processor through
// unbuffered channels, so intra-domain scheduling needs no locks and is
// bit-deterministic. A sequential engine (the default) has a single domain
// holding every processor, which is the classic one-goroutine-at-a-time
// discipline.
//
// The scheduling rule is the classic conservative one: the dispatcher always
// resumes the runnable processor with the minimum virtual clock (ties are
// FIFO in queue-push order, which is itself deterministic). Processors
// accumulate virtual time locally with Advance and must Yield before
// performing any globally visible action (acquiring a
// lock, sending a message, updating a directory entry, ...). This guarantees
// that when a processor performs such an action at virtual time t, no other
// processor can still perform an earlier conflicting action: all runnable
// processors have clocks >= t and blocked processors can only be woken at
// times chosen by already-ordered events.
//
// Parallel mode (SetParallel + SetLookahead, or SIM_PARALLEL=1) splits the
// cluster into one domain per node and advances the domains concurrently
// under a conservative window protocol: every cross-domain interaction must
// carry at least the declared lookahead of virtual latency, so each domain
// can safely execute all events below the global horizon
// min(next event) + lookahead without hearing from the others. Cross-domain
// messages and wakes are staged in per-domain buffers and applied by the
// coordinator between windows in deterministic (time, seq) order. See
// DESIGN.md §3b for the ordering argument and the exactness condition.
//
// Timing model: virtual time is int64 nanoseconds (type Time). Real wall-clock
// time plays no role anywhere in the package.
package sim

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// NoFastPathEnv is the environment variable that, when set to any non-empty
// value, disables the simulator's host-time fast paths (yield elision here,
// translation caching in internal/core). The fast paths are bit-exact — they
// change no virtual-time result — so the toggle exists purely so tests can
// run both paths and assert identical output.
const NoFastPathEnv = "SIM_NO_FASTPATH"

// FastPathEnabled reports whether the fast paths are enabled for engines and
// runtimes created from now on (the environment is consulted at creation
// time, not per operation).
//
// dsmvet:env-switch — declared SIM_* switch site; the only sanctioned kind
// of environment read in measured packages.
func FastPathEnabled() bool { return os.Getenv(NoFastPathEnv) == "" }

// ParallelRequested reports whether SIM_PARALLEL asks engines created from
// now on to default to node-parallel execution. A positive lookahead must
// still be declared per engine before parallelism engages.
//
// dsmvet:env-switch — declared SIM_* switch site; the only sanctioned kind
// of environment read in measured packages.
func ParallelRequested() bool { return os.Getenv(ParallelEnv) != "" }

// Time is virtual time in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Config describes the simulated cluster shape.
type Config struct {
	// Nodes is the number of SMP nodes in the cluster.
	Nodes int
	// ProcsPerNode is the number of processors on each node.
	ProcsPerNode int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sim: config needs at least one node, got %d", c.Nodes)
	}
	if c.ProcsPerNode <= 0 {
		return fmt.Errorf("sim: config needs at least one processor per node, got %d", c.ProcsPerNode)
	}
	return nil
}

// TotalProcs returns the number of processors in the cluster.
func (c Config) TotalProcs() int { return c.Nodes * c.ProcsPerNode }

type procState uint8

const (
	stateNew     procState = iota
	stateQueued            // in the run queue, waiting to be resumed
	stateRunning           // currently holds the baton
	stateBlocked           // waiting for a Wake
	stateDone              // body function returned
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

type reportKind uint8

const (
	reportYield reportKind = iota
	reportBlock
	// reportParked hands the baton to the worker without changing the
	// reporter's state: it is already queued (a wake raced with its block) or
	// already recorded. The worker just continues its dispatch loop.
	reportParked
	reportDone
	reportPanic
)

type report struct {
	p    *Proc
	kind reportKind
	at   Time // resume time for reportYield
	err  error
}

// Engine owns the simulated cluster: its processors, the scheduling domains,
// and the global event ordering. Create one with NewEngine, add processors
// with NewProc, give each a body with Go, then call Run.
type Engine struct {
	cfg     Config
	procs   []*Proc
	domains []*domain
	started bool

	fastYield bool // elide scheduler round-trips when provably inconsequential

	// parallel requests node-parallel execution; it only engages when
	// lookahead > 0 and the cluster has more than one node.
	parallel  bool
	lookahead Time
	// parallelActive is set at Run once the engine has committed to more
	// than one domain.
	parallelActive bool

	// sched is the committed schedule perturbation (zero value: canonical
	// order); jitterK is its cost-jitter fraction quantized to 1/1024ths so
	// the Advance hot path stays in integer arithmetic. See schedule.go.
	sched   Schedule
	jitterK int64

	rounds      uint64 // horizon windows executed (parallel mode)
	crossEvents uint64 // cross-domain events drained (parallel mode)
	crossTies   uint64 // same-instant cross-domain delivery collisions
}

// NewEngine creates an engine for the given cluster shape and instantiates
// all of its processors. The processors have no bodies yet; attach them with
// Go before calling Run.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		fastYield: FastPathEnabled(),
		parallel:  ParallelRequested(),
	}
	d := newDomain(e, 0)
	e.domains = []*domain{d}
	for n := 0; n < cfg.Nodes; n++ {
		for c := 0; c < cfg.ProcsPerNode; c++ {
			p := &Proc{
				ID:     len(e.procs),
				Node:   n,
				CPU:    c,
				eng:    e,
				dom:    d,
				resume: make(chan struct{}),
			}
			e.procs = append(e.procs, p)
			d.procs = append(d.procs, p)
		}
	}
	return e, nil
}

// Config returns the cluster shape the engine was created with.
func (e *Engine) Config() Config { return e.cfg }

// Procs returns all processors in id order. The slice must not be modified.
func (e *Engine) Procs() []*Proc { return e.procs }

// Proc returns the processor with the given id.
func (e *Engine) Proc(id int) *Proc { return e.procs[id] }

// NumProcs returns the number of processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Go attaches a body function to a processor. The body starts executing, at
// virtual time 0, when Run is called. Go panics if called after Run or if the
// processor already has a body.
func (e *Engine) Go(p *Proc, body func(*Proc)) {
	if e.started {
		panic("sim: Go called after Run")
	}
	if p.body != nil {
		panic(fmt.Sprintf("sim: proc %d already has a body", p.ID))
	}
	p.body = body
}

// SetFastYield enables or disables yield elision on this engine, overriding
// the SIM_NO_FASTPATH environment default. For tests that want to pin one
// path explicitly; must be called before Run.
func (e *Engine) SetFastYield(on bool) { e.fastYield = on }

// SetParallel requests (or suppresses) node-parallel execution, overriding
// the SIM_PARALLEL environment default. Parallel execution only engages when
// a positive lookahead has also been declared with SetLookahead and the
// cluster has more than one node; otherwise the engine runs sequentially.
// Must be called before Run.
func (e *Engine) SetParallel(on bool) { e.parallel = on }

// SetLookahead declares the minimum virtual latency of every cross-domain
// (cross-node) interaction: any Deliver or WakeAt that crosses domains must
// target a time at least `la` past the sender's clock, or Run fails. The
// model layer owns this number (e.g. interconnect.MCParams.MinCrossNodeLatency);
// declaring it too large is unsafe, too small merely shrinks the windows.
// Must be called before Run.
func (e *Engine) SetLookahead(la Time) {
	if la < 0 {
		panic(fmt.Sprintf("sim: negative lookahead %d", la))
	}
	e.lookahead = la
}

// Domains returns the number of scheduling domains the engine committed to
// at Run: 1 for sequential execution, Nodes for parallel. Before Run it
// reports what the current settings would commit to.
func (e *Engine) Domains() int {
	if e.started {
		return len(e.domains)
	}
	if e.parallel && e.lookahead > 0 && e.cfg.Nodes > 1 {
		return e.cfg.Nodes
	}
	return 1
}

// ParallelActive reports whether Run committed to more than one domain.
func (e *Engine) ParallelActive() bool { return e.parallelActive }

// dsmvet:dispatch — observational read, documented as valid only after Run
// (or between runs), when no domain is executing.
//
// ElidedYields returns the number of yields that were satisfied without a
// scheduler round-trip. Purely observational (tests and benchmarks).
func (e *Engine) ElidedYields() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.elided
	}
	return n
}

// dsmvet:dispatch — observational read, documented as valid only after Run.
//
// DirectHandoffs returns the number of baton passes that went directly from
// one processor goroutine to the next without waking the dispatcher.
// Purely observational (tests and benchmarks).
func (e *Engine) DirectHandoffs() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.handoffs
	}
	return n
}

// dsmvet:dispatch — observational read, documented as valid only after Run.
//
// InlinePolls returns the number of PollWait closures that dispatchers
// evaluated inline, without switching to the polling processor's goroutine.
// Purely observational (tests and benchmarks).
func (e *Engine) InlinePolls() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.polls
	}
	return n
}

// HorizonRounds returns the number of conservative windows a parallel run
// executed. Zero for sequential runs. Purely observational.
func (e *Engine) HorizonRounds() uint64 { return e.rounds }

// CrossEvents returns the number of cross-domain events (deliveries and
// wakes) the coordinator drained. Zero for sequential runs.
func (e *Engine) CrossEvents() uint64 { return e.crossEvents }

// CrossTies returns the number of same-instant cross-domain delivery
// collisions observed: pairs of messages from different domains to the same
// processor at the same virtual time. When zero, the parallel run's message
// order is identical to the sequential engine's (see DESIGN.md §3b); when
// non-zero the run is still deterministic, but ties were broken by sequence
// stripe instead of global send order.
func (e *Engine) CrossTies() uint64 { return e.crossTies }

// dsmvet:dispatch — runs once at Run, before any worker or processor
// goroutine starts.
//
// partition commits the engine to its final domain layout. Sequential
// engines keep the single domain built by NewEngine; parallel engines get
// one domain per node.
func (e *Engine) partition() {
	if !(e.parallel && e.lookahead > 0 && e.cfg.Nodes > 1) {
		return
	}
	d0 := e.domains[0]
	if d0.runq.len() > 0 || d0.msgSeq != 0 {
		panic("sim: deliveries or wakes before Run are not supported in parallel mode")
	}
	e.parallelActive = true
	e.domains = make([]*domain, e.cfg.Nodes)
	for i := range e.domains {
		e.domains[i] = newDomain(e, i)
	}
	for _, p := range e.procs {
		d := e.domains[p.Node]
		p.dom = d
		d.procs = append(d.procs, p)
	}
}

// dsmvet:dispatch — the top-level driver: it touches domain state before
// goroutines start and, sequentially, between window calls when it owns the
// single domain's baton.
//
// Run executes the simulation until every processor with a body has finished,
// or until no progress is possible (deadlock). It returns an error describing
// a deadlock or a panic inside a processor body. On either failure the
// parked processor goroutines are unwound before Run returns, so an aborted
// simulation does not leak goroutines.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true
	e.applySchedule() // may pin sequential mode; must precede partition
	e.partition()

	for _, p := range e.procs {
		if p.body == nil {
			p.state = stateDone
			continue
		}
		p.dom.active++
		p.dom.enqueue(p, e.startTime(p))
		go p.run()
	}

	if e.parallelActive {
		return e.runParallel()
	}

	// Sequential execution: the single domain runs one unbounded window per
	// dispatch epoch. window returns on panic (error), or with the run queue
	// drained — success if every processor finished, deadlock otherwise.
	d := e.domains[0]
	for d.active > 0 {
		if err := d.window(maxTime); err != nil {
			// The simulation result is already invalid; unwind the parked
			// goroutines so an engine-heavy test run does not accumulate
			// them.
			e.killParked()
			return err
		}
		if d.active > 0 {
			err := e.deadlockError(d.active)
			e.killParked()
			return err
		}
	}
	return nil
}

// killParked unwinds every processor goroutine still parked on its resume
// channel. Each parked goroutine is woken with its killed flag set; it exits
// via runtime.Goexit without reporting back (nobody is listening). Only
// called from Run's failure paths, where no processor holds the baton in any
// domain, so every non-done processor with a body is guaranteed to be blocked
// on <-resume and the unbuffered sends cannot hang.
func (e *Engine) killParked() {
	for _, p := range e.procs {
		if p.body == nil || p.state == stateDone {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
	}
}

func (e *Engine) deadlockError(active int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock with %d processors unfinished:", active)
	ids := make([]int, 0, len(e.procs))
	for _, p := range e.procs {
		if p.state != stateDone {
			ids = append(ids, p.ID)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := e.procs[id]
		fmt.Fprintf(&b, "\n  proc %d (node %d) %s at t=%dns: %s", p.ID, p.Node, p.state, p.now, p.blockReason)
	}
	return fmt.Errorf("%s", b.String())
}

// MaxTime returns the largest virtual clock over all processors. After Run it
// is the simulated parallel execution time.
func (e *Engine) MaxTime() Time {
	var max Time
	for _, p := range e.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}
