// Package sim provides a deterministic discrete-event simulation engine for a
// cluster of SMP nodes.
//
// Each simulated processor is a goroutine with its own virtual clock. Exactly
// one processor goroutine executes at any moment: control is handed back and
// forth between the engine and the running processor through unbuffered
// channels, so the simulation needs no locks and is bit-deterministic.
//
// The scheduling rule is the classic conservative one: the engine always
// resumes the runnable processor with the minimum virtual clock (ties are
// FIFO in queue-push order, which is itself deterministic). Processors
// accumulate virtual time locally with Advance and must Yield before
// performing any globally visible action (acquiring a
// lock, sending a message, updating a directory entry, ...). This guarantees
// that when a processor performs such an action at virtual time t, no other
// processor can still perform an earlier conflicting action: all runnable
// processors have clocks >= t and blocked processors can only be woken at
// times chosen by already-ordered events.
//
// Timing model: virtual time is int64 nanoseconds (type Time). Real wall-clock
// time plays no role anywhere in the package.
package sim

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// NoFastPathEnv is the environment variable that, when set to any non-empty
// value, disables the simulator's host-time fast paths (yield elision here,
// translation caching in internal/core). The fast paths are bit-exact — they
// change no virtual-time result — so the toggle exists purely so tests can
// run both paths and assert identical output.
const NoFastPathEnv = "SIM_NO_FASTPATH"

// FastPathEnabled reports whether the fast paths are enabled for engines and
// runtimes created from now on (the environment is consulted at creation
// time, not per operation).
func FastPathEnabled() bool { return os.Getenv(NoFastPathEnv) == "" }

// Time is virtual time in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Config describes the simulated cluster shape.
type Config struct {
	// Nodes is the number of SMP nodes in the cluster.
	Nodes int
	// ProcsPerNode is the number of processors on each node.
	ProcsPerNode int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sim: config needs at least one node, got %d", c.Nodes)
	}
	if c.ProcsPerNode <= 0 {
		return fmt.Errorf("sim: config needs at least one processor per node, got %d", c.ProcsPerNode)
	}
	return nil
}

// TotalProcs returns the number of processors in the cluster.
func (c Config) TotalProcs() int { return c.Nodes * c.ProcsPerNode }

type procState uint8

const (
	stateNew     procState = iota
	stateQueued            // in the run queue, waiting to be resumed
	stateRunning           // currently holds the baton
	stateBlocked           // waiting for a Wake
	stateDone              // body function returned
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	}
	return "invalid"
}

type reportKind uint8

const (
	reportYield reportKind = iota
	reportBlock
	reportDone
	reportPanic
)

type report struct {
	p    *Proc
	kind reportKind
	at   Time // resume time for reportYield
	err  error
}

// Engine owns the simulated cluster: its processors, the run queue, and the
// global event ordering. Create one with NewEngine, add processors with
// NewProc, give each a body with Go, then call Run.
type Engine struct {
	cfg       Config
	procs     []*Proc
	runq      runQueue
	reports   chan report
	msgSeq    uint64 // global sequence for deterministic message tie-breaking
	pushCount uint64 // global run-queue push counter for FIFO tie-breaking
	started   bool

	fastYield bool   // elide scheduler round-trips when provably inconsequential
	elided    uint64 // yields satisfied without a scheduler round-trip
	handoffs  uint64 // baton passes that bypassed the engine goroutine
}

// NewEngine creates an engine for the given cluster shape and instantiates
// all of its processors. The processors have no bodies yet; attach them with
// Go before calling Run.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		reports:   make(chan report),
		fastYield: FastPathEnabled(),
	}
	for n := 0; n < cfg.Nodes; n++ {
		for c := 0; c < cfg.ProcsPerNode; c++ {
			p := &Proc{
				ID:     len(e.procs),
				Node:   n,
				CPU:    c,
				eng:    e,
				resume: make(chan struct{}),
			}
			e.procs = append(e.procs, p)
		}
	}
	return e, nil
}

// Config returns the cluster shape the engine was created with.
func (e *Engine) Config() Config { return e.cfg }

// Procs returns all processors in id order. The slice must not be modified.
func (e *Engine) Procs() []*Proc { return e.procs }

// Proc returns the processor with the given id.
func (e *Engine) Proc(id int) *Proc { return e.procs[id] }

// NumProcs returns the number of processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Go attaches a body function to a processor. The body starts executing, at
// virtual time 0, when Run is called. Go panics if called after Run or if the
// processor already has a body.
func (e *Engine) Go(p *Proc, body func(*Proc)) {
	if e.started {
		panic("sim: Go called after Run")
	}
	if p.body != nil {
		panic(fmt.Sprintf("sim: proc %d already has a body", p.ID))
	}
	p.body = body
}

// SetFastYield enables or disables yield elision on this engine, overriding
// the SIM_NO_FASTPATH environment default. For tests that want to pin one
// path explicitly; must be called before Run.
func (e *Engine) SetFastYield(on bool) { e.fastYield = on }

// ElidedYields returns the number of yields that were satisfied without a
// scheduler round-trip. Purely observational (tests and benchmarks).
func (e *Engine) ElidedYields() uint64 { return e.elided }

// DirectHandoffs returns the number of baton passes that went directly from
// one processor goroutine to the next without waking the engine goroutine.
// Purely observational (tests and benchmarks).
func (e *Engine) DirectHandoffs() uint64 { return e.handoffs }

// canElide reports whether a yield by the running processor until virtual
// time t may skip the report/resume channel round-trip entirely. It may:
// exactly one goroutine runs at a time, so the run queue is quiescent, and if
// every runnable processor's resume time is strictly after t the dispatch
// loop would pop the yielder's own entry and hand the baton straight back.
// Ties are not elidable: FIFO order among equal times would run the already
// queued processor first. Stale heap heads (entries superseded by a later
// WakeAt) are discarded on the way, exactly as the dispatch loop would
// discard them when popped.
func (e *Engine) canElide(t Time) bool {
	if !e.fastYield {
		return false
	}
	for {
		head, ok := e.runq.peek()
		if !ok {
			// No other runnable processor: the yielder would be re-dispatched
			// immediately.
			return true
		}
		q := e.procs[head.procID]
		if q.state != stateQueued || head.seq != q.queueSeq {
			e.runq.pop() // stale entry; the dispatch loop would skip it too
			continue
		}
		return t < head.at
	}
}

// Run executes the simulation until every processor with a body has finished,
// or until no progress is possible (deadlock). It returns an error describing
// a deadlock or a panic inside a processor body. On either failure the
// parked processor goroutines are unwound before Run returns, so an aborted
// simulation does not leak goroutines.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: engine already ran")
	}
	e.started = true

	active := 0
	for _, p := range e.procs {
		if p.body == nil {
			p.state = stateDone
			continue
		}
		active++
		e.enqueue(p, 0)
		go p.run()
	}

	var firstErr error
	for active > 0 {
		ent, ok := e.runq.pop()
		if !ok {
			err := e.deadlockError(active)
			e.killParked()
			return err
		}
		p := e.procs[ent.procID]
		if p.state != stateQueued || ent.seq != p.queueSeq {
			continue // stale queue entry superseded by a later Wake
		}
		if ent.at > p.now {
			p.now = ent.at
		}
		p.state = stateRunning
		p.resume <- struct{}{}
		// With direct handoff enabled the baton may pass between processor
		// goroutines many times before anything is reported, so the reporter
		// (r.p) is not necessarily the processor dispatched above.
		r := <-e.reports
		switch r.kind {
		case reportYield:
			e.enqueue(r.p, r.at)
		case reportBlock:
			r.p.state = stateBlocked
		case reportDone:
			r.p.state = stateDone
			active--
		case reportPanic:
			r.p.state = stateDone
			active--
			if firstErr == nil {
				firstErr = r.err
			}
			// The simulation result is already invalid; unwind the parked
			// goroutines so an engine-heavy test run does not accumulate
			// them.
			e.killParked()
			return firstErr
		}
	}
	return firstErr
}

// handoff performs a yield dispatch entirely on the yielding processor's
// goroutine: it enqueues p to resume at t (exactly as the engine does on a
// yield report), pops the minimum runnable entry, and passes the baton to that
// processor directly, parking p until its own entry is popped later. This is
// bit-exact with routing through the engine — the enqueue and dispatch steps
// are the same code the engine loop runs, in the same order — but costs one
// goroutine switch instead of two. Returns false if no successor exists (the
// caller must fall back to the engine), which cannot happen when canElide has
// just returned false but keeps this function independently safe.
func (e *Engine) handoff(p *Proc, t Time) bool {
	e.enqueue(p, t)
	for {
		ent, ok := e.runq.pop()
		if !ok {
			return false
		}
		q := e.procs[ent.procID]
		if q.state != stateQueued || ent.seq != q.queueSeq {
			continue // stale queue entry superseded by a later Wake
		}
		if ent.at > q.now {
			q.now = ent.at
		}
		q.state = stateRunning
		if q == p {
			return true // own entry came straight back: keep running
		}
		e.handoffs++
		q.resume <- struct{}{}
		<-p.resume
		return true
	}
}

// dispatchBlocked marks p blocked and passes the baton to the next runnable
// processor directly, parking p until a WakeAt re-queues it. Returns false —
// leaving p's state untouched — when no runnable processor exists; the caller
// must then report through the engine so deadlock detection runs.
func (e *Engine) dispatchBlocked(p *Proc) bool {
	for {
		ent, ok := e.runq.peek()
		if !ok {
			return false
		}
		q := e.procs[ent.procID]
		if q.state != stateQueued || ent.seq != q.queueSeq {
			e.runq.pop() // stale entry; the dispatch loop would skip it too
			continue
		}
		e.runq.pop()
		p.state = stateBlocked
		if ent.at > q.now {
			q.now = ent.at
		}
		q.state = stateRunning
		e.handoffs++
		q.resume <- struct{}{}
		<-p.resume
		return true
	}
}

// killParked unwinds every processor goroutine still parked on its resume
// channel. Each parked goroutine is woken with its killed flag set; it exits
// via runtime.Goexit without reporting back (nobody is listening). Only
// called from Run's failure paths, where no processor holds the baton, so
// every non-done processor with a body is guaranteed to be blocked on
// <-resume and the unbuffered sends cannot hang.
func (e *Engine) killParked() {
	for _, p := range e.procs {
		if p.body == nil || p.state == stateDone {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
	}
}

func (e *Engine) deadlockError(active int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock with %d processors unfinished:", active)
	ids := make([]int, 0, len(e.procs))
	for _, p := range e.procs {
		if p.state != stateDone {
			ids = append(ids, p.ID)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := e.procs[id]
		fmt.Fprintf(&b, "\n  proc %d (node %d) %s at t=%dns: %s", p.ID, p.Node, p.state, p.now, p.blockReason)
	}
	return fmt.Errorf("%s", b.String())
}

// MaxTime returns the largest virtual clock over all processors. After Run it
// is the simulated parallel execution time.
func (e *Engine) MaxTime() Time {
	var max Time
	for _, p := range e.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

// nextMsgSeq hands out globally unique message sequence numbers, used to
// break ties between messages that arrive at the same virtual instant.
func (e *Engine) nextMsgSeq() uint64 {
	e.msgSeq++
	return e.msgSeq
}
