package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// maxTime is the "no horizon" sentinel: a sequential domain executes as if
// its window never closes.
const maxTime = Time(math.MaxInt64)

// ParallelEnv is the environment variable that, when set to any non-empty
// value, makes engines default to node-parallel execution (the default can
// still be overridden per engine with SetParallel). Parallel execution only
// engages when the engine also has a positive cross-domain lookahead declared
// via SetLookahead and more than one node; otherwise the engine silently runs
// sequentially, so setting the variable is always safe.
const ParallelEnv = "SIM_PARALLEL"

// crossKind tags a staged cross-domain event.
type crossKind uint8

const (
	crossDeliver crossKind = iota
	crossWake
)

// crossEvent is one cross-domain interaction staged during a window and
// applied by the coordinator between windows.
type crossEvent struct {
	kind   crossKind
	target int // destination proc id
	at     Time
	from   int // sender domain id (deterministic ordering + tie detection)
	msg    Msg // crossDeliver only
}

// domain is one sequential scheduling region of the engine: a set of
// processors that share a run queue and execute under the baton-passing
// discipline. A sequential engine has exactly one domain holding every
// processor; a parallel engine has one domain per simulated node, each driven
// by its own host worker.
//
// All of a domain's scheduling state (runq, pushCount, msgSeq, counters) is
// touched only by the goroutine currently holding the domain's baton — the
// worker or one of the domain's processor goroutines — with every transfer of
// control flowing through an unbuffered channel, so no locks are needed and
// the race detector can verify the discipline. The single exception is `in`,
// the staging buffer for events arriving from other domains, which has its
// own mutex and is drained only by the coordinator between windows.
//
// The confinement contract is machine-checked: every field below marked
// dsmvet:domain-confined may only be touched by functions annotated
// dsmvet:dispatch (see internal/analysis and DESIGN.md "Machine-checked
// invariants"), which are exactly the paths that hold the baton or run while
// the domain is provably quiescent.
type domain struct {
	eng *Engine
	id  int

	procs []*Proc
	runq  runQueue // dsmvet:domain-confined

	reports   chan report
	pushCount uint64 // dsmvet:domain-confined — run-queue push counter for FIFO tie-breaking
	msgSeq    uint64 // dsmvet:domain-confined — per-domain message sequence counter

	// windowH is the exclusive horizon of the current window: the domain may
	// only execute events with virtual time strictly below it. Sequential
	// domains keep it at maxTime.
	// dsmvet:domain-confined
	windowH Time

	active int // dsmvet:domain-confined — processors with bodies not yet done

	// polling is set while a dispatcher evaluates a parked processor's
	// PollWait closure inline; yields and blocks panic during it, enforcing
	// the PollWait contract.
	// dsmvet:domain-confined
	polling bool

	elided   uint64 // dsmvet:domain-confined
	handoffs uint64 // dsmvet:domain-confined
	polls    uint64 // dsmvet:domain-confined — PollWait closures evaluated inline by a dispatcher

	// in stages events sent to this domain by baton holders of other
	// domains during a window. Senders append under mu; the coordinator
	// drains between windows, when no window is executing.
	in struct {
		mu  sync.Mutex
		evs []crossEvent
	}

	// windowCh delivers the next window horizon to the worker; resultCh
	// returns nil or the first panic of the window.
	windowCh chan Time
	resultCh chan error
}

// dsmvet:dispatch — constructor; the domain is not yet visible to any
// other goroutine.
func newDomain(e *Engine, id int) *domain {
	return &domain{
		eng:     e,
		id:      id,
		reports: make(chan report),
		windowH: maxTime,
	}
}

// dsmvet:dispatch — called only by the domain's current baton holder.
//
// nextMsgSeq hands out message sequence numbers that are unique across the
// whole engine yet assigned without cross-domain coordination: the sequence
// space is striped by domain id. With a single domain the values are exactly
// the sequential engine's 1, 2, 3, ...
func (d *domain) nextMsgSeq() uint64 {
	s := d.msgSeq*uint64(len(d.eng.domains)) + uint64(d.id) + 1
	d.msgSeq++
	return s
}

// dsmvet:dispatch — called by the baton holder (yields, wakes) or by the
// coordinator between windows (cross-domain drain), when no window runs.
//
// enqueue makes target runnable at virtual time t in this domain's queue.
func (d *domain) enqueue(target *Proc, t Time) {
	target.state = stateQueued
	target.queueSeq++
	target.queuedAt = t
	d.pushCount++
	d.runq.push(entry{at: t, order: d.pushCount, procID: target.ID, seq: target.queueSeq})
}

// dsmvet:dispatch — called by the running (baton-holding) processor.
//
// canElide reports whether a yield by the running processor until virtual
// time t may skip the report/resume channel round-trip entirely. It may:
// exactly one goroutine runs at a time within the domain, so the run queue is
// quiescent, and if every runnable processor's resume time is strictly after
// t the dispatch loop would pop the yielder's own entry and hand the baton
// straight back. Ties are not elidable: FIFO order among equal times would
// run the already queued processor first. Under a parallel window the resume
// time must also stay inside the horizon — at or past it, other domains may
// still produce earlier events, so the yielder must genuinely park. Stale
// heap heads (entries superseded by a later WakeAt) are discarded on the way,
// exactly as the dispatch loop would discard them when popped.
func (d *domain) canElide(t Time) bool {
	if !d.eng.fastYield || t >= d.windowH {
		return false
	}
	for {
		head, ok := d.runq.peek()
		if !ok {
			// No other runnable processor: the yielder would be re-dispatched
			// immediately.
			return true
		}
		q := d.eng.procs[head.procID]
		if q.state != stateQueued || head.seq != q.queueSeq {
			d.runq.pop() // stale entry; the dispatch loop would skip it too
			continue
		}
		return t < head.at
	}
}

// dsmvet:dispatch — runs on the dispatching goroutine, which holds the baton.
//
// dispatchPoll evaluates a parked processor's PollWait closure inline on the
// dispatching goroutine. On (false, next) the processor is re-queued and the
// dispatcher keeps going — no goroutine switch happened. On done the poll is
// cleared and the caller must resume the processor's goroutine for real. A
// panic inside the poll (e.g. a spin-wait livelock bound) is captured and
// returned as an error; the caller aborts the run with it.
func (d *domain) dispatchPoll(q *Proc, at Time) (resume bool, err error) {
	if at > q.now {
		q.now = at
	}
	q.state = stateRunning
	// This loop must mirror PollWait's own exactly — including the elision
	// branch, which probes again without re-queueing. Re-queueing on every
	// probe would advance pushCount and queueSeq on a different schedule
	// than the processor's own goroutine would have, silently changing FIFO
	// tie-breaking everywhere downstream.
	for {
		d.polls++
		done, next := func() (done bool, next Time) {
			d.polling = true
			defer func() {
				d.polling = false
				if r := recover(); r != nil {
					err = fmt.Errorf("sim: proc %d poll panicked: %v", q.ID, r)
				}
			}()
			return q.poll()
		}()
		if err != nil {
			return false, err
		}
		if done {
			q.poll = nil
			return true, nil
		}
		if next < q.now {
			next = q.now
		}
		if d.canElide(next) {
			d.elided++
			q.lastYield = q.now
			if next > q.now {
				q.now = next
			}
			continue
		}
		q.lastYield = q.now
		d.enqueue(q, next)
		return false, nil
	}
}

// dsmvet:dispatch — runs on the yielding processor's goroutine, which holds
// the baton until the resume send below transfers it.
//
// handoff performs a yield dispatch entirely on the yielding processor's
// goroutine: it enqueues p to resume at t (exactly as the worker does on a
// yield report), pops the minimum runnable entry, and passes the baton to that
// processor directly, parking p until its own entry is popped later. This is
// bit-exact with routing through the worker — the enqueue and dispatch steps
// are the same code the window loop runs, in the same order — but costs one
// goroutine switch instead of two. Returns false if no successor exists
// inside the window horizon; the caller must then fall back to the worker,
// which closes the window.
func (d *domain) handoff(p *Proc, t Time) bool {
	d.enqueue(p, t)
	for {
		ent, ok := d.runq.peek()
		if !ok {
			return false
		}
		q := d.eng.procs[ent.procID]
		if q.state != stateQueued || ent.seq != q.queueSeq {
			d.runq.pop() // stale queue entry superseded by a later Wake
			continue
		}
		if ent.at >= d.windowH {
			// The next event lies at or past the horizon: only the worker may
			// close the window and wait for the coordinator.
			return false
		}
		d.runq.pop()
		if q.poll != nil {
			ok, err := d.dispatchPoll(q, ent.at)
			if err != nil {
				panic(err) // aborts the run via this goroutine's panic report
			}
			if !ok {
				continue // re-queued without a goroutine switch
			}
		}
		if ent.at > q.now {
			q.now = ent.at
		}
		q.state = stateRunning
		if q == p {
			return true // own entry came straight back: keep running
		}
		d.handoffs++
		q.resume <- struct{}{}
		<-p.resume
		return true
	}
}

// dsmvet:dispatch — runs on the blocking processor's goroutine, which holds
// the baton until the resume send below transfers it.
//
// dispatchBlocked marks p blocked and passes the baton to the next runnable
// processor directly, parking p until a WakeAt re-queues it. p must be marked
// blocked before anything else is dispatched: an inline poll evaluated from
// this loop may deliver a message to p, and the resulting wake only re-queues
// a processor it observes as parked. If that happens, p's own entry surfaces
// in the queue and the loop returns true with p runnable again — exactly as
// if the wake had arrived after p parked. Returns false when no runnable
// processor exists inside the horizon; the caller must then report through
// the worker so deadlock detection (or the window protocol) runs.
func (d *domain) dispatchBlocked(p *Proc) bool {
	p.state = stateBlocked
	for {
		ent, ok := d.runq.peek()
		if !ok {
			return false
		}
		q := d.eng.procs[ent.procID]
		if q.state != stateQueued || ent.seq != q.queueSeq {
			d.runq.pop() // stale entry; the dispatch loop would skip it too
			continue
		}
		if ent.at >= d.windowH {
			return false
		}
		d.runq.pop()
		if q.poll != nil {
			ok, err := d.dispatchPoll(q, ent.at)
			if err != nil {
				panic(err) // aborts the run via this goroutine's panic report
			}
			if !ok {
				continue
			}
		}
		if ent.at > q.now {
			q.now = ent.at
		}
		q.state = stateRunning
		if q == p {
			return true // woken by an inline poll's delivery: stop blocking
		}
		d.handoffs++
		q.resume <- struct{}{}
		<-p.resume
		return true
	}
}

// dsmvet:dispatch — the worker's dispatch loop; it owns the baton whenever
// no processor goroutine does.
//
// window runs the domain's dispatch loop until the next runnable event lies
// at or past horizon (exclusive), the queue drains, or a processor panics.
// With horizon == maxTime this is exactly the sequential engine loop.
func (d *domain) window(horizon Time) error {
	d.windowH = horizon
	for {
		ent, ok := d.runq.peek()
		if !ok {
			return nil
		}
		p := d.eng.procs[ent.procID]
		if p.state != stateQueued || ent.seq != p.queueSeq {
			d.runq.pop() // stale queue entry superseded by a later Wake
			continue
		}
		if ent.at >= horizon {
			return nil
		}
		d.runq.pop()
		if p.poll != nil {
			ok, err := d.dispatchPoll(p, ent.at)
			if err != nil {
				// Unlike a body panic, the poll's owner goroutine is still
				// parked (killParked unwinds it), so active is not decremented.
				return err
			}
			if !ok {
				continue
			}
		}
		if ent.at > p.now {
			p.now = ent.at
		}
		p.state = stateRunning
		p.resume <- struct{}{}
		// With direct handoff enabled the baton may pass between processor
		// goroutines many times before anything is reported, so the reporter
		// (r.p) is not necessarily the processor dispatched above.
		r := <-d.reports
		switch r.kind {
		case reportYield:
			d.enqueue(r.p, r.at)
		case reportBlock:
			r.p.state = stateBlocked
		case reportParked:
			// Reporter already holds its correct parked state; nothing to do.
		case reportDone:
			r.p.state = stateDone
			d.active--
		case reportPanic:
			r.p.state = stateDone
			d.active--
			return r.err
		}
	}
}

// worker is the per-domain host goroutine of a parallel run: it executes one
// window per command and reports the window's outcome. The coordinator closes
// windowCh to shut it down.
func (d *domain) worker() {
	for horizon := range d.windowCh {
		d.resultCh <- d.window(horizon)
	}
}

// stage appends a cross-domain event for this (receiving) domain. Called by
// baton holders of other domains during a window.
func (d *domain) stage(ev crossEvent) {
	d.in.mu.Lock()
	d.in.evs = append(d.in.evs, ev)
	d.in.mu.Unlock()
}

// dsmvet:dispatch — called only by the coordinator between windows, when the
// domain is quiescent.
//
// nextEventTime returns the virtual time of the domain's earliest live queue
// entry, or maxTime if none, discarding stale entries on the way. Called only
// by the coordinator between windows.
func (d *domain) nextEventTime() Time {
	for {
		ent, ok := d.runq.peek()
		if !ok {
			return maxTime
		}
		q := d.eng.procs[ent.procID]
		if q.state != stateQueued || ent.seq != q.queueSeq {
			d.runq.pop()
			continue
		}
		return ent.at
	}
}

// dsmvet:dispatch — the coordinator; it reads domain state only between
// windows, when every worker is parked on windowCh.
//
// runParallel executes the simulation with one worker per domain under the
// conservative window protocol:
//
//  1. Drain: apply every staged cross-domain event (deliveries and wakes) in
//     deterministic (time, seq) order. No window is executing, so the
//     coordinator owns all state.
//  2. Horizon: compute T, the minimum next-event time over all domains. If no
//     events remain the run is over (success if every processor finished,
//     deadlock otherwise). Otherwise the safe horizon is H = T + lookahead:
//     any event a domain executes before H happens strictly before the
//     earliest instant at which another domain's current or future work could
//     affect it, because every cross-domain interaction carries at least
//     `lookahead` of virtual latency.
//  3. Window: every worker executes its domain's events with time < H in
//     parallel, staging outbound cross-domain events. The coordinator waits
//     for all workers (this barrier is the null-message/horizon-refresh rule:
//     an idle domain's worker returns immediately, implicitly promising it
//     will produce nothing before H), then loops.
//
// See DESIGN.md §3b for the ordering proof.
func (e *Engine) runParallel() error {
	for _, d := range e.domains {
		d.windowCh = make(chan Time)
		d.resultCh = make(chan error)
		go d.worker()
	}
	defer func() {
		for _, d := range e.domains {
			close(d.windowCh)
		}
	}()

	var firstErr error
	for {
		e.drainCross()
		if firstErr != nil {
			e.killParked()
			return firstErr
		}
		T := maxTime
		active := 0
		for _, d := range e.domains {
			active += d.active
			if t := d.nextEventTime(); t < T {
				T = t
			}
		}
		if active == 0 {
			return nil
		}
		if T == maxTime {
			err := e.deadlockError(active)
			e.killParked()
			return err
		}
		horizon := T + e.lookahead
		if horizon < T { // overflow
			horizon = maxTime
		}
		e.rounds++
		for _, d := range e.domains {
			d.windowCh <- horizon
		}
		for _, d := range e.domains {
			if err := <-d.resultCh; err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
}

// drainCross applies all staged cross-domain events. Events are applied in
// (time, seq) order — a deterministic total order independent of which
// domains staged first — and every application uses the same code paths a
// local delivery would (mailbox insert + wake), so parallel delivery is
// bit-exact with sequential delivery whenever no two cross-domain messages
// target the same processor at the same virtual instant (CrossTies counts
// the exceptions; see DESIGN.md §3b).
func (e *Engine) drainCross() {
	var evs []crossEvent
	for _, d := range e.domains {
		d.in.mu.Lock()
		evs = append(evs, d.in.evs...)
		d.in.evs = d.in.evs[:0]
		d.in.mu.Unlock()
	}
	if len(evs) == 0 {
		return
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.msg.Seq != b.msg.Seq {
			return a.msg.Seq < b.msg.Seq
		}
		if a.target != b.target {
			return a.target < b.target
		}
		return a.from < b.from
	})
	for i, ev := range evs {
		target := e.procs[ev.target]
		switch ev.kind {
		case crossDeliver:
			if i > 0 && evs[i-1].kind == crossDeliver && evs[i-1].target == ev.target &&
				evs[i-1].at == ev.at && evs[i-1].from != ev.from {
				// Two cross-domain messages for one processor at the same
				// instant from different domains: their relative order is
				// deterministic (sequence stripe) but may differ from the
				// sequential engine's global send order.
				e.crossTies++
			}
			target.inbox.insert(ev.msg)
			wakeLocal(target, ev.at)
		case crossWake:
			wakeLocal(target, ev.at)
		}
		e.crossEvents++
	}
}

// checkLookahead panics if a cross-domain interaction is scheduled closer
// than the declared lookahead: the conservative window protocol is only
// correct if every cross-domain effect carries at least `lookahead` of
// virtual latency, so a violation means the model layer's declared minimum
// (e.g. the interconnect's cross-node latency) does not match its behavior.
func (e *Engine) checkLookahead(sender *Proc, at Time) {
	if at < sender.now+e.lookahead {
		panic(fmt.Sprintf("sim: lookahead violation: proc %d (domain %d) at t=%d scheduled a cross-domain event at t=%d, closer than the declared lookahead %d",
			sender.ID, sender.dom.id, sender.now, at, e.lookahead))
	}
}
