package sim

import "fmt"

// Schedule describes a seed-derived perturbation of the engine's event
// schedule, used for schedule-space exploration (internal/check, cmd/dsmcheck).
//
// The deterministic engine executes exactly one legal ordering per program:
// the minimum-virtual-time rule with FIFO tie-breaking. A Schedule reshapes
// that ordering — within the bounds the timing model declares legal — so one
// program yields many distinct event orderings, each individually
// bit-reproducible: a (program seed, schedule seed) pair is a pure function
// of its inputs and replays exactly, on any host, at any GOMAXPROCS.
//
// Three independent knobs, all derived from Seed:
//
//   - CostJitter inflates every Advance(d) by a per-processor pseudo-random
//     amount in [0, d*CostJitter]. Costs only ever grow, and never beyond the
//     declared fraction, so a jittered run stays inside the cost ranges the
//     protocol layer declares legal (core.SchedulePerturbable).
//   - FlipTies replaces FIFO ordering among equal-virtual-time run-queue
//     entries with a seeded hash order. Only events the conservative
//     scheduling rule leaves unordered — same-instant ties — are affected.
//   - Stagger starts each processor's body at a seed-derived virtual offset
//     in [0, Stagger] instead of 0, de-synchronizing lockstep startups so
//     that sync-order races are actually explored.
//
// The zero value (and any value with Seed == 0) leaves the canonical
// schedule untouched. Perturbed runs pin the sequential engine and the
// canonical slow path (see Engine.applySchedule for why).
type Schedule struct {
	// Seed selects the perturbation. Zero disables the schedule entirely so
	// that a zero Schedule value means "canonical order".
	Seed uint64
	// CostJitter is the maximum fractional inflation of each Advance, in
	// [0, MaxCostJitter]. The protocol layer bounds it further via its
	// declared tolerance.
	CostJitter float64
	// FlipTies perturbs the ordering of equal-virtual-time run-queue entries.
	FlipTies bool
	// Stagger is the maximum seed-derived virtual-time offset applied to each
	// processor's start. Zero starts everyone at t=0 as usual.
	Stagger Time
}

// MaxCostJitter is the hard cap on Schedule.CostJitter: inflating any cost
// by more than 4x is outside every declared tolerance and almost certainly a
// misconfiguration.
const MaxCostJitter = 4.0

// Enabled reports whether the schedule perturbs anything. A zero Seed
// disables the schedule regardless of the other fields.
func (s Schedule) Enabled() bool {
	return s.Seed != 0 && (s.CostJitter > 0 || s.FlipTies || s.Stagger > 0)
}

// Validate reports whether the schedule's parameters are in range.
func (s Schedule) Validate() error {
	if s.CostJitter < 0 || s.CostJitter > MaxCostJitter {
		return fmt.Errorf("sim: schedule cost jitter %v outside [0, %v]", s.CostJitter, MaxCostJitter)
	}
	if s.Stagger < 0 {
		return fmt.Errorf("sim: negative schedule stagger %d", s.Stagger)
	}
	return nil
}

// Distinct stream tags keep the jitter, stagger, and tie-break derivations
// statistically independent even though they share one Seed.
const (
	jitterStream  uint64 = 0xa0761d6478bd642f
	staggerStream uint64 = 0xe7037ed1a0b428db
	tieStream     uint64 = 0x8ebc6af09c88c6e3
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix. Hand-rolled
// because measured packages may not import math/rand (determinism invariant,
// see internal/analysis); pure integer arithmetic is trivially deterministic.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// jitterNext advances a per-processor splitmix64 stream. Draws happen once
// per jittered Advance, in program order on the owning processor, so the
// stream consumption is itself a deterministic function of the schedule.
func jitterNext(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix64(*state)
}

// SetSchedule commits the engine to a seed-derived schedule perturbation.
// Must be called before Run; panics on an out-of-range schedule. The caller
// (core.Run) is responsible for checking CostJitter against the protocol's
// declared tolerance first. A disabled schedule (zero Seed) is a no-op.
func (e *Engine) SetSchedule(s Schedule) {
	if e.started {
		panic("sim: SetSchedule called after Run")
	}
	if err := s.Validate(); err != nil {
		panic(err.Error())
	}
	e.sched = s
	e.jitterK = 0
	if s.Enabled() && s.CostJitter > 0 {
		// Quantize the fraction to 1/1024ths once, up front: the hot path
		// then stays in integer arithmetic (no float op is ever schedule- or
		// host-dependent).
		e.jitterK = int64(s.CostJitter*1024 + 0.5)
	}
}

// Schedule returns the perturbation the engine was committed to (zero value
// if none).
func (e *Engine) Schedule() Schedule { return e.sched }

// dsmvet:dispatch — runs once at Run, before any worker or processor
// goroutine starts.
//
// applySchedule arms a committed schedule perturbation. Perturbed runs pin
// the canonical slow path and the sequential engine: yield elision skips
// run-queue pushes entirely (so the push counter — the tie-break input —
// would advance on a different schedule than the slow path's), and the
// parallel engine's window protocol orders same-instant cross-domain ties by
// sequence stripe rather than global push order. Pinning both keeps "one
// (program seed, schedule seed) pair = one ordering" exact under any host
// configuration; SIM_NO_FASTPATH/SIM_PARALLEL and Set* overrides are
// deliberately trumped here.
func (e *Engine) applySchedule() {
	if !e.sched.Enabled() {
		return
	}
	e.fastYield = false
	e.parallel = false
	base := mix64(e.sched.Seed ^ jitterStream)
	for _, p := range e.procs {
		p.jstate = mix64(base ^ (uint64(p.ID) + 1))
	}
	if e.sched.FlipTies {
		salt := mix64(e.sched.Seed ^ tieStream)
		if salt == 0 {
			salt = 1 // zero means "FIFO" to the queue; never lose the flip
		}
		e.domains[0].runq.salt = salt
	}
}

// dsmvet:dispatch — runs once at Run, before any worker or processor
// goroutine starts.
//
// startTime returns the virtual time at which p's body is first scheduled:
// 0 canonically, or a seed-derived offset in [0, Stagger] under a staggered
// schedule.
func (e *Engine) startTime(p *Proc) Time {
	if !e.sched.Enabled() || e.sched.Stagger <= 0 {
		return 0
	}
	base := mix64(e.sched.Seed ^ staggerStream)
	return Time(mix64(base^(uint64(p.ID)+1)) % uint64(e.sched.Stagger+1))
}
