package sim

// entry is one run-queue element: processor procID becomes runnable at
// virtual time at. seq stamps the entry; if it no longer matches the
// processor's queueSeq when popped, the entry has been superseded. order is a
// global push counter.
type entry struct {
	at     Time
	order  uint64
	procID int
	seq    uint64
}

// runQueue is a binary min-heap of entries. A hand-rolled heap (rather than
// container/heap) keeps the hot path free of interface conversions.
type runQueue struct {
	h []entry
	// salt, when non-zero, replaces FIFO ordering among equal-time entries
	// with a seeded hash order (Schedule.FlipTies): each push's unique order
	// stamp is mixed with the salt, so a re-pushed entry draws a fresh coin —
	// same-instant ties resolve differently per schedule seed, yet no
	// processor can be starved by a fixed unlucky hash. Set once before Run
	// (applySchedule), never touched during dispatch.
	salt uint64
}

// less orders entries by (time, push order). FIFO ordering among equal-time
// entries makes Yield hand the baton to same-clock peers instead of spinning,
// and is deterministic because pushes happen in a deterministic order. Under
// a tie-flipping schedule the equal-time order is the salted hash of the push
// order instead — a different, equally deterministic linearization of events
// the conservative rule leaves unordered.
func (q *runQueue) less(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if q.salt != 0 {
		ha, hb := mix64(q.salt^a.order), mix64(q.salt^b.order)
		if ha != hb {
			return ha < hb
		}
	}
	return a.order < b.order
}

func (q *runQueue) push(e entry) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// peek returns the minimum entry without removing it.
func (q *runQueue) peek() (entry, bool) {
	if len(q.h) == 0 {
		return entry{}, false
	}
	return q.h[0], true
}

func (q *runQueue) pop() (entry, bool) {
	if len(q.h) == 0 {
		return entry{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.h) && q.less(q.h[l], q.h[smallest]) {
			smallest = l
		}
		if r < len(q.h) && q.less(q.h[r], q.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
	return top, true
}

func (q *runQueue) len() int { return len(q.h) }
