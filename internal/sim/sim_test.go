package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustEngine(t *testing.T, nodes, ppn int) *Engine {
	t.Helper()
	e, err := NewEngine(Config{Nodes: nodes, ProcsPerNode: ppn})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Nodes: 1, ProcsPerNode: 1}, true},
		{Config{Nodes: 8, ProcsPerNode: 4}, true},
		{Config{Nodes: 0, ProcsPerNode: 4}, false},
		{Config{Nodes: 4, ProcsPerNode: 0}, false},
		{Config{Nodes: -1, ProcsPerNode: 2}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
	if got := (Config{Nodes: 8, ProcsPerNode: 4}).TotalProcs(); got != 32 {
		t.Errorf("TotalProcs = %d, want 32", got)
	}
}

func TestProcIdentity(t *testing.T) {
	e := mustEngine(t, 3, 4)
	if e.NumProcs() != 12 {
		t.Fatalf("NumProcs = %d, want 12", e.NumProcs())
	}
	for i, p := range e.Procs() {
		if p.ID != i {
			t.Errorf("proc %d has ID %d", i, p.ID)
		}
		if want := i / 4; p.Node != want {
			t.Errorf("proc %d Node = %d, want %d", i, p.Node, want)
		}
		if want := i % 4; p.CPU != want {
			t.Errorf("proc %d CPU = %d, want %d", i, p.CPU, want)
		}
		if e.Proc(i) != p {
			t.Errorf("Proc(%d) mismatch", i)
		}
	}
}

// TestMinClockOrdering checks the core scheduling invariant: globally visible
// actions execute in virtual-time order, regardless of spawn order.
func TestMinClockOrdering(t *testing.T) {
	e := mustEngine(t, 1, 4)
	var order []int
	delays := []Time{300, 100, 400, 200}
	for i, p := range e.Procs() {
		d := delays[i]
		id := i
		e.Go(p, func(p *Proc) {
			p.Advance(d)
			p.Yield() // scheduling point before the visible action
			order = append(order, id)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	e := mustEngine(t, 1, 4)
	var order []int
	for i, p := range e.Procs() {
		id := i
		e.Go(p, func(p *Proc) {
			p.Advance(100)
			p.Yield()
			order = append(order, id)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("tie order = %v, want ascending ids", order)
		}
	}
}

func TestAdvanceAndNow(t *testing.T) {
	e := mustEngine(t, 1, 1)
	p := e.Proc(0)
	e.Go(p, func(p *Proc) {
		if p.Now() != 0 {
			t.Errorf("initial Now = %d", p.Now())
		}
		p.Advance(5 * Microsecond)
		if p.Now() != 5000 {
			t.Errorf("Now = %d, want 5000", p.Now())
		}
		p.AdvanceTo(3000) // in the past: no-op
		if p.Now() != 5000 {
			t.Errorf("AdvanceTo past moved clock to %d", p.Now())
		}
		p.AdvanceTo(9000)
		if p.Now() != 9000 {
			t.Errorf("AdvanceTo future: Now = %d, want 9000", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.MaxTime() != 9000 {
		t.Errorf("MaxTime = %d, want 9000", e.MaxTime())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	e := mustEngine(t, 1, 1)
	e.Go(e.Proc(0), func(p *Proc) { p.Advance(-1) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("Run error = %v, want negative-duration panic", err)
	}
}

func TestSleepUntil(t *testing.T) {
	e := mustEngine(t, 1, 2)
	var wakeOrder []int
	e.Go(e.Proc(0), func(p *Proc) {
		p.SleepUntil(1000)
		wakeOrder = append(wakeOrder, 0)
		if p.Now() != 1000 {
			t.Errorf("proc 0 woke at %d, want 1000", p.Now())
		}
	})
	e.Go(e.Proc(1), func(p *Proc) {
		p.SleepUntil(500)
		wakeOrder = append(wakeOrder, 1)
		p.SleepUntil(100) // past: immediate
		if p.Now() != 500 {
			t.Errorf("SleepUntil past moved clock to %d", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wakeOrder) != 2 || wakeOrder[0] != 1 || wakeOrder[1] != 0 {
		t.Fatalf("wake order = %v, want [1 0]", wakeOrder)
	}
}

func TestBlockAndWake(t *testing.T) {
	e := mustEngine(t, 1, 2)
	waiter, waker := e.Proc(0), e.Proc(1)
	var wokeAt Time
	e.Go(waiter, func(p *Proc) {
		p.Block("waiting for test wake")
		wokeAt = p.Now()
	})
	e.Go(waker, func(p *Proc) {
		p.Advance(2000)
		p.Yield()
		p.eng.WakeAt(waiter, 2500)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 2500 {
		t.Errorf("woke at %d, want 2500", wokeAt)
	}
}

// TestWakeBeforeBlock checks that a wake issued while the target is still
// running is not lost.
func TestWakeBeforeBlock(t *testing.T) {
	e := mustEngine(t, 1, 2)
	a, b := e.Proc(0), e.Proc(1)
	done := false
	e.Go(a, func(p *Proc) {
		// Run far ahead so b's wake lands while a is "running" in virtual
		// time terms (a blocks only after b has issued the wake).
		p.Advance(10000)
		p.Yield() // b (clock 0) runs to completion here
		p.Block("should consume pending wake")
		done = true
		if p.Now() != 10000 {
			t.Errorf("clock = %d, want 10000 (wake time in past)", p.Now())
		}
	})
	e.Go(b, func(p *Proc) {
		p.eng.WakeAt(a, 500) // a is queued at 10000; 500 is earlier, so it must supersede
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter never resumed")
	}
}

func TestWakeEarlierSupersedesQueued(t *testing.T) {
	e := mustEngine(t, 1, 2)
	a, b := e.Proc(0), e.Proc(1)
	var resumed Time
	e.Go(a, func(p *Proc) {
		p.YieldUntil(10000)
		resumed = p.Now()
	})
	e.Go(b, func(p *Proc) {
		p.Advance(100)
		p.Yield()
		p.eng.WakeAt(a, 200)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 200 {
		t.Errorf("resumed at %d, want 200 (early wake)", resumed)
	}
}

func TestWakeLaterDoesNotDelayQueued(t *testing.T) {
	e := mustEngine(t, 1, 2)
	a, b := e.Proc(0), e.Proc(1)
	var resumed Time
	e.Go(a, func(p *Proc) {
		p.YieldUntil(300)
		resumed = p.Now()
	})
	e.Go(b, func(p *Proc) {
		p.Yield()
		p.eng.WakeAt(a, 5000) // later than queued resume: must not delay
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 300 {
		t.Errorf("resumed at %d, want 300", resumed)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := mustEngine(t, 1, 2)
	e.Go(e.Proc(0), func(p *Proc) { p.Block("never woken (A)") })
	e.Go(e.Proc(1), func(p *Proc) { p.Block("never woken (B)") })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	for _, want := range []string{"deadlock", "never woken (A)", "never woken (B)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock error %q missing %q", err, want)
		}
	}
}

func TestPanicPropagation(t *testing.T) {
	e := mustEngine(t, 1, 2)
	e.Go(e.Proc(0), func(p *Proc) { panic("boom") })
	e.Go(e.Proc(1), func(p *Proc) { p.Advance(1) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run error = %v, want panic propagation", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := mustEngine(t, 1, 1)
	e.Go(e.Proc(0), func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestYieldIfQuantum(t *testing.T) {
	e := mustEngine(t, 1, 2)
	var trace []string
	e.Go(e.Proc(0), func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Advance(600)
			p.YieldIfQuantum(1000) // yields on every other iteration
		}
		trace = append(trace, "slow-done")
	})
	e.Go(e.Proc(1), func(p *Proc) {
		p.Advance(1500)
		p.Yield()
		trace = append(trace, "mid")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Proc 0 yields at 1200 and 2400; proc 1's action at 1500 must interleave
	// between them rather than waiting for proc 0 to finish at 2400.
	if len(trace) != 2 || trace[0] != "mid" {
		t.Fatalf("trace = %v, want [mid slow-done]", trace)
	}
}

func TestMailboxOrdering(t *testing.T) {
	e := mustEngine(t, 1, 3)
	recv, s1, s2 := e.Proc(0), e.Proc(1), e.Proc(2)
	var got []int
	e.Go(recv, func(p *Proc) {
		for i := 0; i < 4; i++ {
			m := p.Recv("test messages")
			got = append(got, m.Kind)
		}
	})
	e.Go(s1, func(p *Proc) {
		recv.Deliver(p.NewMsg(500, 1, nil))
		recv.Deliver(p.NewMsg(100, 2, nil))
	})
	e.Go(s2, func(p *Proc) {
		p.Advance(1)
		p.Yield()
		recv.Deliver(p.NewMsg(300, 3, nil))
		recv.Deliver(p.NewMsg(100, 4, nil)) // same time as kind=2: later seq
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("receive order = %v, want %v", got, want)
		}
	}
}

func TestRecvAdvancesClockToArrival(t *testing.T) {
	e := mustEngine(t, 1, 2)
	r, s := e.Proc(0), e.Proc(1)
	e.Go(r, func(p *Proc) {
		m := p.Recv("one message")
		if m.Kind != 7 {
			t.Errorf("Kind = %d", m.Kind)
		}
		if p.Now() != 4000 {
			t.Errorf("clock after Recv = %d, want 4000", p.Now())
		}
	})
	e.Go(s, func(p *Proc) {
		p.Advance(1000)
		p.Yield()
		r.Deliver(p.NewMsg(4000, 7, nil))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvFutureInvisible(t *testing.T) {
	e := mustEngine(t, 1, 2)
	r, s := e.Proc(0), e.Proc(1)
	e.Go(r, func(p *Proc) {
		p.Yield() // let sender deliver
		p.Yield()
		if _, ok := p.TryRecv(); ok {
			t.Error("future message visible at t=0")
		}
		if _, ok := p.PeekInbox(); ok {
			t.Error("future message peekable at t=0")
		}
		if p.InboxLen() != 1 {
			t.Errorf("InboxLen = %d, want 1", p.InboxLen())
		}
		p.AdvanceTo(900)
		if _, ok := p.TryRecv(); ok {
			t.Error("message visible before arrival")
		}
		p.AdvanceTo(1000)
		if m, ok := p.TryRecv(); !ok || m.Kind != 9 {
			t.Errorf("TryRecv at arrival = %v %v", m, ok)
		}
	})
	e.Go(s, func(p *Proc) {
		r.Deliver(p.NewMsg(1000, 9, nil))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs an irregular workload twice and checks final clocks
// match exactly.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := mustEngine(t, 2, 4)
		n := e.NumProcs()
		for i, p := range e.Procs() {
			i := i
			e.Go(p, func(p *Proc) {
				for step := 0; step < 20; step++ {
					p.Advance(Time((i*37+step*101)%500 + 1))
					if step%3 == 0 {
						p.Yield()
					}
					target := e.Proc((i + step) % n)
					if target != p {
						target.Deliver(p.NewMsg(p.Now()+Time(100+i), step, nil))
					}
					for {
						if _, ok := p.TryRecv(); !ok {
							break
						}
					}
				}
				// Drain any stragglers so the run terminates cleanly.
				for p.InboxLen() > 0 {
					p.Recv("drain")
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		clocks := make([]Time, n)
		for i, p := range e.Procs() {
			clocks[i] = p.Now()
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic clock for proc %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRunQueueProperty exercises the hand-rolled heap against a reference
// implementation with random operation sequences.
func TestRunQueueProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var q runQueue
		for i, at := range times {
			q.push(entry{at: Time(at), procID: i, seq: 1})
		}
		if q.len() != len(times) {
			return false
		}
		var prev entry
		first := true
		for {
			e, ok := q.pop()
			if !ok {
				break
			}
			if !first && q.less(e, prev) {
				return false
			}
			prev, first = e, false
		}
		return q.len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGoAfterRunPanics(t *testing.T) {
	e := mustEngine(t, 1, 2)
	e.Go(e.Proc(0), func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Go after Run did not panic")
		}
	}()
	e.Go(e.Proc(1), func(p *Proc) {})
}

func TestDoubleBodyPanics(t *testing.T) {
	e := mustEngine(t, 1, 1)
	e.Go(e.Proc(0), func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double Go did not panic")
		}
	}()
	e.Go(e.Proc(0), func(p *Proc) {})
}

// BenchmarkYield measures baton handoff throughput between two processors.
func BenchmarkYield(b *testing.B) {
	e, err := NewEngine(Config{Nodes: 1, ProcsPerNode: 2})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	for _, p := range e.Procs() {
		e.Go(p, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Advance(10)
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDeliverRecv measures message round trips through the mailbox.
func BenchmarkDeliverRecv(b *testing.B) {
	e, err := NewEngine(Config{Nodes: 2, ProcsPerNode: 1})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	a, c := e.Proc(0), e.Proc(1)
	e.Go(a, func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Deliver(p.NewMsg(p.Now()+100, 1, nil))
			p.Recv("pong")
		}
	})
	e.Go(c, func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Recv("ping")
			a.Deliver(p.NewMsg(p.Now()+100, 2, nil))
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
