package cache

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Alpha21064A, true},
		{Alpha21264, true},
		{Config{SizeBytes: 16384, LineBytes: 64}, true},
		{Config{SizeBytes: 0, LineBytes: 64}, false},
		{Config{SizeBytes: 1000, LineBytes: 64}, false}, // not power of two
		{Config{SizeBytes: 16384, LineBytes: 48}, false},
		{Config{SizeBytes: 64, LineBytes: 128}, false}, // line > cache
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestGeometry(t *testing.T) {
	if got := Alpha21064A.Lines(); got != 256 {
		t.Errorf("21064A lines = %d, want 256", got)
	}
}

func TestHitMissBasics(t *testing.T) {
	c := MustNew(Alpha21064A)
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("repeat access missed")
	}
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Error("next-line access hit cold")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestConflictEviction(t *testing.T) {
	c := MustNew(Alpha21064A)
	a := uint64(0x0000)
	b := a + uint64(Alpha21064A.SizeBytes) // same index, different tag
	c.Access(a)
	c.Access(b) // evicts a
	if c.Access(a) {
		t.Error("evicted line still hit")
	}
	if c.Access(b) {
		t.Error("b evicted unexpectedly by a's refill... wait, a refilled so b must miss")
	}
}

// TestWriteDoublingPressure demonstrates the paper's §4.3 effect in
// miniature: a working set that fits the 16 KB cache exactly starts
// conflict-missing once every write also touches a doubled address with a
// flipped index bit.
func TestWriteDoublingPressure(t *testing.T) {
	undoubled := MustNew(Alpha21064A)
	doubled := MustNew(Alpha21064A)
	// The doubled write lands in the Memory Channel region: a distinct
	// address region (different tag) whose index differs from the local copy
	// by the flipped low offset bit (paper §3.3.1).
	const mcRegion = 1 << 40
	const doubleBit = 0x2000

	// Working set: 16 KB touched repeatedly.
	misses := func(c *L1, double bool) uint64 {
		c.ResetStats()
		for pass := 0; pass < 8; pass++ {
			for off := uint64(0); off < 16*1024; off += 8 {
				c.Access(off)
				if double {
					c.Access((off | mcRegion) ^ doubleBit)
				}
			}
		}
		return c.Misses()
	}
	mu := misses(undoubled, false)
	md := misses(doubled, true)
	if mu >= md {
		t.Errorf("undoubled misses %d not < doubled misses %d", mu, md)
	}
	// Undoubled: compulsory misses only on the first pass.
	if mu != 256 {
		t.Errorf("undoubled misses = %d, want 256 (compulsory only)", mu)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(Alpha21064A)
	c.Access(0x40)
	c.Invalidate(0x40)
	if c.Access(0x40) {
		t.Error("invalidated line hit")
	}
	c.Invalidate(0x9999999) // absent line: no-op
	c.Access(0x80)
	c.InvalidateAll()
	if c.Access(0x80) {
		t.Error("line survived InvalidateAll")
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(Alpha21064A)
	c.Access(0)
	c.Access(0)
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("stats not reset")
	}
	if !c.Access(0) {
		t.Error("ResetStats must not drop contents")
	}
}

// TestTagDisambiguation: two addresses mapping to the same index must never
// be confused, for arbitrary addresses.
func TestTagDisambiguation(t *testing.T) {
	f := func(a, b uint32) bool {
		c := MustNew(Alpha21064A)
		aa := uint64(a) &^ 0x3F // align to line
		bb := uint64(b) &^ 0x3F
		c.Access(aa)
		hit := c.Access(bb)
		return hit == (aa>>6 == bb>>6) // hit iff same line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{SizeBytes: 7, LineBytes: 3}); err == nil {
		t.Fatal("New accepted bad config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func BenchmarkAccess(b *testing.B) {
	c := MustNew(Alpha21064A)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 8)
	}
}
