// Package cache models the first-level data cache of the simulated
// processors. The paper's 21064A has a 16 KB direct-mapped L1 with 64-byte
// lines; the cache-pressure effect of Cashmere's write doubling on LU and
// Gauss (paper §4.3) depends directly on this geometry, so the model is a
// functional direct-mapped tag array rather than a statistical estimate.
package cache

import "fmt"

// Config describes an L1 cache geometry.
type Config struct {
	// SizeBytes is the total cache capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the cache line size. Must be a power of two.
	LineBytes int
}

// Alpha21064A is the paper's first-level cache: 16 KB direct-mapped, 64-byte
// lines (§4: "A cache line is 64 bytes"; §1: "very small first-level caches
// ... the 16K available").
var Alpha21064A = Config{SizeBytes: 16 * 1024, LineBytes: 64}

// Alpha21264 approximates the larger L1 of the follow-on processor the paper
// projects would "largely eliminate" the write-doubling working-set problem.
var Alpha21264 = Config{SizeBytes: 256 * 1024, LineBytes: 64}

// Validate reports whether the geometry is usable.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0 {
		return fmt.Errorf("cache: size %d is not a positive power of two", c.SizeBytes)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.LineBytes > c.SizeBytes {
		return fmt.Errorf("cache: line size %d exceeds cache size %d", c.LineBytes, c.SizeBytes)
	}
	return nil
}

// Lines returns the number of lines in the cache.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// L1 is a direct-mapped cache model. It tracks only tags (the simulator keeps
// data elsewhere); Access reports hit or miss and updates the tag array.
type L1 struct {
	cfg       Config
	lineShift uint
	indexMask uint64
	tagShift  uint     // bits of line number consumed by the index
	tags      []uint64 // tag+1; 0 means invalid

	hits   uint64
	misses uint64
}

// New creates an L1 model with the given geometry.
func New(cfg Config) (*L1, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &L1{cfg: cfg, tags: make([]uint64, cfg.Lines())}
	for 1<<c.lineShift < cfg.LineBytes {
		c.lineShift++
	}
	c.indexMask = uint64(cfg.Lines() - 1)
	c.tagShift = uint(len64(c.indexMask))
	return c, nil
}

// MustNew is New but panics on a bad geometry; for use with the package-level
// preset configurations.
func MustNew(cfg Config) *L1 {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *L1) Config() Config { return c.cfg }

// Access touches the line containing addr and reports whether it hit. On a
// miss the line is filled (previous occupant evicted).
func (c *L1) Access(addr uint64) bool {
	line := addr >> c.lineShift
	idx := line & c.indexMask
	tag := line>>c.tagShift + 1
	if c.tags[idx] == tag {
		c.hits++
		return true
	}
	c.tags[idx] = tag
	c.misses++
	return false
}

// Invalidate drops the line containing addr if present, modelling the Memory
// Channel's receive-side invalidation ("When a write appears in a receive
// region it invalidates any locally cached copies of its line", §3.1).
func (c *L1) Invalidate(addr uint64) {
	line := addr >> c.lineShift
	idx := line & c.indexMask
	tag := line>>c.tagShift + 1
	if c.tags[idx] == tag {
		c.tags[idx] = 0
	}
}

// InvalidateAll empties the cache.
func (c *L1) InvalidateAll() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// Hits returns the number of hits so far.
func (c *L1) Hits() uint64 { return c.hits }

// Misses returns the number of misses so far.
func (c *L1) Misses() uint64 { return c.misses }

// ResetStats zeroes the hit/miss counters without touching cache contents.
func (c *L1) ResetStats() { c.hits, c.misses = 0, 0 }

// len64 returns the number of significant bits in mask+0 pattern; for a mask
// of form 2^k-1 it returns k.
func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}
