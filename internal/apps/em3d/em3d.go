// Package em3d implements the paper's Em3d application: electromagnetic wave
// propagation through 3D objects. The major data structure is a bipartite
// graph of electric and magnetic field nodes, equally distributed among
// processors; each phase updates one side's potentials from the other
// side's, with dependencies mostly local and a fraction crossing partition
// boundaries, and barriers between phases (§4.2).
package em3d

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	// Nodes is the number of nodes per side (E and H).
	Nodes int
	// Degree is the number of dependencies per node.
	Degree int
	// RemoteFrac is the fraction of dependencies that cross processor
	// partition boundaries.
	RemoteFrac float64
	// Iters is the number of E+H phase pairs.
	Iters int
	Seed  int64
}

// Default is the standard benchmark size (the paper uses 60160 nodes).
func Default() Config {
	return Config{Nodes: 32 * 1024, Degree: 6, RemoteFrac: 0.03, Iters: 5, Seed: 5}
}

// Small is a fast size for tests.
func Small() Config {
	return Config{Nodes: 2048, Degree: 4, RemoteFrac: 0.1, Iters: 3, Seed: 5}
}

// UpdateCost is the charged cost per dependency accumulation (load the
// neighbour pointer and weight, multiply-accumulate into the potential).
const UpdateCost = 600 * sim.Nanosecond

// New builds the Em3d program.
func New(c Config) *core.Program {
	if c.Nodes < 16 || c.Degree < 1 || c.RemoteFrac < 0 || c.RemoteFrac > 1 || c.Iters < 1 {
		panic(fmt.Sprintf("em3d: bad config %+v", c))
	}
	n := c.Nodes
	l := core.NewLayout()
	eval := l.F64Pages(n)
	hval := l.F64Pages(n)
	// Dependency index and weight tables (read-only after init).
	edep := l.I64Pages(n * c.Degree)
	hdep := l.I64Pages(n * c.Degree)
	ewt := l.F64Pages(n * c.Degree)
	hwt := l.F64Pages(n * c.Degree)

	// Build the dependency graph deterministically: node i depends mostly
	// on nearby nodes of the other side, with RemoteFrac jumping anywhere.
	build := func(dep core.I64Array, wt core.F64Array, w *core.ImageWriter, seed int64) {
		rng := apputil.Rng(seed)
		for i := 0; i < n; i++ {
			for d := 0; d < c.Degree; d++ {
				var j int
				if rng.Float64() < c.RemoteFrac {
					j = rng.Intn(n)
				} else {
					j = i + rng.Intn(33) - 16 // local window
					if j < 0 {
						j += n
					}
					if j >= n {
						j -= n
					}
				}
				dep.Init(w, i*c.Degree+d, int64(j))
				wt.Init(w, i*c.Degree+d, rng.Float64()*0.1)
			}
		}
	}

	return &core.Program{
		Name:        "Em3d",
		SharedBytes: l.Size(),
		Barriers:    2,
		Init: func(w *core.ImageWriter) {
			rng := apputil.Rng(c.Seed)
			for i := 0; i < n; i++ {
				eval.Init(w, i, rng.Float64())
				hval.Init(w, i, rng.Float64())
			}
			build(edep, ewt, w, c.Seed+1)
			build(hdep, hwt, w, c.Seed+2)
		},
		Body: func(p *core.Proc) {
			lo, hi := apputil.Band(n, p.NumProcs(), p.Rank())
			phase := func(dst core.F64Array, src core.F64Array, dep core.I64Array, wt core.F64Array) {
				for i := lo; i < hi; i++ {
					p.PollPoint()
					v := dst.At(p, i)
					for d := 0; d < c.Degree; d++ {
						j := int(dep.At(p, i*c.Degree+d))
						v -= wt.At(p, i*c.Degree+d) * src.At(p, j)
						p.Compute(UpdateCost)
					}
					dst.Set(p, i, v)
				}
			}
			for iter := 0; iter < c.Iters; iter++ {
				phase(eval, hval, edep, ewt)
				p.Barrier(0)
				phase(hval, eval, hdep, hwt)
				p.Barrier(1)
			}
			p.Finish()
			if p.Rank() == 0 {
				// Post-Finish verification sweep: bulk-read both field
				// arrays, then sum in the original interleaved order.
				sum := 0.0
				ebuf := make([]float64, n)
				hbuf := make([]float64, n)
				p.ReadF64Range(eval.Addr(0), ebuf)
				p.ReadF64Range(hval.Addr(0), hbuf)
				for i := 0; i < n; i++ {
					sum += ebuf[i] + hbuf[i]
				}
				p.ReportCheck("field", sum)
			}
		},
	}
}
