package em3d

import (
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 0)
	if results["sequential"].Checks["field"] == 0 {
		t.Error("zero field checksum")
	}
}

func TestRemoteFractionDrivesTraffic(t *testing.T) {
	// Large enough that each band spans multiple pages, so locality matters.
	lowCfg := Config{Nodes: 8192, Degree: 4, RemoteFrac: 0, Iters: 2, Seed: 5}
	highCfg := lowCfg
	highCfg.RemoteFrac = 0.5
	low := apptest.RunVariant(t, func() *core.Program { return New(lowCfg) }, "csm_poll", 4, 1)
	high := apptest.RunVariant(t, func() *core.Program { return New(highCfg) }, "csm_poll", 4, 1)
	if high.Total.PageTransfers <= low.Total.PageTransfers {
		t.Errorf("remote dependencies did not increase page transfers: %d vs %d",
			high.Total.PageTransfers, low.Total.PageTransfers)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{Nodes: 1})
}
