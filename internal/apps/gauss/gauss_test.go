package gauss

import (
	"math"
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 0)
	sol := results["sequential"].Checks["solution"]
	if sol == 0 || math.IsNaN(sol) {
		t.Errorf("degenerate solution checksum %v", sol)
	}
}

func TestSolutionSolvesSystem(t *testing.T) {
	// For a diagonally dominant random system the solution components are
	// bounded; sanity-check magnitude.
	res := apptest.RunVariant(t, func() *core.Program { return New(Small()) }, "sequential", 1, 1)
	sol := res.Checks["solution"]
	if math.IsNaN(sol) || math.Abs(sol) > 1e6 {
		t.Errorf("solution checksum %v out of range", sol)
	}
}

func TestPipelineParallelism(t *testing.T) {
	// Gauss uses per-row flags, not barriers, inside elimination: lock
	// traffic should scale with rows.
	res := apptest.RunVariant(t, func() *core.Program { return New(Small()) }, "csm_poll", 2, 2)
	if res.Total.LockAcquires < int64(Small().N) {
		t.Errorf("only %d lock acquires for %d rows", res.Total.LockAcquires, Small().N)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{N: 1})
}
