// Package gauss implements the paper's Gauss application: a solver for a
// linear system AX = B using Gaussian elimination and back-substitution.
// Each row is the responsibility of a single processor; rows are distributed
// cyclically for load balance, and a synchronization flag per row announces
// when it is available for use as a pivot (§4.2). The flags are implemented
// with per-row locks, the standard DSM idiom for flag synchronization under
// release consistency.
package gauss

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	N    int // matrix dimension (the paper uses 2048)
	Seed int64
}

// Default is the standard benchmark size.
func Default() Config { return Config{N: 320, Seed: 31} }

// Small is a fast size for tests.
func Small() Config { return Config{N: 64, Seed: 31} }

// FlopCost is the charged cost of one multiply-subtract.
const FlopCost = 10 * sim.Nanosecond

// New builds the Gauss program.
func New(c Config) *core.Program {
	if c.N < 4 {
		panic(fmt.Sprintf("gauss: bad config %+v", c))
	}
	n := c.N
	w := n + 1 // row width: matrix row plus the b entry
	l := core.NewLayout()
	rows := make([]core.F64Array, n)
	for i := range rows {
		// Row-aligned storage: each row starts on a page boundary so row
		// ownership matches coherence units where possible.
		rows[i] = l.F64Pages(w)
	}
	flags := l.I64Pages(n)

	return &core.Program{
		Name:        "Gauss",
		SharedBytes: l.Size(),
		Locks:       n,
		Barriers:    1,
		Init: func(iw *core.ImageWriter) {
			rng := apputil.Rng(c.Seed)
			for i := 0; i < n; i++ {
				sum := 0.0
				for j := 0; j < n; j++ {
					v := rng.Float64()
					rows[i].Init(iw, j, v)
					sum += v
				}
				// Diagonal dominance: no pivoting needed.
				rows[i].Init(iw, i, sum+1.0)
				rows[i].Init(iw, n, rng.Float64()*float64(n)) // b
			}
		},
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			me := p.Rank()
			waitFlag := func(k int) {
				for {
					p.Lock(k)
					v := flags.At(p, k)
					p.Unlock(k)
					if v != 0 {
						return
					}
					p.Compute(5 * sim.Microsecond)
				}
			}
			for k := 0; k < n; k++ {
				if apputil.OwnerCyclic(k, np) == me {
					// Normalize pivot row k and publish it.
					piv := rows[k].At(p, k)
					for j := k; j <= n; j++ {
						p.PollPoint()
						rows[k].Set(p, j, rows[k].At(p, j)/piv)
						p.Compute(FlopCost)
					}
					p.Lock(k)
					flags.Set(p, k, 1)
					p.Unlock(k)
				} else {
					waitFlag(k)
				}
				// Eliminate column k from our rows below k.
				for i := k + 1; i < n; i++ {
					if apputil.OwnerCyclic(i, np) != me {
						continue
					}
					f := rows[i].At(p, k)
					if f == 0 {
						continue
					}
					for j := k; j <= n; j++ {
						p.PollPoint()
						rows[i].Set(p, j, rows[i].At(p, j)-f*rows[k].At(p, j))
						p.Compute(FlopCost)
					}
				}
			}
			p.Barrier(0)
			p.Finish()
			if me == 0 {
				// Back-substitution (sequential) and residual-free checksum.
				// Post-Finish: each row's trailing segment is read in one
				// bulk run (same element order as the scalar loop, so x is
				// bit-identical).
				x := make([]float64, n)
				buf := make([]float64, n)
				for i := n - 1; i >= 0; i-- {
					s := rows[i].At(p, n)
					seg := buf[:n-1-i]
					p.ReadF64Range(rows[i].Addr(i+1), seg)
					for j := i + 1; j < n; j++ {
						s -= seg[j-i-1] * x[j]
					}
					x[i] = s / rows[i].At(p, i)
				}
				sum := 0.0
				for i := 0; i < n; i++ {
					if math.IsNaN(x[i]) {
						p.ReportCheck("solution", math.NaN())
						return
					}
					sum += x[i]
				}
				p.ReportCheck("solution", sum)
			}
		},
	}
}
