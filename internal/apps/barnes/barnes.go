// Package barnes implements the paper's Barnes application: an N-body
// simulation using the hierarchical Barnes-Hut method (from SPLASH). Each
// leaf of the octree is a body; internal nodes are cells summarizing bodies
// in close physical proximity. Tree construction is performed sequentially
// (by rank 0, as in the paper); the force-computation and position-update
// phases are parallelized over contiguous body bands with barriers between
// phases (§4.2). The original's dynamic load balancing is simplified to
// static bands (documented in DESIGN.md).
package barnes

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	Bodies int
	Steps  int
	Theta  float64 // opening criterion
	Seed   int64
}

// Default is the standard benchmark size (the paper uses 128K bodies).
func Default() Config { return Config{Bodies: 2048, Steps: 3, Theta: 0.6, Seed: 11} }

// Small is a fast size for tests.
func Small() Config { return Config{Bodies: 256, Steps: 2, Theta: 0.7, Seed: 11} }

// Charged per tree level visited during insertion and per cell interaction
// during force computation.
const (
	InsertCost = 60 * sim.Nanosecond
	ForceCost  = 90 * sim.Nanosecond
)

const dt = 0.01

// Child-slot encoding in the shared tree.
const (
	slotEmpty = 0 // no child
	// Cells are stored as c+1; bodies as -(b+1).
)

// New builds the Barnes program.
func New(c Config) *core.Program {
	if c.Bodies < 8 || c.Steps < 1 || c.Theta <= 0 {
		panic(fmt.Sprintf("barnes: bad config %+v", c))
	}
	n := c.Bodies
	maxCells := 4 * n
	l := core.NewLayout()
	pos := l.F64Pages(3 * n)
	vel := l.F64Pages(3 * n)
	acc := l.F64Pages(3 * n)
	mass := l.F64Pages(n)
	cellChild := l.I64Pages(8 * maxCells)
	cellCom := l.F64Pages(3 * maxCells)
	cellMass := l.F64Pages(maxCells)
	cellWidth := l.F64Pages(maxCells)
	meta := l.I64Pages(1) // [0] = number of cells

	return &core.Program{
		Name:        "Barnes",
		SharedBytes: l.Size(),
		Barriers:    3,
		Init: func(w *core.ImageWriter) {
			rng := apputil.Rng(c.Seed)
			for i := 0; i < n; i++ {
				// Plummer-ish clustered sphere in the unit cube.
				r := 0.1 + 0.35*rng.Float64()
				th := rng.Float64() * 2 * math.Pi
				ph := math.Acos(2*rng.Float64() - 1)
				w.WriteF64(pos.Addr(3*i), 0.5+r*math.Sin(ph)*math.Cos(th))
				w.WriteF64(pos.Addr(3*i+1), 0.5+r*math.Sin(ph)*math.Sin(th))
				w.WriteF64(pos.Addr(3*i+2), 0.5+r*math.Cos(ph))
				mass.Init(w, i, 1.0/float64(n))
				for d := 0; d < 3; d++ {
					vel.Init(w, 3*i+d, (rng.Float64()-0.5)*0.05)
				}
			}
		},
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			me := p.Rank()
			lo, hi := apputil.Band(n, np, me)

			// Tree-builder state local to rank 0: cell geometric centers and
			// a per-step allocation counter (geometry is only needed during
			// construction, so it stays private, as in SPLASH).
			var ctr [][3]float64
			newCell := func(cx, cy, cz, width float64) int {
				id := int(meta.At(p, 0))
				if id >= maxCells {
					panic("barnes: cell pool exhausted")
				}
				meta.Set(p, 0, int64(id+1))
				for s := 0; s < 8; s++ {
					cellChild.Set(p, id*8+s, slotEmpty)
				}
				cellWidth.Set(p, id, width)
				cellMass.Set(p, id, 0)
				for id >= len(ctr) {
					ctr = append(ctr, [3]float64{})
				}
				ctr[id] = [3]float64{cx, cy, cz}
				return id
			}
			bodyPos := func(b int) (float64, float64, float64) {
				return pos.At(p, 3*b), pos.At(p, 3*b+1), pos.At(p, 3*b+2)
			}
			octant := func(cell int, x, y, z float64) int {
				o := 0
				if x >= ctr[cell][0] {
					o |= 1
				}
				if y >= ctr[cell][1] {
					o |= 2
				}
				if z >= ctr[cell][2] {
					o |= 4
				}
				return o
			}
			childCenter := func(cell, o int) (float64, float64, float64) {
				q := cellWidth.At(p, cell) / 4
				cx, cy, cz := ctr[cell][0]-q, ctr[cell][1]-q, ctr[cell][2]-q
				if o&1 != 0 {
					cx += 2 * q
				}
				if o&2 != 0 {
					cy += 2 * q
				}
				if o&4 != 0 {
					cz += 2 * q
				}
				return cx, cy, cz
			}
			var insert func(cell, body int, depth int)
			insert = func(cell, body int, depth int) {
				p.Compute(InsertCost)
				if depth > 64 {
					panic("barnes: insertion depth exceeded (coincident bodies?)")
				}
				x, y, z := bodyPos(body)
				o := octant(cell, x, y, z)
				slot := cellChild.At(p, cell*8+o)
				switch {
				case slot == slotEmpty:
					cellChild.Set(p, cell*8+o, int64(-(body + 1)))
				case slot < 0:
					// Occupied by a body: split into a subcell.
					other := int(-slot - 1)
					cx, cy, cz := childCenter(cell, o)
					sub := newCell(cx, cy, cz, cellWidth.At(p, cell)/2)
					cellChild.Set(p, cell*8+o, int64(sub+1))
					insert(sub, other, depth+1)
					insert(sub, body, depth+1)
				default:
					insert(int(slot-1), body, depth+1)
				}
			}
			// summarize computes centers of mass bottom-up.
			var summarize func(cell int) (float64, float64, float64, float64)
			summarize = func(cell int) (mx, my, mz, m float64) {
				for s := 0; s < 8; s++ {
					slot := cellChild.At(p, cell*8+s)
					if slot == slotEmpty {
						continue
					}
					p.Compute(InsertCost)
					if slot < 0 {
						b := int(-slot - 1)
						bm := mass.At(p, b)
						x, y, z := bodyPos(b)
						mx += bm * x
						my += bm * y
						mz += bm * z
						m += bm
					} else {
						sx, sy, sz, sm := summarize(int(slot - 1))
						mx += sx
						my += sy
						mz += sz
						m += sm
					}
				}
				if m > 0 {
					cellCom.Set(p, cell*3, mx/m)
					cellCom.Set(p, cell*3+1, my/m)
					cellCom.Set(p, cell*3+2, mz/m)
				}
				cellMass.Set(p, cell, m)
				return mx, my, mz, m
			}

			// force walks the tree for one body.
			force := func(b int) (float64, float64, float64) {
				x, y, z := bodyPos(b)
				var fx, fy, fz float64
				var walk func(cell int)
				walk = func(cell int) {
					for s := 0; s < 8; s++ {
						p.PollPoint()
						slot := cellChild.At(p, cell*8+s)
						if slot == slotEmpty {
							continue
						}
						if slot < 0 {
							ob := int(-slot - 1)
							if ob == b {
								continue
							}
							ox, oy, oz := bodyPos(ob)
							dx, dy, dz := ox-x, oy-y, oz-z
							r2 := dx*dx + dy*dy + dz*dz + 1e-4
							f := mass.At(p, ob) / (r2 * math.Sqrt(r2))
							fx += f * dx
							fy += f * dy
							fz += f * dz
							p.Compute(ForceCost)
							continue
						}
						sc := int(slot - 1)
						cx := cellCom.At(p, sc*3)
						cy := cellCom.At(p, sc*3+1)
						cz := cellCom.At(p, sc*3+2)
						dx, dy, dz := cx-x, cy-y, cz-z
						r2 := dx*dx + dy*dy + dz*dz + 1e-4
						w := cellWidth.At(p, sc)
						p.Compute(ForceCost)
						if w*w < c.Theta*c.Theta*r2 {
							// Far enough: use the cell's center of mass.
							f := cellMass.At(p, sc) / (r2 * math.Sqrt(r2))
							fx += f * dx
							fy += f * dy
							fz += f * dz
						} else {
							walk(sc)
						}
					}
				}
				walk(0)
				return fx, fy, fz
			}

			for step := 0; step < c.Steps; step++ {
				if me == 0 {
					// Sequential tree construction (paper: "performed
					// sequentially").
					meta.Set(p, 0, 0)
					root := newCell(0.5, 0.5, 0.5, 1.0)
					_ = root
					for b := 0; b < n; b++ {
						insert(0, b, 0)
					}
					summarize(0)
				}
				p.Barrier(0)
				// Parallel force computation over body bands.
				for b := lo; b < hi; b++ {
					fx, fy, fz := force(b)
					acc.Set(p, 3*b, fx)
					acc.Set(p, 3*b+1, fy)
					acc.Set(p, 3*b+2, fz)
				}
				p.Barrier(1)
				// Parallel integration.
				for b := lo; b < hi; b++ {
					p.PollPoint()
					for d := 0; d < 3; d++ {
						v := vel.At(p, 3*b+d) + dt*acc.At(p, 3*b+d)
						vel.Set(p, 3*b+d, v)
						x := pos.At(p, 3*b+d) + dt*v
						// Keep bodies inside the unit cube (reflecting walls)
						// so the fixed root cell always covers them.
						if x < 0.01 {
							x = 0.02 - x
							vel.Set(p, 3*b+d, -v)
						}
						if x > 0.99 {
							x = 1.98 - x
							vel.Set(p, 3*b+d, -v)
						}
						pos.Set(p, 3*b+d, x)
					}
				}
				p.Barrier(2)
			}
			p.Finish()
			if me == 0 {
				// Post-Finish verification sweep: one bulk read of the
				// position array, summed in the original element order.
				sum := 0.0
				pbuf := make([]float64, 3*n)
				p.ReadF64Range(pos.Addr(0), pbuf)
				for _, v := range pbuf {
					sum += math.Abs(v)
				}
				p.ReportCheck("positions", sum)
			}
		},
	}
}
