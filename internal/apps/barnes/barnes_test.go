package barnes

import (
	"math"
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 0)
	sum := results["sequential"].Checks["positions"]
	if sum == 0 || math.IsNaN(sum) {
		t.Errorf("degenerate position checksum %v", sum)
	}
	// Bodies stay in the unit cube.
	if sum > float64(3*Small().Bodies) {
		t.Errorf("position checksum %v outside cube bound", sum)
	}
}

func TestTreeIsReadShared(t *testing.T) {
	// The sequentially built tree is read by everyone: remote processors
	// must fetch tree pages each step.
	res := apptest.RunVariant(t, func() *core.Program { return New(Small()) }, "csm_poll", 2, 1)
	if res.Total.PageTransfers == 0 {
		t.Error("no page transfers for tree distribution")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{Bodies: 1})
}
