package ilink

import (
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 0)
	if results["sequential"].Checks["likelihood"] == 0 {
		t.Error("zero likelihood")
	}
}

// TestSparsityFavorsDiffs checks the paper's Ilink observation: TreadMarks
// moves less data than Cashmere because diffs capture only the sparse
// modifications while Cashmere transfers whole pages.
func TestSparsityFavorsDiffs(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	csm := apptest.RunVariant(t, mk, "csm_poll", 2, 1)
	tmk := apptest.RunVariant(t, mk, "tmk_mc_poll", 2, 1)
	csmData := csm.Traffic["page"]
	tmkData := tmk.Traffic["page"]
	if tmkData >= csmData {
		t.Errorf("TMK page data %d not below CSM %d despite sparsity", tmkData, csmData)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{Elements: 1})
}
