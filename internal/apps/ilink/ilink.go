// Package ilink implements the paper's Ilink application: the computational
// core of the FASTLINK genetic linkage analysis package. The main shared
// data is a pool of sparse arrays of genotype probabilities; a master
// processor assigns nonzero elements to processors round-robin for load
// balance, each processor updates its elements, and the master then sums the
// contributions — an inherently serial component that limits scalability
// (§4.2). Because only a small portion of each page is modified between
// synchronization operations, TreadMarks' diffs move much less data than
// Cashmere's whole-page transfers, the paper's key Ilink observation.
package ilink

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	// Elements is the genotype array size.
	Elements int
	// Density is the fraction of nonzero entries (sparse pattern).
	Density float64
	// Iters is the number of update/summation rounds (likelihood
	// evaluations).
	Iters int
	Seed  int64
}

// Default is the standard benchmark size.
func Default() Config { return Config{Elements: 64 * 1024, Density: 0.10, Iters: 6, Seed: 97} }

// Small is a fast size for tests.
func Small() Config { return Config{Elements: 8 * 1024, Density: 0.15, Iters: 3, Seed: 97} }

// UpdateCost is the charged cost per element probability update. Genotype
// probability updates in FASTLINK loop over haplotype combinations, so each
// is tens of microseconds of computation.
const UpdateCost = 30 * sim.Microsecond

// New builds the Ilink program.
func New(c Config) *core.Program {
	if c.Elements < 64 || c.Density <= 0 || c.Density > 1 || c.Iters < 1 {
		panic(fmt.Sprintf("ilink: bad config %+v", c))
	}
	l := core.NewLayout()
	gen := l.F64Pages(c.Elements)
	result := l.F64Pages(1)

	// The sparsity pattern is fixed (genotype structure): precompute the
	// nonzero indices deterministically.
	rng := apputil.Rng(c.Seed)
	var nonzero []int
	for i := 0; i < c.Elements; i++ {
		if rng.Float64() < c.Density {
			nonzero = append(nonzero, i)
		}
	}

	return &core.Program{
		Name:        "Ilink",
		SharedBytes: l.Size(),
		Barriers:    2,
		Init: func(w *core.ImageWriter) {
			r := apputil.Rng(c.Seed + 1)
			for _, i := range nonzero {
				gen.Init(w, i, r.Float64())
			}
		},
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			me := p.Rank()
			for iter := 0; iter < c.Iters; iter++ {
				// Update phase: the master's round-robin assignment maps
				// nonzero element e to processor e mod np.
				scale := 1.0 + 1.0/float64(iter+2)
				for idx, e := range nonzero {
					if idx%np != me {
						continue
					}
					p.PollPoint()
					gen.Set(p, e, gen.At(p, e)*scale*0.75)
					p.Compute(UpdateCost)
				}
				p.Barrier(0)
				// Summation phase: the master accumulates all contributions
				// (serial component).
				if me == 0 {
					sum := 0.0
					for _, e := range nonzero {
						p.PollPoint()
						sum += gen.At(p, e)
						p.Compute(500 * sim.Nanosecond)
					}
					result.Set(p, 0, sum)
				}
				p.Barrier(1)
			}
			p.Finish()
			if me == 0 {
				p.ReportCheck("likelihood", result.At(p, 0))
			}
		},
	}
}
