// Package apps registers the paper's eight benchmark applications (§4.2) so
// the harness and tools can construct them by name.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/apps/barnes"
	"repro/internal/apps/em3d"
	"repro/internal/apps/gauss"
	"repro/internal/apps/ilink"
	"repro/internal/apps/lu"
	"repro/internal/apps/sor"
	"repro/internal/apps/tsp"
	"repro/internal/apps/water"
	"repro/internal/core"
)

// Size selects a dataset scale.
type Size string

// Dataset scales. Default approximates the paper's workload shape at a size
// a simulation sweep can complete; Small is for tests.
const (
	SizeSmall   Size = "small"
	SizeDefault Size = "default"
)

// Entry describes one registered application.
type Entry struct {
	// Name as reported in the paper's tables.
	Name string
	// Problem returns a human-readable problem-size string for the given
	// scale (Table 2's "Problem Size" column).
	Problem func(Size) string
	// New builds the program at the given scale.
	New func(Size) *core.Program
	// CheckTolerance is the relative tolerance for cross-protocol
	// validation of reported checks (0 = exact).
	CheckTolerance float64
}

var registry = map[string]Entry{}

func register(e Entry) { registry[e.Name] = e }

// Get returns the application entry by (case-sensitive) name.
func Get(name string) (Entry, error) {
	e, ok := registry[name]
	if !ok {
		return Entry{}, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return e, nil
}

// Names returns all registered application names, sorted in the paper's
// presentation order where possible.
func Names() []string {
	order := map[string]int{
		"SOR": 0, "LU": 1, "Water": 2, "TSP": 3,
		"Gauss": 4, "Ilink": 5, "Em3d": 6, "Barnes": 7,
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	return names
}

func init() {
	register(Entry{
		Name: "SOR",
		Problem: func(s Size) string {
			c := sorConfig(s)
			return fmt.Sprintf("%dx%d, %d iters", c.Rows, c.Cols, c.Iters)
		},
		New:            func(s Size) *core.Program { return sor.New(sorConfig(s)) },
		CheckTolerance: 0,
	})
	register(Entry{
		Name: "LU",
		Problem: func(s Size) string {
			c := luConfig(s)
			return fmt.Sprintf("%dx%d, block %d", c.N, c.N, c.B)
		},
		New:            func(s Size) *core.Program { return lu.New(luConfig(s)) },
		CheckTolerance: 0,
	})
	register(Entry{
		Name: "Water",
		Problem: func(s Size) string {
			c := waterConfig(s)
			return fmt.Sprintf("%d mols, %d steps", c.Mols, c.Steps)
		},
		New: func(s Size) *core.Program { return water.New(waterConfig(s)) },
		// Force merge order depends on lock timing: tolerate rounding drift.
		CheckTolerance: 1e-6,
	})
	register(Entry{
		Name: "TSP",
		Problem: func(s Size) string {
			return fmt.Sprintf("%d cities", tspConfig(s).Cities)
		},
		New:            func(s Size) *core.Program { return tsp.New(tspConfig(s)) },
		CheckTolerance: 0,
	})
	register(Entry{
		Name: "Gauss",
		Problem: func(s Size) string {
			c := gaussConfig(s)
			return fmt.Sprintf("%dx%d", c.N, c.N)
		},
		New:            func(s Size) *core.Program { return gauss.New(gaussConfig(s)) },
		CheckTolerance: 0,
	})
	register(Entry{
		Name: "Ilink",
		Problem: func(s Size) string {
			c := ilinkConfig(s)
			return fmt.Sprintf("%dK elems, %.0f%% dense, %d iters", c.Elements/1024, c.Density*100, c.Iters)
		},
		New:            func(s Size) *core.Program { return ilink.New(ilinkConfig(s)) },
		CheckTolerance: 0,
	})
	register(Entry{
		Name: "Em3d",
		Problem: func(s Size) string {
			c := em3dConfig(s)
			return fmt.Sprintf("%d nodes, deg %d, %d iters", 2*c.Nodes, c.Degree, c.Iters)
		},
		New:            func(s Size) *core.Program { return em3d.New(em3dConfig(s)) },
		CheckTolerance: 0,
	})
	register(Entry{
		Name: "Barnes",
		Problem: func(s Size) string {
			c := barnesConfig(s)
			return fmt.Sprintf("%d bodies, %d steps", c.Bodies, c.Steps)
		},
		New:            func(s Size) *core.Program { return barnes.New(barnesConfig(s)) },
		CheckTolerance: 0,
	})
}

func sorConfig(s Size) sor.Config {
	if s == SizeSmall {
		return sor.Small()
	}
	return sor.Default()
}

func luConfig(s Size) lu.Config {
	if s == SizeSmall {
		return lu.Small()
	}
	return lu.Default()
}

func waterConfig(s Size) water.Config {
	if s == SizeSmall {
		return water.Small()
	}
	return water.Default()
}

func tspConfig(s Size) tsp.Config {
	if s == SizeSmall {
		return tsp.Small()
	}
	return tsp.Default()
}

func gaussConfig(s Size) gauss.Config {
	if s == SizeSmall {
		return gauss.Small()
	}
	return gauss.Default()
}

func ilinkConfig(s Size) ilink.Config {
	if s == SizeSmall {
		return ilink.Small()
	}
	return ilink.Default()
}

func em3dConfig(s Size) em3d.Config {
	if s == SizeSmall {
		return em3d.Small()
	}
	return em3d.Default()
}

func barnesConfig(s Size) barnes.Config {
	if s == SizeSmall {
		return barnes.Small()
	}
	return barnes.Default()
}
