// Package fuzz generates random data-race-free DSM programs for protocol
// validation. Each generated program interleaves five synchronization
// idioms — barrier-phased band writes, lock-protected shared counters,
// lock-chained token passing, flag-based producer/consumer publication, and
// a read-mostly shared table with occasional locked updates — with
// deterministic pseudo-random parameters, then checks every read against a
// sequentially-consistent oracle computed from the same parameters. Running
// the same program under Cashmere, TreadMarks, and the sequential baseline
// must produce identical results; a protocol bug that loses a diff,
// misorders a merge, or breaks lock mutual exclusion shows up as a failed
// oracle check. The dsmcheck harness (internal/check) additionally replays
// the Corpus configurations under many perturbed schedules.
package fuzz

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config parameterizes one generated program.
type Config struct {
	Seed   int64
	Rounds int // barrier-delimited phases
	Elems  int // shared array elements
	Locks  int // shared counters, each with its own lock
}

// Default returns a medium-size fuzz configuration.
func Default(seed int64) Config {
	return Config{Seed: seed, Rounds: 6, Elems: 4096, Locks: 4}
}

// Corpus returns the fixed set of configurations the dsmcheck differential
// harness sweeps under perturbed schedules. Sizes are deliberately small:
// the harness multiplies each by schedules x variants x cluster shapes, and
// schedule-dependent protocol bugs reproduce at small footprints (fewer
// pages means more contention per page, not less).
func Corpus() []Config {
	return []Config{
		{Seed: 101, Rounds: 2, Elems: 64, Locks: 1},
		{Seed: 202, Rounds: 3, Elems: 128, Locks: 2},
		{Seed: 303, Rounds: 4, Elems: 256, Locks: 3},
		{Seed: 404, Rounds: 3, Elems: 512, Locks: 2},
	}
}

// tableSize is the entry count of the read-mostly table (idiom 5).
const tableSize = 8

// New builds the generated program. The body's work assignment depends only
// on (Config, rank, nprocs), so the oracle below can predict every value.
func New(c Config) *core.Program {
	if c.Rounds < 1 || c.Elems < 64 || c.Locks < 1 {
		panic(fmt.Sprintf("fuzz: bad config %+v", c))
	}
	l := core.NewLayout()
	arr := l.F64Pages(c.Elems)
	counters := l.I64Pages(c.Locks)
	token := l.I64Pages(1)
	pub := l.I64Pages(2) // [0] published slot, [1] publication flag
	table := l.I64Pages(tableSize)

	// Lock ids beyond the per-counter locks.
	tokenLock := c.Locks
	pubLock := c.Locks + 1
	tblLock := c.Locks + 2

	return &core.Program{
		Name:        "fuzz",
		SharedBytes: l.Size(),
		Locks:       c.Locks + 3, // counters + token + publish + table
		Barriers:    2,
		Init: func(w *core.ImageWriter) {
			for i := 0; i < c.Elems; i++ {
				arr.Init(w, i, float64(i))
			}
			for i := 0; i < tableSize; i++ {
				table.Init(w, i, tableBase(i))
			}
		},
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			me := p.Rank()
			rng := apputil.Rng(c.Seed + int64(me)*7919)
			for round := 0; round < c.Rounds; round++ {
				// Idiom 1: barrier-phased band writes. The permutation of
				// bands rotates per round; every element has exactly one
				// writer per round.
				owner := func(i int) int { return (i/64 + round) % np }
				for i := 0; i < c.Elems; i++ {
					if owner(i) != me {
						continue
					}
					p.PollPoint()
					arr.Set(p, i, expected(c, round, i))
				}
				// Idiom 2: lock-protected counters, bumped a pseudo-random
				// number of times (order across processors varies, sums are
				// deterministic).
				bumps := rng.Intn(3) + 1
				lock := rng.Intn(c.Locks)
				for b := 0; b < bumps; b++ {
					p.Lock(lock)
					counters.Set(p, lock, counters.At(p, lock)+int64(me+1))
					p.Unlock(lock)
					p.Compute(10 * sim.Microsecond)
				}
				_ = bumps
				// Idiom 4: flag-based publish after release. The round's
				// producer writes the slot with a plain store, then raises
				// the flag inside the critical section; consumers read the
				// flag under the lock and may touch the slot only after
				// observing it raised — the classic message-passing pattern,
				// DRF because the producer's release and the consumer's
				// acquire order slot accesses. A consumer that reads a stale
				// flag (publication not yet visible) must not read the slot.
				if producer := round % np; me == producer {
					pub.Set(p, 0, pubOracle(c, round))
					p.Lock(pubLock)
					pub.Set(p, 1, int64(round+1))
					p.Unlock(pubLock)
				} else {
					p.Lock(pubLock)
					f := pub.At(p, 1)
					p.Unlock(pubLock)
					if f < int64(round) || f > int64(round+1) {
						panic(fmt.Sprintf("fuzz: round %d rank %d: publish flag = %d, want %d or %d",
							round, me, f, round, round+1))
					}
					if f == int64(round+1) {
						if got, want := pub.At(p, 0), pubOracle(c, round); got != want {
							panic(fmt.Sprintf("fuzz: round %d rank %d: published slot = %d, want %d",
								round, me, got, want))
						}
					}
				}
				// Idiom 5: read-mostly shared table with occasional locked
				// updates. Every other round one rotating rank adds to one
				// entry; every processor reads one entry per round. All
				// accesses hold the table lock, so a reader in round r sees
				// the entry either before or after round r's update — both
				// values are computable from the config alone.
				if round%2 == 0 && me == (round/2)%np {
					p.Lock(tblLock)
					slot := round % tableSize
					table.Set(p, slot, table.At(p, slot)+int64(round+1))
					p.Unlock(tblLock)
				}
				e := (me + round) % tableSize
				p.Lock(tblLock)
				v := table.At(p, e)
				p.Unlock(tblLock)
				lo, hi := tableAt(c, round, e), tableAt(c, round+1, e)
				if v != lo && v != hi {
					panic(fmt.Sprintf("fuzz: round %d rank %d: table[%d] = %d, want %d or %d",
						round, me, e, v, lo, hi))
				}
				p.Barrier(0)
				// Validation: every processor checks a pseudo-random sample
				// of the array against the oracle.
				for s := 0; s < 64; s++ {
					i := int(rng.Int63()) % c.Elems
					p.PollPoint()
					want := expected(c, round, i)
					if got := arr.At(p, i); got != want {
						panic(fmt.Sprintf("fuzz: round %d rank %d: arr[%d] = %v, want %v",
							round, me, i, got, want))
					}
				}
				// Idiom 3: token passing through the extra lock — each round
				// every processor adds its rank+round to the token.
				p.Lock(tokenLock)
				token.Set(p, 0, token.At(p, 0)+int64(me+round))
				p.Unlock(tokenLock)
				p.Barrier(1)
			}
			p.Finish()
			if me == 0 {
				// Post-Finish verification: bulk read, original sum order.
				sum := 0.0
				abuf := make([]float64, c.Elems)
				p.ReadF64Range(arr.Addr(0), abuf)
				for _, v := range abuf {
					sum += v
				}
				var csum int64
				for k := 0; k < c.Locks; k++ {
					csum += counters.At(p, k)
				}
				var tsum int64
				for i := 0; i < tableSize; i++ {
					tsum += table.At(p, i)
				}
				p.ReportCheck("arraysum", sum)
				p.ReportCheck("countersum", float64(csum))
				p.ReportCheck("token", float64(token.At(p, 0)))
				p.ReportCheck("pubflag", float64(pub.At(p, 1)))
				p.ReportCheck("pubslot", float64(pub.At(p, 0)))
				p.ReportCheck("tablesum", float64(tsum))
			}
		},
	}
}

// expected is the oracle for element i after the round's write phase.
func expected(c Config, round, i int) float64 {
	return float64(i) + float64(round*1000) + float64(i%7)
}

// pubOracle is the slot value the round's producer publishes. Kept within
// float64's exact-integer range so the reported check round-trips.
func pubOracle(c Config, round int) int64 {
	return (c.Seed%1000003)*64 + int64(round)*37 + 11
}

// tableBase is entry i's initial value.
func tableBase(i int) int64 { return int64(3*i + 1) }

// tableAt is the oracle for table entry i once every update from rounds
// < round has been applied (updates happen on even rounds, one entry each).
func tableAt(c Config, round, i int) int64 {
	v := tableBase(i)
	for q := 0; q < round && q < c.Rounds; q++ {
		if q%2 == 0 && q%tableSize == i {
			v += int64(q + 1)
		}
	}
	return v
}

// ExpectedChecks returns the oracle values for the final reported checks on
// nprocs processors.
func ExpectedChecks(c Config, nprocs int) (arraySum float64, tokenSum int64) {
	for i := 0; i < c.Elems; i++ {
		arraySum += expected(c, c.Rounds-1, i)
	}
	for round := 0; round < c.Rounds; round++ {
		for me := 0; me < nprocs; me++ {
			tokenSum += int64(me + round)
		}
	}
	return arraySum, tokenSum
}

// ExpectedCounterSum replays each rank's pseudo-random draw sequence and
// returns the oracle for the "countersum" check: which counter each bump
// lands on varies by seed, but the total is rank-and-draw determined.
func ExpectedCounterSum(c Config, nprocs int) int64 {
	var sum int64
	for me := 0; me < nprocs; me++ {
		rng := apputil.Rng(c.Seed + int64(me)*7919)
		for round := 0; round < c.Rounds; round++ {
			bumps := rng.Intn(3) + 1
			_ = rng.Intn(c.Locks) // lock choice: irrelevant to the sum
			sum += int64(bumps) * int64(me+1)
			for s := 0; s < 64; s++ {
				_ = rng.Int63() // validation sample draws
			}
		}
	}
	return sum
}

// AllExpectedChecks returns the oracle for every check the program reports,
// keyed exactly as reported. Any run of the program — any protocol, any
// legal schedule — must reproduce this map bit for bit: the program is DRF,
// so release consistency guarantees sequentially-consistent results.
func AllExpectedChecks(c Config, nprocs int) map[string]float64 {
	arraySum, tokenSum := ExpectedChecks(c, nprocs)
	var tsum int64
	for i := 0; i < tableSize; i++ {
		tsum += tableAt(c, c.Rounds, i)
	}
	return map[string]float64{
		"arraysum":   arraySum,
		"countersum": float64(ExpectedCounterSum(c, nprocs)),
		"token":      float64(tokenSum),
		"pubflag":    float64(c.Rounds),
		"pubslot":    float64(pubOracle(c, c.Rounds-1)),
		"tablesum":   float64(tsum),
	}
}
