// Package fuzz generates random data-race-free DSM programs for protocol
// validation. Each generated program interleaves three synchronization
// idioms — barrier-phased band writes, lock-protected shared counters, and
// lock-chained token passing — with deterministic pseudo-random parameters,
// then checks every read against a sequentially-consistent oracle computed
// from the same parameters. Running the same program under Cashmere,
// TreadMarks, and the sequential baseline must produce identical results; a
// protocol bug that loses a diff, misorders a merge, or breaks lock
// mutual exclusion shows up as a failed oracle check.
package fuzz

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config parameterizes one generated program.
type Config struct {
	Seed   int64
	Rounds int // barrier-delimited phases
	Elems  int // shared array elements
	Locks  int // shared counters, each with its own lock
}

// Default returns a medium-size fuzz configuration.
func Default(seed int64) Config {
	return Config{Seed: seed, Rounds: 6, Elems: 4096, Locks: 4}
}

// New builds the generated program. The body's work assignment depends only
// on (Config, rank, nprocs), so the oracle below can predict every value.
func New(c Config) *core.Program {
	if c.Rounds < 1 || c.Elems < 64 || c.Locks < 1 {
		panic(fmt.Sprintf("fuzz: bad config %+v", c))
	}
	l := core.NewLayout()
	arr := l.F64Pages(c.Elems)
	counters := l.I64Pages(c.Locks)
	token := l.I64Pages(1)

	return &core.Program{
		Name:        "fuzz",
		SharedBytes: l.Size(),
		Locks:       c.Locks + 1, // counters plus the token lock
		Barriers:    2,
		Init: func(w *core.ImageWriter) {
			for i := 0; i < c.Elems; i++ {
				arr.Init(w, i, float64(i))
			}
		},
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			me := p.Rank()
			rng := apputil.Rng(c.Seed + int64(me)*7919)
			for round := 0; round < c.Rounds; round++ {
				// Idiom 1: barrier-phased band writes. The permutation of
				// bands rotates per round; every element has exactly one
				// writer per round.
				owner := func(i int) int { return (i/64 + round) % np }
				for i := 0; i < c.Elems; i++ {
					if owner(i) != me {
						continue
					}
					p.PollPoint()
					arr.Set(p, i, expected(c, round, i))
				}
				// Idiom 2: lock-protected counters, bumped a pseudo-random
				// number of times (order across processors varies, sums are
				// deterministic).
				bumps := rng.Intn(3) + 1
				lock := rng.Intn(c.Locks)
				for b := 0; b < bumps; b++ {
					p.Lock(lock)
					counters.Set(p, lock, counters.At(p, lock)+int64(me+1))
					p.Unlock(lock)
					p.Compute(10 * sim.Microsecond)
				}
				_ = bumps
				p.Barrier(0)
				// Validation: every processor checks a pseudo-random sample
				// of the array against the oracle.
				for s := 0; s < 64; s++ {
					i := int(rng.Int63()) % c.Elems
					p.PollPoint()
					want := expected(c, round, i)
					if got := arr.At(p, i); got != want {
						panic(fmt.Sprintf("fuzz: round %d rank %d: arr[%d] = %v, want %v",
							round, me, i, got, want))
					}
				}
				// Idiom 3: token passing through the extra lock — each round
				// every processor adds its rank+round to the token.
				p.Lock(c.Locks)
				token.Set(p, 0, token.At(p, 0)+int64(me+round))
				p.Unlock(c.Locks)
				p.Barrier(1)
			}
			p.Finish()
			if me == 0 {
				// Post-Finish verification: bulk read, original sum order.
				sum := 0.0
				abuf := make([]float64, c.Elems)
				p.ReadF64Range(arr.Addr(0), abuf)
				for _, v := range abuf {
					sum += v
				}
				var csum int64
				for k := 0; k < c.Locks; k++ {
					csum += counters.At(p, k)
				}
				p.ReportCheck("arraysum", sum)
				p.ReportCheck("countersum", float64(csum))
				p.ReportCheck("token", float64(token.At(p, 0)))
			}
		},
	}
}

// expected is the oracle for element i after the round's write phase.
func expected(c Config, round, i int) float64 {
	return float64(i) + float64(round*1000) + float64(i%7)
}

// ExpectedChecks returns the oracle values for the final reported checks on
// nprocs processors.
func ExpectedChecks(c Config, nprocs int) (arraySum float64, tokenSum int64) {
	for i := 0; i < c.Elems; i++ {
		arraySum += expected(c, c.Rounds-1, i)
	}
	for round := 0; round < c.Rounds; round++ {
		for me := 0; me < nprocs; me++ {
			tokenSum += int64(me + round)
		}
	}
	return arraySum, tokenSum
}
