package fuzz

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/variants"
)

// TestFuzzBothProtocols runs generated race-free programs with several seeds
// and cluster shapes under both polling protocol variants and checks every
// oracle value. The in-body sample checks panic on any stale read, so a
// passing run certifies the full read/write/merge paths.
func TestFuzzBothProtocols(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{{2, 1}, {2, 2}, {4, 2}}
	for _, seed := range []int64{1, 2, 3, 4} {
		for _, shape := range shapes {
			for _, variant := range []string{"csm_poll", "tmk_mc_poll"} {
				name := fmt.Sprintf("seed%d/%dx%d/%s", seed, shape.nodes, shape.ppn, variant)
				t.Run(name, func(t *testing.T) {
					c := Default(seed)
					cfg, err := variants.Config(variant, shape.nodes, shape.ppn, variants.Options{})
					if err != nil {
						t.Fatal(err)
					}
					res, err := core.Run(cfg, New(c))
					if err != nil {
						t.Fatal(err)
					}
					nprocs := shape.nodes * shape.ppn
					wantArr, wantTok := ExpectedChecks(c, nprocs)
					if got := res.Checks["arraysum"]; got != wantArr {
						t.Errorf("arraysum = %v, want %v", got, wantArr)
					}
					if got := res.Checks["token"]; got != float64(wantTok) {
						t.Errorf("token = %v, want %v", got, wantTok)
					}
					if res.Checks["countersum"] == 0 {
						t.Error("counters never bumped")
					}
				})
			}
		}
	}
}

// TestFuzzInterruptVariants covers the interrupt-based messaging paths with
// one seed (they are slower in virtual time, not different in data flow).
func TestFuzzInterruptVariants(t *testing.T) {
	for _, variant := range []string{"csm_int", "csm_pp", "tmk_mc_int", "tmk_udp_int"} {
		t.Run(variant, func(t *testing.T) {
			c := Default(99)
			c.Rounds = 3
			cfg, err := variants.Config(variant, 2, 2, variants.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(cfg, New(c))
			if err != nil {
				t.Fatal(err)
			}
			wantArr, _ := ExpectedChecks(c, 4)
			if got := res.Checks["arraysum"]; got != wantArr {
				t.Errorf("arraysum = %v, want %v", got, wantArr)
			}
		})
	}
}

// TestFuzzDeterminism: same seed, same shape, same variant => identical
// virtual time and statistics.
func TestFuzzDeterminism(t *testing.T) {
	run := func() *core.Result {
		cfg, err := variants.Config("tmk_mc_poll", 2, 2, variants.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg, New(Default(7)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time {
		t.Errorf("nondeterministic time: %d vs %d", a.Time, b.Time)
	}
	if a.Total.Messages != b.Total.Messages || a.Total.ReadFaults != b.Total.ReadFaults {
		t.Error("nondeterministic statistics")
	}
}

// TestCorpusOracles runs every corpus configuration under both polling
// variants and the sequential baseline and requires the complete reported
// check map — including the publish-flag, published-slot, and table-sum
// checks from the two newer idioms — to match the analytic oracle exactly.
func TestCorpusOracles(t *testing.T) {
	for _, c := range Corpus() {
		for _, variant := range []string{"csm_poll", "tmk_mc_poll", variants.Sequential} {
			t.Run(fmt.Sprintf("seed%d/%s", c.Seed, variant), func(t *testing.T) {
				nodes, ppn := 2, 2
				if variant == variants.Sequential {
					nodes, ppn = 1, 1
				}
				cfg, err := variants.Config(variant, nodes, ppn, variants.Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := core.Run(cfg, New(c))
				if err != nil {
					t.Fatal(err)
				}
				want := AllExpectedChecks(c, nodes*ppn)
				if len(res.Checks) != len(want) {
					t.Fatalf("reported %d checks, oracle has %d", len(res.Checks), len(want))
				}
				for _, name := range []string{"arraysum", "countersum", "token", "pubflag", "pubslot", "tablesum"} {
					if got := res.Checks[name]; got != want[name] {
						t.Errorf("%s = %v, want %v", name, got, want[name])
					}
				}
			})
		}
	}
}

// TestCounterSumOracle cross-checks the replayed-draw counter oracle against
// an actual run (the older in-run test only asserted non-zero).
func TestCounterSumOracle(t *testing.T) {
	c := Default(42)
	cfg, err := variants.Config("csm_poll", 2, 2, variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg, New(c))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Checks["countersum"], float64(ExpectedCounterSum(c, 4)); got != want {
		t.Errorf("countersum = %v, want %v", got, want)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{})
}
