package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/variants"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"SOR", "LU", "Water", "TSP", "Gauss", "Ilink", "Em3d", "Barnes"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want paper order %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("FFT"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestEveryAppBuildsAndDescribes(t *testing.T) {
	for _, name := range Names() {
		e, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Size{SizeSmall, SizeDefault} {
			if e.Problem(s) == "" {
				t.Errorf("%s: empty problem description", name)
			}
		}
		prog := e.New(SizeSmall)
		if prog.Name != name {
			t.Errorf("program name %q != registry name %q", prog.Name, name)
		}
		if prog.SharedBytes <= 0 || prog.Body == nil {
			t.Errorf("%s: incomplete program", name)
		}
	}
}

// TestEveryAppRunsSequentially is the smoke test that every registered
// application completes at small scale on the baseline.
func TestEveryAppRunsSequentially(t *testing.T) {
	for _, name := range Names() {
		e, _ := Get(name)
		cfg, err := variants.Config(variants.Sequential, 1, 1, variants.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg, e.New(SizeSmall))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Time <= 0 {
			t.Errorf("%s: zero execution time", name)
		}
		if len(res.Checks) == 0 {
			t.Errorf("%s: reported no validation checks", name)
		}
	}
}
