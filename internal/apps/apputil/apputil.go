// Package apputil provides small helpers shared by the benchmark
// applications: work partitioning and deterministic pseudo-random numbers.
package apputil

import "math/rand"

// Band returns the half-open range [lo, hi) of items assigned to rank when n
// items are divided into contiguous, roughly equal bands across nprocs
// processors.
func Band(n, nprocs, rank int) (lo, hi int) {
	base := n / nprocs
	rem := n % nprocs
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// OwnerCyclic returns the rank owning item i under cyclic distribution.
func OwnerCyclic(i, nprocs int) int { return i % nprocs }

// Rng returns a deterministic PRNG for the given seed. All applications
// derive their data from fixed seeds so runs are reproducible across
// protocols and processor counts.
func Rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
