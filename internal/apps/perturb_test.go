package apps

import (
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

// TestEveryAppPerturbedSchedules runs each registered application's smallest
// configuration under three perturbed schedules and requires the reported
// checks to match the canonical (unperturbed) run within the app's declared
// tolerance: the applications are data-race-free, so by the release-
// consistency guarantee a legal schedule perturbation may not change results.
// Apps alternate between the two polling protocol variants so both DSM
// implementations see every idiom without doubling the runtime.
func TestEveryAppPerturbedSchedules(t *testing.T) {
	protoByIdx := []string{"csm_poll", "tmk_mc_poll"}
	for i, name := range Names() {
		e, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		variant := protoByIdx[i%len(protoByIdx)]
		t.Run(name+"/"+variant, func(t *testing.T) {
			mk := func() *core.Program { return e.New(SizeSmall) }
			apptest.PerturbCheck(t, mk, variant, 2, 1, e.CheckTolerance, 11, 22, 33)
		})
	}
}
