package water

import (
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 1e-6)
	if results["sequential"].Checks["energy"] == 0 {
		t.Error("zero energy: simulation inert")
	}
	// Water's migratory merge phase must actually use locks.
	if results["csm_poll"].Total.LockAcquires == 0 {
		t.Error("no lock acquires in force merge")
	}
}

func TestForcesNonTrivial(t *testing.T) {
	res := apptest.RunVariant(t, func() *core.Program { return New(Small()) }, "sequential", 1, 1)
	if res.Total.Barriers == 0 {
		t.Error("no barriers")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{Mols: 1, Steps: 0})
}
