// Package water implements the paper's Water application (from SPLASH): a
// molecular dynamics simulation. The shared array of molecules is divided
// into equal contiguous chunks, one per processor; the bulk of communication
// happens in the force-computation phase, where each processor accumulates
// intermolecular forces locally and then acquires per-processor locks to
// update the globally shared force vectors — a migratory sharing pattern
// (§4.2).
package water

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	Mols  int // number of molecules
	Steps int // simulation steps
}

// Default is the standard benchmark size.
func Default() Config { return Config{Mols: 1024, Steps: 3} }

// Small is a fast size for tests.
func Small() Config { return Config{Mols: 96, Steps: 2} }

// PairCost is the charged computation for one intermolecular interaction:
// Water evaluates nine site-site distances and forces per molecule pair.
const PairCost = 600 * sim.Nanosecond

const dt = 0.002

// New builds the Water program.
func New(c Config) *core.Program {
	if c.Mols < 2 || c.Steps < 1 {
		panic(fmt.Sprintf("water: bad config %+v", c))
	}
	n := c.Mols
	l := core.NewLayout()
	pos := l.F64Pages(3 * n)
	vel := l.F64Pages(3 * n)
	force := l.F64Pages(3 * n)

	return &core.Program{
		Name:        "Water",
		SharedBytes: l.Size(),
		// One lock per processor slot guarding that chunk of the force
		// array, plus one for the global energy.
		Locks:    65,
		Barriers: 4,
		Init: func(w *core.ImageWriter) {
			// Molecules are laid out along x in index order (as after the
			// spatial sort real Water performs), so interactions within the
			// cutoff involve mostly index-adjacent chunks.
			rng := apputil.Rng(7)
			for i := 0; i < n; i++ {
				pos.Init(w, 3*i, (float64(i)+0.5)/float64(n))
				pos.Init(w, 3*i+1, rng.Float64()*0.05)
				pos.Init(w, 3*i+2, rng.Float64()*0.05)
				for d := 0; d < 3; d++ {
					vel.Init(w, 3*i+d, (rng.Float64()-0.5)*0.01)
				}
			}
		},
		Body: func(p *core.Proc) {
			np := p.NumProcs()
			me := p.Rank()
			lo, hi := apputil.Band(n, np, me)
			chunkOf := func(m int) int {
				for q := 0; q < np; q++ {
					ql, qh := apputil.Band(n, np, q)
					if m >= ql && m < qh {
						return q
					}
				}
				return np - 1
			}
			local := make([]float64, 3*n) // private accumulation buffer
			for step := 0; step < c.Steps; step++ {
				// Phase 1: predict positions and clear our force section.
				for m := lo; m < hi; m++ {
					p.PollPoint()
					for d := 0; d < 3; d++ {
						pos.Set(p, 3*m+d, pos.At(p, 3*m+d)+dt*vel.At(p, 3*m+d))
						force.Set(p, 3*m+d, 0)
					}
				}
				p.Barrier(0)
				// Phase 2: intermolecular forces. Processor me handles pairs
				// (i, j) with i in its chunk, j > i.
				for i := range local {
					local[i] = 0
				}
				touched := make(map[int]bool)
				for i := lo; i < hi; i++ {
					xi := pos.At(p, 3*i)
					yi := pos.At(p, 3*i+1)
					zi := pos.At(p, 3*i+2)
					for j := i + 1; j < n; j++ {
						p.PollPoint()
						dx := xi - pos.At(p, 3*j)
						dy := yi - pos.At(p, 3*j+1)
						dz := zi - pos.At(p, 3*j+2)
						r2 := dx*dx + dy*dy + dz*dz + 0.001
						p.Compute(PairCost)
						if r2 > 0.0036 { // cutoff radius 0.06
							continue
						}
						f := 1.0/(r2*r2) - 0.5/r2
						local[3*i] += f * dx
						local[3*i+1] += f * dy
						local[3*i+2] += f * dz
						local[3*j] -= f * dx
						local[3*j+1] -= f * dy
						local[3*j+2] -= f * dz
						touched[i] = true
						touched[j] = true
					}
				}
				p.Barrier(1)
				// Phase 3: merge local contributions into the shared force
				// vectors under per-processor-chunk locks (migratory).
				for q := 0; q < np; q++ {
					ql, qh := apputil.Band(n, np, q)
					any := false
					for m := ql; m < qh && !any; m++ {
						any = touched[m]
					}
					if !any {
						continue
					}
					p.Lock(q)
					for m := ql; m < qh; m++ {
						if !touched[m] {
							continue
						}
						for d := 0; d < 3; d++ {
							if local[3*m+d] != 0 {
								force.Set(p, 3*m+d, force.At(p, 3*m+d)+local[3*m+d])
							}
						}
					}
					p.Unlock(q)
				}
				p.Barrier(2)
				// Phase 4: integrate velocities for our chunk.
				for m := lo; m < hi; m++ {
					p.PollPoint()
					for d := 0; d < 3; d++ {
						vel.Set(p, 3*m+d, vel.At(p, 3*m+d)+dt*force.At(p, 3*m+d))
					}
				}
				p.Barrier(3)
			}
			_ = chunkOf
			p.Finish()
			if me == 0 {
				// Kinetic-energy-style checksum; force merge order varies
				// with lock timing, so validation uses a tolerance.
				// Post-Finish: bulk-read both arrays, accumulate in the
				// original interleaved order.
				e := 0.0
				vbuf := make([]float64, 3*n)
				pbuf := make([]float64, 3*n)
				p.ReadF64Range(vel.Addr(0), vbuf)
				p.ReadF64Range(pos.Addr(0), pbuf)
				for m := 0; m < n; m++ {
					for d := 0; d < 3; d++ {
						v := vbuf[3*m+d]
						e += v * v
						e += math.Abs(pbuf[3*m+d])
					}
				}
				p.ReportCheck("energy", e)
			}
		},
	}
}
