// Package tsp implements the paper's TSP application: a branch-and-bound
// solution to the traveling salesman problem. Locks protect a shared
// priority queue of unsolved partial tours and the current shortest path;
// the algorithm is nondeterministic in the sense that finding a good tour
// early prunes more of the search space (§4.2). Subtrees below a depth
// threshold are solved recursively without touching the queue, as in the
// original Rice implementation.
package tsp

import (
	"fmt"
	"math"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	Cities int
	// RecurseDepth: partial tours within this many cities of completion are
	// solved locally without queue operations.
	RecurseDepth int
	// PoolSize bounds the shared tour pool.
	PoolSize int
	Seed     int64
}

// Default is the standard benchmark size (the paper uses 17 cities; 12 keeps
// queue contention realistic at simulation speed).
func Default() Config { return Config{Cities: 14, RecurseDepth: 11, PoolSize: 65536, Seed: 42} }

// Small is a fast size for tests.
func Small() Config { return Config{Cities: 9, RecurseDepth: 5, PoolSize: 2048, Seed: 42} }

// NodeCost is the charged computation per search-tree node visited.
const NodeCost = 120 * sim.Nanosecond

// Lock ids.
const (
	lockQueue = 0
	lockBest  = 1
)

// siftUp restores the shared min-heap invariant after appending at index i.
func siftUp(p *core.Proc, queue core.I64Array, bound core.F64Array, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		si, sp := queue.At(p, i), queue.At(p, parent)
		if bound.At(p, int(si)) >= bound.At(p, int(sp)) {
			return
		}
		queue.Set(p, i, sp)
		queue.Set(p, parent, si)
		i = parent
	}
}

// siftDown restores the heap invariant from the root after a pop.
func siftDown(p *core.Proc, queue core.I64Array, bound core.F64Array, n, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		bi := bound.At(p, int(queue.At(p, smallest)))
		if l < n {
			if bl := bound.At(p, int(queue.At(p, l))); bl < bi {
				smallest, bi = l, bl
			}
		}
		if r < n {
			if br := bound.At(p, int(queue.At(p, r))); br < bi {
				smallest = r
			}
		}
		if smallest == i {
			return
		}
		si, ss := queue.At(p, i), queue.At(p, smallest)
		queue.Set(p, i, ss)
		queue.Set(p, smallest, si)
		i = smallest
	}
}

// New builds the TSP program.
func New(c Config) *core.Program {
	if c.Cities < 4 || c.Cities > 20 || c.RecurseDepth < 1 || c.PoolSize < 16 {
		panic(fmt.Sprintf("tsp: bad config %+v", c))
	}
	n := c.Cities
	l := core.NewLayout()
	// Distance matrix (read-only after init).
	dist := l.F64Pages(n * n)
	// Tour pool: each slot holds {cost, bound, visited mask, last city,
	// depth}; free-list managed under the queue lock.
	poolCost := l.F64Pages(c.PoolSize)
	poolBound := l.F64Pages(c.PoolSize)
	poolMask := l.I64Pages(c.PoolSize)
	poolLast := l.I64Pages(c.PoolSize)
	poolDepth := l.I64Pages(c.PoolSize)
	// Queue: active slot indices + count + outstanding-work counter.
	queue := l.I64Pages(c.PoolSize)
	poolNext := l.I64Pages(c.PoolSize) // free-list chaining
	qmeta := l.I64Pages(4)             // [0]=queue len, [1]=outstanding, [2]=high-water, [3]=free head
	best := l.F64Pages(1)

	return &core.Program{
		Name:        "TSP",
		SharedBytes: l.Size(),
		Locks:       2,
		Barriers:    1,
		Init: func(w *core.ImageWriter) {
			rng := apputil.Rng(c.Seed)
			// Random symmetric distances on a unit square (Euclidean).
			xs := make([]float64, n)
			ys := make([]float64, n)
			for i := range xs {
				xs[i], ys[i] = rng.Float64(), rng.Float64()
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
					dist.Init(w, i*n+j, d)
				}
			}
			// Seed the queue with the root tour: city 0 visited.
			poolCost.Init(w, 0, 0)
			poolBound.Init(w, 0, 0)
			poolMask.Init(w, 0, 1)
			poolLast.Init(w, 0, 0)
			poolDepth.Init(w, 0, 1)
			queue.Init(w, 0, 0)
			qmeta.Init(w, 0, 1)  // one queued tour
			qmeta.Init(w, 1, 1)  // one outstanding unit of work
			qmeta.Init(w, 2, 1)  // pool high-water mark
			qmeta.Init(w, 3, -1) // empty free list
			// Seed the bound with a greedy nearest-neighbour tour so the
			// branch-and-bound frontier stays small from the start.
			greedy := 0.0
			visited := make([]bool, n)
			visited[0] = true
			cur := 0
			for step := 1; step < n; step++ {
				bestJ, bestD := -1, math.Inf(1)
				for j := 1; j < n; j++ {
					if !visited[j] {
						dd := math.Hypot(xs[cur]-xs[j], ys[cur]-ys[j])
						if dd < bestD {
							bestD, bestJ = dd, j
						}
					}
				}
				greedy += bestD
				visited[bestJ] = true
				cur = bestJ
			}
			greedy += math.Hypot(xs[cur]-xs[0], ys[cur]-ys[0])
			best.Init(w, 0, greedy)
		},
		Body: func(p *core.Proc) {
			d := func(i, j int) float64 { return dist.At(p, i*n+j) }
			// Pool slots are recycled through a free list chained in
			// poolNext; callers hold the queue lock.
			allocSlot := func() int {
				if head := qmeta.At(p, 3); head >= 0 {
					qmeta.Set(p, 3, poolNext.At(p, int(head)))
					return int(head)
				}
				hw := qmeta.At(p, 2)
				if int(hw) >= c.PoolSize {
					panic("tsp: tour pool exhausted; increase PoolSize")
				}
				qmeta.Set(p, 2, hw+1)
				return int(hw)
			}
			freeSlot := func(slot int) {
				poolNext.Set(p, slot, qmeta.At(p, 3))
				qmeta.Set(p, 3, int64(slot))
			}
			// solve exhaustively finishes a partial tour locally.
			var solve func(mask int64, last int, cost float64, depth int, bestLocal float64) float64
			solve = func(mask int64, last int, cost float64, depth int, bestLocal float64) float64 {
				p.Compute(NodeCost)
				if depth == n {
					total := cost + d(last, 0)
					if total < bestLocal {
						return total
					}
					return bestLocal
				}
				for next := 1; next < n; next++ {
					if mask&(1<<uint(next)) != 0 {
						continue
					}
					nc := cost + d(last, next)
					if nc >= bestLocal {
						continue // bound
					}
					bestLocal = solve(mask|1<<uint(next), next, nc, depth+1, bestLocal)
				}
				return bestLocal
			}

			for {
				p.PollPoint()
				// Pop the most promising tour.
				p.Lock(lockQueue)
				qlen := qmeta.At(p, 0)
				if qlen == 0 {
					outstanding := qmeta.At(p, 1)
					p.Unlock(lockQueue)
					if outstanding == 0 {
						break // search exhausted
					}
					p.Compute(5 * sim.Microsecond)
					continue
				}
				// Extract the minimum-bound entry (binary heap keyed on bound).
				slot := int(queue.At(p, 0))
				tail := queue.At(p, int(qlen)-1)
				qmeta.Set(p, 0, qlen-1)
				if qlen > 1 {
					queue.Set(p, 0, tail)
					siftDown(p, queue, poolBound, int(qlen)-1, 0)
				}
				p.Unlock(lockQueue)

				mask := poolMask.At(p, slot)
				last := int(poolLast.At(p, slot))
				cost := poolCost.At(p, slot)
				depth := int(poolDepth.At(p, slot))

				cur := best.At(p, 0)
				if cost >= cur {
					// Pruned: retire the work unit and recycle its slot.
					p.Lock(lockQueue)
					freeSlot(slot)
					qmeta.Set(p, 1, qmeta.At(p, 1)-1)
					p.Unlock(lockQueue)
					continue
				}
				if n-depth <= c.RecurseDepth {
					// Solve the subtree locally.
					found := solve(mask, last, cost, depth, cur)
					if found < cur {
						p.Lock(lockBest)
						if found < best.At(p, 0) {
							best.Set(p, 0, found)
						}
						p.Unlock(lockBest)
					}
					p.Lock(lockQueue)
					freeSlot(slot)
					qmeta.Set(p, 1, qmeta.At(p, 1)-1)
					p.Unlock(lockQueue)
					continue
				}
				// Expand one level and push the children.
				for next := 1; next < n; next++ {
					if mask&(1<<uint(next)) != 0 {
						continue
					}
					p.Compute(NodeCost)
					nc := cost + d(last, next)
					if nc >= best.At(p, 0) {
						continue
					}
					p.Lock(lockQueue)
					child := allocSlot()
					poolCost.Set(p, child, nc)
					poolBound.Set(p, child, nc)
					poolMask.Set(p, child, mask|1<<uint(next))
					poolLast.Set(p, child, int64(next))
					poolDepth.Set(p, child, int64(depth+1))
					ql := qmeta.At(p, 0)
					queue.Set(p, int(ql), int64(child))
					siftUp(p, queue, poolBound, int(ql))
					qmeta.Set(p, 0, ql+1)
					qmeta.Set(p, 1, qmeta.At(p, 1)+1)
					p.Unlock(lockQueue)
				}
				p.Lock(lockQueue)
				freeSlot(slot)
				qmeta.Set(p, 1, qmeta.At(p, 1)-1)
				p.Unlock(lockQueue)
			}
			p.Barrier(0)
			p.Finish()
			if p.Rank() == 0 {
				p.ReportCheck("tourlen", best.At(p, 0))
			}
		},
	}
}
