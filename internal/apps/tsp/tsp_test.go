package tsp

import (
	"math"
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
)

// bruteForce solves the same instance exhaustively for validation.
func bruteForce(c Config) float64 {
	// Rebuild the identical distance matrix.
	prog := New(c)
	_ = prog
	// Run the sequential variant and trust branch-and-bound? No: compute
	// independently from the same seed.
	n := c.Cities
	xs, ys := make([]float64, n), make([]float64, n)
	rng := rngFor(c.Seed)
	for i := range xs {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	d := func(i, j int) float64 { return math.Hypot(xs[i]-xs[j], ys[i]-ys[j]) }
	best := math.Inf(1)
	perm := make([]int, 0, n)
	used := make([]bool, n)
	var rec func(last int, cost float64)
	rec = func(last int, cost float64) {
		if cost >= best {
			return
		}
		if len(perm) == n-1 {
			if t := cost + d(last, 0); t < best {
				best = t
			}
			return
		}
		for next := 1; next < n; next++ {
			if used[next] {
				continue
			}
			used[next] = true
			perm = append(perm, next)
			rec(next, cost+d(last, next))
			perm = perm[:len(perm)-1]
			used[next] = false
		}
	}
	rec(0, 0)
	return best
}

func TestOptimalTourMatchesBruteForce(t *testing.T) {
	c := Small()
	want := bruteForce(c)
	res := apptest.RunVariant(t, func() *core.Program { return New(c) }, "sequential", 1, 1)
	got := res.Checks["tourlen"]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("tour length = %v, brute force = %v", got, want)
	}
}

func TestCrossProtocolAgreement(t *testing.T) {
	// TSP execution is nondeterministic across protocols but the optimal
	// tour length is exact.
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 0)
	if results["csm_poll"].Total.LockAcquires == 0 {
		t.Error("no queue locking happened")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad config accepted")
		}
	}()
	New(Config{Cities: 2})
}

// rngFor mirrors apputil.Rng for the brute-force reference.
func rngFor(seed int64) interface{ Float64() float64 } {
	return apputilRng(seed)
}
