package tsp

import (
	"math/rand"

	"repro/internal/apps/apputil"
)

func apputilRng(seed int64) *rand.Rand { return apputil.Rng(seed) }
