// Package apptest provides the shared cross-protocol validation harness for
// the benchmark applications: every application must produce the same answer
// under the sequential baseline, Cashmere, and TreadMarks.
package apptest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/variants"
)

// RunVariant runs the program under the named variant on the given cluster
// shape and returns the result.
func RunVariant(t *testing.T, mk func() *core.Program, variant string, nodes, ppn int) *core.Result {
	t.Helper()
	cfg, err := variants.Config(variant, nodes, ppn, variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg, mk())
	if err != nil {
		t.Fatalf("%s: %v", variant, err)
	}
	return res
}

// CrossCheck runs the program sequentially and under both polling protocol
// variants on nodes x ppn processors, and requires every reported check
// value to agree within relTol (0 = exact).
func CrossCheck(t *testing.T, mk func() *core.Program, nodes, ppn int, relTol float64) map[string]*core.Result {
	t.Helper()
	results := map[string]*core.Result{
		"sequential":  RunVariant(t, mk, "sequential", 1, 1),
		"csm_poll":    RunVariant(t, mk, "csm_poll", nodes, ppn),
		"tmk_mc_poll": RunVariant(t, mk, "tmk_mc_poll", nodes, ppn),
	}
	base := results["sequential"].Checks
	if len(base) == 0 {
		t.Fatal("program reported no checks")
	}
	for name, res := range results {
		checksAgree(t, name, res.Checks, base, relTol)
	}
	return results
}

// checksAgree requires every check in want to appear in got within relTol
// (0 = exact).
func checksAgree(t *testing.T, label string, got, want map[string]float64, relTol float64) {
	t.Helper()
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing check %q", label, key)
			continue
		}
		if relTol == 0 {
			if g != w {
				t.Errorf("%s: check %q = %v, want %v (exact)", label, key, g, w)
			}
			continue
		}
		denom := math.Abs(w)
		if denom < 1 {
			denom = 1
		}
		if math.Abs(g-w)/denom > relTol {
			t.Errorf("%s: check %q = %v, want %v (tol %v)", label, key, g, w, relTol)
		}
	}
}

// PerturbCheck runs the program under the named variant on nodes x ppn
// processors once with the canonical schedule and once per seed with a
// perturbed schedule, and requires every reported check to agree within
// relTol (0 = exact). The benchmark applications are data-race-free, so a
// legal schedule perturbation may move events in virtual time but must not
// change any computed answer — any drift beyond the app's declared rounding
// tolerance is a protocol bug flushed out by the altered timing.
func PerturbCheck(t *testing.T, mk func() *core.Program, variant string, nodes, ppn int, relTol float64, seeds ...uint64) {
	t.Helper()
	base := RunVariant(t, mk, variant, nodes, ppn)
	if len(base.Checks) == 0 {
		t.Fatal("program reported no checks")
	}
	for _, seed := range seeds {
		cfg, err := variants.Config(variant, nodes, ppn, variants.Options{
			Schedule: sim.Schedule{Seed: seed, CostJitter: 0.5, FlipTies: true, Stagger: sim.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg, mk())
		if err != nil {
			t.Fatalf("%s schedule seed %d: %v", variant, seed, err)
		}
		checksAgree(t, fmt.Sprintf("%s/seed%d", variant, seed), res.Checks, base.Checks, relTol)
		if len(res.Checks) != len(base.Checks) {
			t.Errorf("%s/seed%d: reported %d checks, canonical run reported %d",
				variant, seed, len(res.Checks), len(base.Checks))
		}
	}
}
