// Package apptest provides the shared cross-protocol validation harness for
// the benchmark applications: every application must produce the same answer
// under the sequential baseline, Cashmere, and TreadMarks.
package apptest

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/variants"
)

// RunVariant runs the program under the named variant on the given cluster
// shape and returns the result.
func RunVariant(t *testing.T, mk func() *core.Program, variant string, nodes, ppn int) *core.Result {
	t.Helper()
	cfg, err := variants.Config(variant, nodes, ppn, variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg, mk())
	if err != nil {
		t.Fatalf("%s: %v", variant, err)
	}
	return res
}

// CrossCheck runs the program sequentially and under both polling protocol
// variants on nodes x ppn processors, and requires every reported check
// value to agree within relTol (0 = exact).
func CrossCheck(t *testing.T, mk func() *core.Program, nodes, ppn int, relTol float64) map[string]*core.Result {
	t.Helper()
	results := map[string]*core.Result{
		"sequential":  RunVariant(t, mk, "sequential", 1, 1),
		"csm_poll":    RunVariant(t, mk, "csm_poll", nodes, ppn),
		"tmk_mc_poll": RunVariant(t, mk, "tmk_mc_poll", nodes, ppn),
	}
	base := results["sequential"].Checks
	if len(base) == 0 {
		t.Fatal("program reported no checks")
	}
	for name, res := range results {
		for key, want := range base {
			got, ok := res.Checks[key]
			if !ok {
				t.Errorf("%s: missing check %q", name, key)
				continue
			}
			if relTol == 0 {
				if got != want {
					t.Errorf("%s: check %q = %v, want %v (exact)", name, key, got, want)
				}
				continue
			}
			denom := math.Abs(want)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(got-want)/denom > relTol {
				t.Errorf("%s: check %q = %v, want %v (tol %v)", name, key, got, want, relTol)
			}
		}
	}
	return results
}
