// Package lu implements the paper's LU application: the SPLASH-2 blocked
// dense LU factorization kernel. The matrix is divided into square blocks
// for temporal and spatial locality; each block is owned by a particular
// processor, which performs all computation on it (§4.2). Blocks are stored
// contiguously and page-aligned, so a 32x32 block is exactly one 8 KB page —
// the configuration whose 16 KB primary working set makes the paper's
// write-doubling cache effect visible (§4.3).
package lu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem.
type Config struct {
	N int // matrix dimension
	B int // block dimension (N must be a multiple of B)
}

// Default is the standard benchmark size (the paper uses 2048x2048 with
// 32x32 blocks; this keeps the block geometry and an odd block count, scaled
// down).
func Default() Config { return Config{N: 544, B: 32} }

// Small is a fast size for tests.
func Small() Config { return Config{N: 96, B: 16} }

// FlopCost is the charged cost of one multiply-accumulate.
const FlopCost = 10 * sim.Nanosecond

// New builds the LU program.
func New(c Config) *core.Program {
	if c.B <= 0 || c.N%c.B != 0 {
		panic(fmt.Sprintf("lu: N=%d not a multiple of B=%d", c.N, c.B))
	}
	nb := c.N / c.B
	bb := c.B * c.B
	l := core.NewLayout()
	// Block-major storage: block (I,J) occupies bb consecutive elements,
	// page-aligned so blocks are independent coherence units.
	blocks := make([]core.F64Array, nb*nb)
	for i := range blocks {
		blocks[i] = l.F64Pages(bb)
	}
	blk := func(I, J int) core.F64Array { return blocks[I*nb+J] }

	// 2D scatter ownership as in SPLASH-2.
	grid := func(nprocs int) (pr, pc int) {
		pr = 1
		for d := 1; d*d <= nprocs; d++ {
			if nprocs%d == 0 {
				pr = d
			}
		}
		return pr, nprocs / pr
	}
	owner := func(I, J, nprocs int) int {
		pr, pc := grid(nprocs)
		return (I%pr)*pc + (J % pc)
	}

	return &core.Program{
		Name:        "LU",
		SharedBytes: l.Size(),
		Barriers:    3,
		Init: func(w *core.ImageWriter) {
			// Deterministic diagonally dominant matrix (no pivoting needed).
			seed := uint64(12345)
			next := func() float64 {
				seed = seed*6364136223846793005 + 1442695040888963407
				return float64(seed>>40) / float64(1<<24)
			}
			for I := 0; I < nb; I++ {
				for J := 0; J < nb; J++ {
					a := blk(I, J)
					for r := 0; r < c.B; r++ {
						for cc := 0; cc < c.B; cc++ {
							v := next()
							if I == J && r == cc {
								v += float64(c.N)
							}
							a.Init(w, r*c.B+cc, v)
						}
					}
				}
			}
		},
		Body: func(p *core.Proc) {
			n := p.NumProcs()
			me := p.Rank()
			B := c.B
			for k := 0; k < nb; k++ {
				diag := blk(k, k)
				// Phase 1: the diagonal block's owner factors it in place.
				if owner(k, k, n) == me {
					for j := 0; j < B; j++ {
						p.PollPoint()
						piv := diag.At(p, j*B+j)
						for i := j + 1; i < B; i++ {
							lij := diag.At(p, i*B+j) / piv
							diag.Set(p, i*B+j, lij)
							p.Compute(FlopCost)
							for kk := j + 1; kk < B; kk++ {
								p.PollPoint()
								diag.Set(p, i*B+kk, diag.At(p, i*B+kk)-lij*diag.At(p, j*B+kk))
								p.Compute(FlopCost)
							}
						}
					}
				}
				p.Barrier(0)
				// Phase 2: perimeter blocks.
				for j := k + 1; j < nb; j++ {
					if owner(k, j, n) == me {
						// Akj = Lkk^-1 * Akj (unit lower triangular solve).
						a := blk(k, j)
						for cc := 0; cc < B; cc++ {
							for r := 1; r < B; r++ {
								p.PollPoint()
								s := a.At(p, r*B+cc)
								for t := 0; t < r; t++ {
									s -= diag.At(p, r*B+t) * a.At(p, t*B+cc)
									p.Compute(FlopCost)
								}
								a.Set(p, r*B+cc, s)
							}
						}
					}
					if owner(j, k, n) == me {
						// Ajk = Ajk * Ukk^-1.
						a := blk(j, k)
						for r := 0; r < B; r++ {
							for cc := 0; cc < B; cc++ {
								p.PollPoint()
								s := a.At(p, r*B+cc)
								for t := 0; t < cc; t++ {
									s -= a.At(p, r*B+t) * diag.At(p, t*B+cc)
									p.Compute(FlopCost)
								}
								a.Set(p, r*B+cc, s/diag.At(p, cc*B+cc))
								p.Compute(FlopCost)
							}
						}
					}
				}
				p.Barrier(1)
				// Phase 3: interior updates Aij -= Aik * Akj.
				for i := k + 1; i < nb; i++ {
					for j := k + 1; j < nb; j++ {
						if owner(i, j, n) != me {
							continue
						}
						aij, aik, akj := blk(i, j), blk(i, k), blk(k, j)
						for r := 0; r < B; r++ {
							for cc := 0; cc < B; cc++ {
								p.PollPoint()
								s := aij.At(p, r*B+cc)
								for t := 0; t < B; t++ {
									s -= aik.At(p, r*B+t) * akj.At(p, t*B+cc)
									p.Compute(FlopCost)
								}
								aij.Set(p, r*B+cc, s)
							}
						}
					}
				}
				p.Barrier(2)
			}
			p.Finish()
			if me == 0 {
				// Post-Finish verification sweep over the block-contiguous
				// storage: one bulk read per block, summed in the same
				// element order as the scalar loop.
				sum := 0.0
				buf := make([]float64, bb)
				for I := 0; I < nb; I++ {
					for J := 0; J < nb; J++ {
						p.ReadF64Range(blk(I, J).Addr(0), buf)
						for _, v := range buf {
							sum += v
						}
					}
				}
				p.ReportCheck("checksum", sum)
			}
		},
	}
}
