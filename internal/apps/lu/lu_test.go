package lu

import (
	"math"
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
	"repro/internal/variants"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	apptest.CrossCheck(t, mk, 2, 2, 0)
}

func TestFactorizationCorrect(t *testing.T) {
	// Factor a tiny matrix sequentially and verify L*U reconstructs A.
	c := Config{N: 16, B: 8}
	cfg, err := variants.Config("sequential", 1, 1, variants.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the same initial matrix the Init function generates.
	nb := c.N / c.B
	orig := make([][]float64, c.N)
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40) / float64(1<<24)
	}
	for i := range orig {
		orig[i] = make([]float64, c.N)
	}
	for I := 0; I < nb; I++ {
		for J := 0; J < nb; J++ {
			for r := 0; r < c.B; r++ {
				for cc := 0; cc < c.B; cc++ {
					v := next()
					if I == J && r == cc {
						v += float64(c.N)
					}
					orig[I*c.B+r][J*c.B+cc] = v
				}
			}
		}
	}
	// Run and capture the factored matrix through an extra verification
	// program wrapper: reuse New and read back via the checksum... instead,
	// factor orig with the same textbook algorithm and compare checksums.
	want := referenceLU(orig)
	res, err := core.Run(cfg, New(c))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Checks["checksum"]
	if math.Abs(got-want)/math.Abs(want) > 1e-12 {
		t.Errorf("checksum = %v, reference LU = %v", got, want)
	}
}

// referenceLU factors a dense matrix in place (no pivoting, unit lower
// triangular L) and returns the element sum of the packed result.
func referenceLU(a [][]float64) float64 {
	n := len(a)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i][k] /= a[k][k]
			for j := k + 1; j < n; j++ {
				a[i][j] -= a[i][k] * a[k][j]
			}
		}
	}
	sum := 0.0
	for i := range a {
		for j := range a[i] {
			sum += a[i][j]
		}
	}
	return sum
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad block size accepted")
		}
	}()
	New(Config{N: 100, B: 32})
}

// TestWriteDoublingCachePressure reproduces the paper's §4.3 observation in
// miniature: on one processor, LU compiled for Cashmere (write doubling on)
// is substantially slower than for TreadMarks because doubling pushes the
// block working set past the 16 KB first-level cache.
func TestWriteDoublingCachePressure(t *testing.T) {
	c := Config{N: 128, B: 32} // 8 KB page-sized blocks, as in the paper
	mk := func() *core.Program { return New(c) }
	csm := apptest.RunVariant(t, mk, "csm_poll", 1, 1)
	tmk := apptest.RunVariant(t, mk, "tmk_mc_poll", 1, 1)
	slowdown := float64(csm.Time) / float64(tmk.Time)
	if slowdown < 1.05 {
		t.Errorf("csm/tmk single-processor ratio = %.3f, want noticeable doubling penalty", slowdown)
	}
	if csm.PerProc[0].CacheMisses <= tmk.PerProc[0].CacheMisses {
		t.Errorf("cache misses: csm %d <= tmk %d, doubling should add misses",
			csm.PerProc[0].CacheMisses, tmk.PerProc[0].CacheMisses)
	}
}
