// Package sor implements the paper's SOR application: a Red-Black
// Successive Over-Relaxation solver for partial differential equations. The
// red and black arrays are divided into roughly equal bands of rows, one
// band per processor; communication occurs across band boundaries, and
// processors synchronize with barriers (§4.2).
package sor

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/sim"
)

// Config sizes the problem. The paper's dataset is a 3072x4096 grid; the
// defaults are scaled so a full protocol sweep completes quickly while
// keeping many pages per band.
type Config struct {
	Rows, Cols int // grid dimensions; Cols must be even
	Iters      int // red+black update passes
}

// Default is the standard benchmark size: scaled down from the paper's
// 3072x4096 while keeping rows wide enough that per-band computation
// dominates boundary-page communication, as it does at full scale.
func Default() Config { return Config{Rows: 384, Cols: 2048, Iters: 8} }

// Small is a fast size for tests.
func Small() Config { return Config{Rows: 64, Cols: 64, Iters: 4} }

// FlopCost is the charged computation per element update (4 adds, 1 mult on
// a 233 MHz 21064A).
const FlopCost = 30 * sim.Nanosecond

// New builds the SOR program.
func New(c Config) *core.Program {
	if c.Cols%2 != 0 || c.Rows < 3 || c.Cols < 4 || c.Iters < 1 {
		panic(fmt.Sprintf("sor: bad config %+v", c))
	}
	w := c.Cols / 2 // each color stores half the columns per row
	l := core.NewLayout()
	red := l.F64Pages(c.Rows * w)
	black := l.F64Pages(c.Rows * w)
	at := func(a core.F64Array, i, k int) core.Addr { return a.Addr(i*w + k) }

	return &core.Program{
		Name:        "SOR",
		SharedBytes: l.Size(),
		Barriers:    2,
		Init: func(iw *core.ImageWriter) {
			// Fixed heat source along the top boundary row.
			for k := 0; k < w; k++ {
				red.Init(iw, k, 1.0)
				black.Init(iw, k, 1.0)
			}
		},
		Body: func(p *core.Proc) {
			// Interior rows divided into bands.
			lo, hi := apputil.Band(c.Rows-2, p.NumProcs(), p.Rank())
			lo, hi = lo+1, hi+1
			for iter := 0; iter < c.Iters; iter++ {
				// Red phase: red[i][k] averages its four black neighbours.
				for i := lo; i < hi; i++ {
					par := i & 1
					for k := 1; k < w-1; k++ {
						p.PollPoint() // instrumentation at every backward branch (§3.2)
						v := 0.25 * (p.ReadF64(at(black, i-1, k)) +
							p.ReadF64(at(black, i+1, k)) +
							p.ReadF64(at(black, i, k+par-1)) +
							p.ReadF64(at(black, i, k+par)))
						p.WriteF64(at(red, i, k), v)
						p.Compute(FlopCost)
					}
				}
				p.Barrier(0)
				// Black phase: black[i][k] averages its four red neighbours.
				for i := lo; i < hi; i++ {
					par := i & 1
					for k := 1; k < w-1; k++ {
						p.PollPoint()
						v := 0.25 * (p.ReadF64(at(red, i-1, k)) +
							p.ReadF64(at(red, i+1, k)) +
							p.ReadF64(at(red, i, k-par)) +
							p.ReadF64(at(red, i, k+1-par)))
						p.WriteF64(at(black, i, k), v)
						p.Compute(FlopCost)
					}
				}
				p.Barrier(1)
			}
			p.Finish()
			if p.Rank() == 0 {
				// Post-Finish verification sweep: stats are already frozen,
				// so bulk row reads are free to reorder the red/black access
				// interleave. The summation order is unchanged, so the
				// reported checksum is bit-identical.
				sum := 0.0
				rowR := make([]float64, w)
				rowB := make([]float64, w)
				for i := 0; i < c.Rows; i++ {
					p.ReadF64Range(at(red, i, 0), rowR)
					p.ReadF64Range(at(black, i, 0), rowB)
					for k := 0; k < w; k++ {
						sum += rowR[k] + rowB[k]
					}
				}
				p.ReportCheck("checksum", sum)
			}
		},
	}
}
