package sor

import (
	"testing"

	"repro/internal/apps/apptest"
	"repro/internal/core"
	"repro/internal/variants"
)

func TestCrossProtocolAgreement(t *testing.T) {
	mk := func() *core.Program { return New(Small()) }
	results := apptest.CrossCheck(t, mk, 2, 2, 0)
	if results["sequential"].Checks["checksum"] == 0 {
		t.Error("checksum is zero: heat never diffused")
	}
}

func TestSpeedupOverSequential(t *testing.T) {
	big := Config{Rows: 256, Cols: 1024, Iters: 4}
	mk := func() *core.Program { return New(big) }
	seq := apptest.RunVariant(t, mk, "sequential", 1, 1)
	par := apptest.RunVariant(t, mk, "csm_poll", 4, 1)
	if par.Time >= seq.Time {
		t.Errorf("no speedup: seq %d, 4-proc %d", seq.Time, par.Time)
	}
	tmk := apptest.RunVariant(t, mk, "tmk_mc_poll", 4, 1)
	if tmk.Time >= seq.Time {
		t.Errorf("no TreadMarks speedup: seq %d, 4-proc %d", seq.Time, tmk.Time)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd Cols accepted")
		}
	}()
	New(Config{Rows: 10, Cols: 7, Iters: 1})
}

func TestBoundaryStaysFixed(t *testing.T) {
	// The heat source row is never written; its checksum contribution is
	// Cols (1.0 per cell). With a tiny interior the total must exceed Cols
	// after a few iterations (heat flows in) and stay below Rows*Cols.
	res := apptest.RunVariant(t, func() *core.Program { return New(Small()) }, "sequential", 1, 1)
	sum := res.Checks["checksum"]
	if sum <= float64(Small().Cols) {
		t.Errorf("checksum %v: no diffusion", sum)
	}
	if sum >= float64(Small().Rows*Small().Cols) {
		t.Errorf("checksum %v exceeds physical bound", sum)
	}
}

// BenchmarkSORSmallSequential measures a full small SOR run under the
// sequential variant. The red-black stencil inner loop dominates, so this
// tracks the end-to-end cost of the shared-access hot path (translation
// caching, cache model, checkpointing) as seen by an application.
func BenchmarkSORSmallSequential(b *testing.B) {
	cfg, err := variants.Config(variants.Sequential, 1, 1, variants.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, New(Small())); err != nil {
			b.Fatal(err)
		}
	}
}
