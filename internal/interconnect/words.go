package interconnect

import (
	"fmt"

	"repro/internal/sim"
)

// WordArray is a region of 8-byte words mapped for transmit and receive on
// every node: the representation used for Cashmere's page directory, lock
// arrays, barrier flags, and message flow-control flags. Every backend
// provides it (NewWordArray); only the store cost and the visibility latency
// differ per fabric.
//
// Visibility model: a write performed at virtual time t becomes visible to
// remote nodes at t+latency, where latency is the backend's remote-write
// visibility horizon (the Memory Channel's 5.2 µs; a switched fabric's
// worst-case hop count, so that the broadcast keeps total write ordering).
// With Write, the writer's own node sees the new value immediately (the
// implementation writes the local receive region directly, paper §3.3); with
// WriteLoopback everyone, including the writer's node, sees it at t+latency
// (paper §3.3.2, used by the lock algorithm). One previous value is retained
// for readers inside the visibility window.
type WordArray struct {
	st        *stats
	writeCost sim.Time
	latency   sim.Time
	name      string
	tc        TrafficClass
	words     []word
}

type word struct {
	cur, prev   int64
	visibleFrom sim.Time
	writerNode  int // -1: visible per visibleFrom only (loopback write)
}

// newWordArray allocates a globally mapped array of n 8-byte words, all
// zero, charging traffic to the given class. Backends call this from their
// NewWordArray with their own store cost and visibility latency.
func newWordArray(st *stats, writeCost, latency sim.Time, name string, n int, tc TrafficClass) *WordArray {
	w := &WordArray{st: st, writeCost: writeCost, latency: latency, name: name, tc: tc, words: make([]word, n)}
	for i := range w.words {
		w.words[i].writerNode = -1
	}
	return w
}

// Len returns the number of words.
func (w *WordArray) Len() int { return len(w.words) }

// Read returns the value of word i as seen from processor p's node at p's
// current virtual time. Reads are local memory reads (receive regions live in
// RAM) and cost nothing here; callers charge their own cost model.
func (w *WordArray) Read(p *sim.Proc, i int) int64 {
	wd := &w.words[i]
	if p.Now() >= wd.visibleFrom || p.Node == wd.writerNode {
		return wd.cur
	}
	return wd.prev
}

// Write stores v into word i: one store to the local receive region (visible
// on the writer's node immediately) and one PIO store to the transmit region
// (visible remotely after the fabric latency). The writer is charged two
// store costs.
func (w *WordArray) Write(p *sim.Proc, i int, v int64) {
	p.Advance(2 * w.writeCost)
	w.set(p, i, v, p.Node)
}

// WriteLoopback stores v into word i with loop-back enabled: every node,
// including the writer's, sees the new value only after the fabric latency.
// Used by synchronization primitives that rely on total write ordering.
func (w *WordArray) WriteLoopback(p *sim.Proc, i int, v int64) {
	p.Advance(w.writeCost)
	w.set(p, i, v, -1)
}

func (w *WordArray) set(p *sim.Proc, i int, v int64, writerNode int) {
	wd := &w.words[i]
	wd.prev = wd.cur
	wd.cur = v
	wd.visibleFrom = p.Now() + w.latency
	wd.writerNode = writerNode
	w.st.bytesByClass[w.tc] += 8
	w.st.writesIssued++
}

// Spin re-check intervals: start fine-grained so short waits (lock handoffs,
// barrier notifications) resolve with microsecond accuracy, then back off to
// bound scheduler work on long waits.
const (
	spinStepMin = 500 * sim.Nanosecond
	spinStepMax = 20 * sim.Microsecond
	// spinLimit bounds a single spin to catch protocol livelocks; virtual
	// time advancing 10 simulated seconds inside one spin indicates a bug.
	spinLimit = 10 * sim.Second
)

// SpinUntil repeatedly reads word i from processor p until pred returns true,
// advancing p's clock by a poll interval (with exponential backoff) between
// reads. It returns the value that satisfied the predicate. SpinUntil panics
// (failing the simulation with a diagnostic) if the spin exceeds a large
// virtual-time bound.
func (w *WordArray) SpinUntil(p *sim.Proc, i int, pred func(int64) bool) int64 {
	deadline := p.Now() + spinLimit
	step := spinStepMin
	for {
		v := w.Read(p, i)
		if pred(v) {
			return v
		}
		if p.Now() > deadline {
			panic(fmt.Sprintf("interconnect: proc %d spun for %dns on %s[%d] (value %d) without progress",
				p.ID, spinLimit, w.name, i, v))
		}
		p.Sleep(step)
		if step < spinStepMax {
			step *= 2
		}
	}
}
