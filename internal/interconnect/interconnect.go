// Package interconnect defines the pluggable cluster-interconnect contract
// the DSM protocols run against, plus the three models that implement it:
//
//   - Memory Channel (Kind MemoryChannel): the paper's network — remote
//     writes only, total write ordering, per-link and aggregate bandwidth
//     occupancy, imc_kill interrupts. The reference implementation; its
//     behaviour is bit-identical to the pre-interface memchan package.
//   - RDMA (Kind RDMA): a modern one-sided model — remote reads *and*
//     writes, much lower latency, per-queue-pair occupancy instead of a
//     shared hub.
//   - Switched (Kind Switched): a two-level leaf/spine fabric — per-hop
//     latency and link contention, so node count stops being flat.
//
// The interface captures exactly what the protocols depend on (see
// DESIGN.md, "Interconnect contract"):
//
//   - Remote-write visibility horizons: WordArray writes become remotely
//     visible only after the fabric latency; one previous value is retained
//     for readers inside the window.
//   - Latency and occupancy charging: Transfer/WriteThrough advance the
//     issuing processor past the issue cost and queue behind busy links;
//     arrival times account for contention.
//   - Ordering guarantees: every backend here declares total write ordering
//     (Caps.TotalWriteOrder) — two writes to the same region are observed in
//     the same order everywhere — because the protocols' lock and directory
//     algorithms require it.
//   - Interrupt delivery: Interrupt charges the sender and delivers a
//     message at now + InterruptLatency.
//   - Remote reads are capability-gated (Caps.RemoteReads): the Memory
//     Channel and the switched fabric panic on RemoteRead; protocols must
//     check the capability first.
//
// Construction goes through ClusterSpec (spec.go), which validates the
// cluster shape and parameters in one place; the per-backend parameter
// structs are built by the preset constructors (MCFirstGeneration,
// MCSecondGeneration, DefaultRDMA, DefaultSwitched). Direct parameter
// literals outside presets are deprecated — tests aside, every call site
// should take a preset and override individual fields.
package interconnect

import "repro/internal/sim"

// Kind names an interconnect model.
type Kind string

const (
	// MemoryChannel is DEC's Memory Channel (paper §3.1), the reference
	// model.
	MemoryChannel Kind = "memchan"
	// RDMA is the one-sided remote-read/remote-write model.
	RDMA Kind = "rdma"
	// Switched is the two-level leaf/spine switched fabric.
	Switched Kind = "switched"
)

// Kinds lists the supported interconnect kinds in presentation order.
var Kinds = []Kind{MemoryChannel, RDMA, Switched}

// TrafficClass labels interconnect traffic for the statistics the paper's
// Table 3 and Figure 6 break down.
type TrafficClass int

const (
	// TrafficDoubling is write-through traffic from doubled shared writes.
	TrafficDoubling TrafficClass = iota
	// TrafficPage is whole-page (and diff) data transfer traffic.
	TrafficPage
	// TrafficMeta is directory and write-notice traffic.
	TrafficMeta
	// TrafficSync is lock and barrier traffic.
	TrafficSync
	// TrafficMessage is request/response message traffic.
	TrafficMessage
	// NumTrafficClasses is the number of traffic classes; valid classes are
	// TrafficClass(0) through NumTrafficClasses-1, so callers can iterate
	// without probing String() for a sentinel.
	NumTrafficClasses
)

func (tc TrafficClass) String() string {
	switch tc {
	case TrafficDoubling:
		return "doubling"
	case TrafficPage:
		return "page"
	case TrafficMeta:
		return "meta"
	case TrafficSync:
		return "sync"
	case TrafficMessage:
		return "message"
	}
	return "unknown"
}

// Caps declares the guarantees and capabilities a backend provides. The
// conformance suite (conformance_test.go) checks every implementation
// against its declared capabilities so a new backend cannot silently weaken
// a guarantee the protocols rely on.
type Caps struct {
	// RemoteReads reports whether RemoteRead is usable. When false,
	// RemoteRead panics: the Memory Channel hardware has no remote reads
	// (paper §3.1), and the protocols emulate them with messages.
	RemoteReads bool
	// RemoteWrites reports whether WriteThrough is usable: the backend can
	// apply one-sided writes into a remote node's memory. The Memory Channel
	// is remote-writes-only (paper §3.1), and every current backend models
	// the capability; protocols that double shared stores (Cashmere) must
	// still check it so a future receive-only backend fails fast at Setup
	// instead of mismodeling traffic.
	RemoteWrites bool
	// TotalWriteOrder reports that two writes to the same region are
	// observed in the same order on every node. The lock and directory
	// algorithms require it; every current backend provides it.
	TotalWriteOrder bool
}

// Interconnect is the cluster-network contract the protocol and messaging
// layers consume. All methods are driven from processor goroutines of one
// deterministic simulation; implementations are not safe for concurrent use
// across engines.
type Interconnect interface {
	// Kind identifies the model.
	Kind() Kind
	// Caps declares the model's guarantees.
	Caps() Caps

	// MinCrossNodeLatency is the smallest virtual latency any cross-node
	// interaction modeled by this backend can carry: the safe lookahead a
	// node-parallel simulation (sim.SetLookahead) may declare. It does NOT
	// cover msg.Endpoint.Shutdown, which delivers teardown notices at zero
	// latency; a parallel run must quiesce cross-node traffic first.
	MinCrossNodeLatency() sim.Time
	// InterruptSendCost is the sender-side cost of an inter-node signal.
	InterruptSendCost() sim.Time
	// InterruptLatency is the end-to-end inter-node signal latency.
	InterruptLatency() sim.Time

	// Transfer models a bulk data movement of size bytes from the caller's
	// node to node dst (page copies, diffs, message payloads). The caller is
	// charged the issue cost; the returned time is when the data is fully
	// visible at dst, accounting for occupancy and latency. The caller's
	// clock is advanced past the issue cost but NOT to the arrival time
	// (writes are asynchronous).
	Transfer(p *sim.Proc, dst int, bytes int64, tc TrafficClass) sim.Time

	// RemoteRead models a one-sided read of size bytes from node src's
	// memory into the caller's node, with no involvement of any processor on
	// src. The caller is charged the issue cost; the returned time is when
	// the data is available locally (the caller typically AdvanceTo's it).
	// Panics unless Caps().RemoteReads.
	RemoteRead(p *sim.Proc, src int, bytes int64, tc TrafficClass) sim.Time

	// WriteThrough models one doubled shared-memory write of size bytes
	// headed to the home node home. It is deliberately cheap: the store cost
	// itself is charged by the caller's cost model; this call only accounts
	// for write buffer and link occupancy, stalling the writer if the buffer
	// is full.
	WriteThrough(p *sim.Proc, home int, bytes int64)
	// FenceTime returns the virtual time at which all of processor p's
	// write-through traffic issued so far is guaranteed applied at its home
	// nodes. Cashmere's release operation waits for this.
	FenceTime(p *sim.Proc) sim.Time

	// Interrupt sends an inter-node signal to the target processor: the
	// sender pays the send cost, and the target's inbox receives a message
	// with the given kind and payload at now + InterruptLatency.
	Interrupt(p *sim.Proc, target *sim.Proc, kind int, data any)

	// NewWordArray allocates a globally mapped array of n 8-byte words, all
	// zero, charging traffic to the given class.
	NewWordArray(name string, n int, tc TrafficClass) *WordArray

	// AccountTraffic records bytes of traffic in the given class without
	// occupancy modelling, for small metadata writes whose cost the caller
	// charges explicitly (directory broadcast updates).
	AccountTraffic(tc TrafficClass, bytes int64)
	// TrafficBytes returns the bytes transferred so far in the given class.
	TrafficBytes(tc TrafficClass) int64
	// TotalTraffic returns all bytes transferred.
	TotalTraffic() int64
	// Transfers returns the number of bulk transfers (and remote reads)
	// performed.
	Transfers() int64
	// Interrupts returns the number of inter-node interrupts sent.
	Interrupts() int64
}

// stats is the traffic accounting every backend embeds; its methods satisfy
// the accounting half of the Interconnect interface.
type stats struct {
	bytesByClass [NumTrafficClasses]int64
	writesIssued int64
	transfers    int64
	interrupts   int64
}

// AccountTraffic implements Interconnect.
func (s *stats) AccountTraffic(tc TrafficClass, bytes int64) {
	s.bytesByClass[tc] += bytes
}

// TrafficBytes implements Interconnect.
func (s *stats) TrafficBytes(tc TrafficClass) int64 { return s.bytesByClass[tc] }

// TotalTraffic implements Interconnect.
func (s *stats) TotalTraffic() int64 {
	var t int64
	for _, b := range s.bytesByClass {
		t += b
	}
	return t
}

// Transfers implements Interconnect.
func (s *stats) Transfers() int64 { return s.transfers }

// Interrupts implements Interconnect.
func (s *stats) Interrupts() int64 { return s.interrupts }

// pipeState is one processor's write-through pipe: backends that model a
// write buffer feeding the adapter share it.
type pipeState struct {
	// drainAt is the virtual time at which all write-through bytes issued so
	// far will have drained onto the link.
	drainAt sim.Time
	// bytes counts total doubled bytes issued (stats).
	bytes int64
}

// durOn returns the time bytes occupy a pipe of the given bandwidth.
func durOn(bytes int64, bw int64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	return sim.Time(bytes * int64(sim.Second) / bw)
}
