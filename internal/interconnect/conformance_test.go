package interconnect

// Conformance suite: every Interconnect implementation is run against the
// contract documented on the interface, so a new backend cannot silently
// weaken a guarantee the protocols rely on. Each test runs once per Kind.

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// forEachBackend runs fn once per interconnect kind on a fresh cluster of
// the given shape, built through the one supported construction path
// (ClusterSpec.Build).
func forEachBackend(t *testing.T, nodes, ppn int, fn func(t *testing.T, eng *sim.Engine, net Interconnect)) {
	t.Helper()
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			cs := ClusterSpec{Nodes: nodes, ProcsPerNode: ppn, Net: Spec{Kind: kind}}
			eng, err := sim.NewEngine(cs.EngineConfig())
			if err != nil {
				t.Fatal(err)
			}
			net, err := cs.Build(eng)
			if err != nil {
				t.Fatal(err)
			}
			if net.Kind() != kind {
				t.Fatalf("built backend reports kind %q, want %q", net.Kind(), kind)
			}
			fn(t, eng, net)
		})
	}
}

func TestConformanceDeclaredCaps(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		// Every current backend must declare total write ordering: the lock
		// and directory algorithms require it.
		if !net.Caps().TotalWriteOrder {
			t.Error("backend does not declare total write order")
		}
		// Every current backend models one-sided remote writes; Cashmere's
		// Setup guard (and the capsgate linter) depend on the declaration.
		if !net.Caps().RemoteWrites {
			t.Error("backend does not declare remote writes (Caps().RemoteWrites)")
		}
		if net.MinCrossNodeLatency() <= 0 {
			t.Errorf("MinCrossNodeLatency = %d, want > 0", net.MinCrossNodeLatency())
		}
		if net.InterruptLatency() <= 0 || net.InterruptSendCost() <= 0 {
			t.Errorf("interrupt costs = %d/%d, want > 0",
				net.InterruptSendCost(), net.InterruptLatency())
		}
	})
}

// TestConformanceVisibilityMonotonic: once a remote reader has observed a
// value of a globally mapped word, it never observes an older one — the
// visibility horizon moves only forward.
func TestConformanceVisibilityMonotonic(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		w := net.NewWordArray("mono", 1, TrafficMeta)
		// Written sequence: 0 (initial), 1, 2, 3 at 20us spacing.
		order := map[int64]int{0: 0, 1: 1, 2: 2, 3: 3}
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			for v := int64(1); v <= 3; v++ {
				p.Advance(20 * sim.Microsecond)
				w.Write(p, 0, v)
			}
		})
		eng.Go(eng.Proc(1), func(p *sim.Proc) {
			last := 0
			for i := 0; i < 200; i++ {
				p.Advance(500 * sim.Nanosecond)
				p.Yield()
				v := w.Read(p, 0)
				idx, known := order[v]
				if !known {
					t.Fatalf("read unwritten value %d", v)
				}
				if idx < last {
					t.Fatalf("visibility regressed: saw %d after newer value", v)
				}
				last = idx
			}
			if last != 3 {
				t.Errorf("final value index %d, want 3 (latest write visible)", last)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceVisibilityWindow: a remote write is invisible strictly
// inside the fabric latency and visible after it (old-to-new transition).
func TestConformanceVisibilityWindow(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		w := net.NewWordArray("window", 1, TrafficMeta)
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			w.Write(p, 0, 7)
		})
		eng.Go(eng.Proc(1), func(p *sim.Proc) {
			p.Advance(100 * sim.Nanosecond)
			p.Yield()
			if v := w.Read(p, 0); v != 0 {
				t.Errorf("remote read inside latency window = %d, want 0", v)
			}
			p.Advance(1 * sim.Millisecond) // far past any backend's latency
			if v := w.Read(p, 0); v != 7 {
				t.Errorf("remote read after latency window = %d, want 7", v)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceTotalWriteOrder: where the backend declares total write
// ordering, observers on different nodes see two writes to the same word in
// the same order.
func TestConformanceTotalWriteOrder(t *testing.T) {
	forEachBackend(t, 4, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		if !net.Caps().TotalWriteOrder {
			t.Skip("backend does not declare total write order")
		}
		w := net.NewWordArray("order", 1, TrafficMeta)
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			p.Advance(10 * sim.Microsecond)
			w.Write(p, 0, 1)
		})
		eng.Go(eng.Proc(1), func(p *sim.Proc) {
			p.Advance(40 * sim.Microsecond)
			w.Write(p, 0, 2)
		})
		observed := make([][]int64, 2)
		for r := 0; r < 2; r++ {
			reader := eng.Proc(2 + r)
			slot := r
			eng.Go(reader, func(p *sim.Proc) {
				var seen []int64
				for i := 0; i < 300; i++ {
					p.Advance(500 * sim.Nanosecond)
					p.Yield()
					v := w.Read(p, 0)
					if len(seen) == 0 || seen[len(seen)-1] != v {
						seen = append(seen, v)
					}
				}
				observed[slot] = seen
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for r, seen := range observed {
			if len(seen) == 0 || seen[len(seen)-1] != 2 {
				t.Fatalf("reader %d never observed the final write: %v", r, seen)
			}
		}
		if len(observed[0]) != len(observed[1]) {
			t.Fatalf("readers observed different transition counts: %v vs %v",
				observed[0], observed[1])
		}
		for i := range observed[0] {
			if observed[0][i] != observed[1][i] {
				t.Fatalf("readers disagree on write order: %v vs %v",
					observed[0], observed[1])
			}
		}
	})
}

// TestConformanceTransferLatencyFloor: a cross-node transfer never arrives
// earlier than issue time plus the backend's declared minimum cross-node
// latency, and the sender is not advanced to the arrival time (writes are
// asynchronous).
func TestConformanceTransferLatencyFloor(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			start := p.Now()
			arrival := net.Transfer(p, 1, 4096, TrafficPage)
			if arrival < start+net.MinCrossNodeLatency() {
				t.Errorf("arrival %d < issue %d + min latency %d",
					arrival, start, net.MinCrossNodeLatency())
			}
			if p.Now() >= arrival {
				t.Errorf("sender advanced to %d, at/after arrival %d", p.Now(), arrival)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if net.Transfers() != 1 {
			t.Errorf("transfers = %d, want 1", net.Transfers())
		}
		if net.TrafficBytes(TrafficPage) != 4096 {
			t.Errorf("page traffic = %d, want 4096", net.TrafficBytes(TrafficPage))
		}
	})
}

// TestConformanceOccupancyMonotonic: back-to-back transfers on the same path
// queue — arrivals never go backwards, and a busy link pushes later
// transfers out.
func TestConformanceOccupancyMonotonic(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			var prev sim.Time
			for i := 0; i < 8; i++ {
				arrival := net.Transfer(p, 1, 64*1024, TrafficPage)
				if arrival < prev {
					t.Fatalf("transfer %d arrival %d before previous arrival %d", i, arrival, prev)
				}
				prev = arrival
			}
			// Eight 64KB transfers issued with no time passing must queue:
			// the last arrival is strictly beyond one transfer's worth.
			if first := net.MinCrossNodeLatency(); prev <= first {
				t.Errorf("no queueing visible: last arrival %d", prev)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceRemoteReadCapability: RemoteRead panics exactly when the
// backend declares Caps().RemoteReads false, and behaves like a round trip
// when declared available.
func TestConformanceRemoteReadCapability(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		if !net.Caps().RemoteReads {
			eng.Go(eng.Proc(0), func(p *sim.Proc) {
				defer func() {
					r := recover()
					if r == nil {
						t.Error("RemoteRead did not panic despite Caps().RemoteReads == false")
						return
					}
					if !strings.Contains(r.(string), "remote read") {
						t.Errorf("panic %q does not explain the missing capability", r)
					}
					panic(r) // re-panic: the engine converts it into a run error
				}()
				net.RemoteRead(p, 1, 4096, TrafficPage)
			})
			if err := eng.Run(); err == nil {
				t.Error("run succeeded despite RemoteRead panic")
			}
			return
		}
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			start := p.Now()
			avail := net.RemoteRead(p, 1, 4096, TrafficPage)
			if avail < start+net.MinCrossNodeLatency() {
				t.Errorf("remote read available at %d, earlier than one-way latency after %d", avail, start)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if net.Transfers() != 1 {
			t.Errorf("transfers = %d, want 1 (remote read counts)", net.Transfers())
		}
		if net.TrafficBytes(TrafficPage) != 4096 {
			t.Errorf("page traffic = %d, want 4096", net.TrafficBytes(TrafficPage))
		}
	})
}

// TestConformanceFence: the fence horizon is never in the past, never
// retreats as more write-through traffic is issued, and covers at least the
// fabric latency of the last doubled write.
func TestConformanceFence(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			if f := net.FenceTime(p); f < p.Now() {
				t.Errorf("idle fence %d in the past (now %d)", f, p.Now())
			}
			net.WriteThrough(p, 1, 8)
			f1 := net.FenceTime(p)
			if f1 <= p.Now() {
				t.Errorf("fence %d not beyond now %d after a doubled write", f1, p.Now())
			}
			for i := 0; i < 100; i++ {
				net.WriteThrough(p, 1, 8)
			}
			if f2 := net.FenceTime(p); f2 < f1 {
				t.Errorf("fence retreated from %d to %d after more writes", f1, f2)
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if net.TrafficBytes(TrafficDoubling) != 8*101 {
			t.Errorf("doubling traffic = %d, want %d", net.TrafficBytes(TrafficDoubling), 8*101)
		}
	})
}

// TestConformanceInterruptDelivery: an inter-node interrupt is delivered no
// earlier than the declared end-to-end latency, carrying its payload.
func TestConformanceInterruptDelivery(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		const kind = 9
		eng.Go(eng.Proc(0), func(p *sim.Proc) {
			net.Interrupt(p, p.Engine().Proc(1), kind, "payload")
		})
		eng.Go(eng.Proc(1), func(p *sim.Proc) {
			m := p.Recv("awaiting interrupt")
			if m.Kind != kind || m.Data.(string) != "payload" {
				t.Errorf("interrupt message = %+v", m)
			}
			if p.Now() < net.InterruptLatency() {
				t.Errorf("interrupt delivered at %d, before latency %d", p.Now(), net.InterruptLatency())
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if net.Interrupts() != 1 {
			t.Errorf("interrupts = %d, want 1", net.Interrupts())
		}
	})
}

// TestConformanceAccounting: AccountTraffic feeds TrafficBytes and
// TotalTraffic without occupancy side effects.
func TestConformanceAccounting(t *testing.T) {
	forEachBackend(t, 2, 1, func(t *testing.T, eng *sim.Engine, net Interconnect) {
		net.AccountTraffic(TrafficMeta, 24)
		net.AccountTraffic(TrafficSync, 16)
		if net.TrafficBytes(TrafficMeta) != 24 || net.TrafficBytes(TrafficSync) != 16 {
			t.Errorf("per-class bytes = %d/%d, want 24/16",
				net.TrafficBytes(TrafficMeta), net.TrafficBytes(TrafficSync))
		}
		if net.TotalTraffic() != 40 {
			t.Errorf("total = %d, want 40", net.TotalTraffic())
		}
		if net.Transfers() != 0 {
			t.Errorf("transfers = %d, want 0", net.Transfers())
		}
	})
}
