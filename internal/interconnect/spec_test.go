package interconnect

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{
		"": MemoryChannel, "mc": MemoryChannel, "memchan": MemoryChannel,
		"rdma": RDMA, "switched": Switched,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseKind("token-ring"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSpecNormalized(t *testing.T) {
	// Zero value and explicit MC kind normalize identically.
	if got := (Spec{}).Normalized(); got.Kind != MemoryChannel || got.RDMA != nil || got.Switched != nil {
		t.Errorf("zero spec normalized to %+v", got)
	}
	if a, b := (Spec{}).Normalized(), (Spec{Kind: MemoryChannel}).Normalized(); a != b {
		t.Errorf("zero and explicit MC specs normalize differently: %+v vs %+v", a, b)
	}
	// Selecting a kind materializes its preset and drops foreign params.
	rp := DefaultRDMA()
	n := Spec{Kind: RDMA, Switched: &SwitchedParams{}}.Normalized()
	if n.RDMA == nil || *n.RDMA != rp {
		t.Errorf("rdma normalization did not materialize the preset: %+v", n)
	}
	if n.Switched != nil {
		t.Error("normalization kept unselected switched params")
	}
	// Explicit defaults and nil params normalize to the same identity.
	a := Spec{Kind: RDMA}.String()
	b := Spec{Kind: RDMA, RDMA: &rp}.String()
	if a != b {
		t.Errorf("nil and explicit-default rdma keys differ: %q vs %q", a, b)
	}
}

func TestSpecStringStable(t *testing.T) {
	// The canonical key must be parameter-complete and free of pointer
	// addresses: two separately allocated equal specs render identically.
	p1, p2 := DefaultSwitched(), DefaultSwitched()
	a := Spec{Kind: Switched, Switched: &p1}.String()
	b := Spec{Kind: Switched, Switched: &p2}.String()
	if a != b {
		t.Errorf("equal specs render differently: %q vs %q", a, b)
	}
	if (Spec{}).String() != "memchan" {
		t.Errorf("MC spec renders %q", (Spec{}).String())
	}
	// A parameter change must change the key.
	p2.HopLatency++
	if c := (Spec{Kind: Switched, Switched: &p2}).String(); c == a {
		t.Error("parameter change did not change the canonical key")
	}
}

func TestSpecValidate(t *testing.T) {
	for _, s := range []Spec{{}, {Kind: RDMA}, {Kind: Switched}} {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	if (Spec{Kind: "ethernet"}).Validate() == nil {
		t.Error("unknown kind validated")
	}
	bad := DefaultRDMA()
	bad.Latency = -1
	if (Spec{Kind: RDMA, RDMA: &bad}).Validate() == nil {
		t.Error("negative rdma latency validated")
	}
	badSw := DefaultSwitched()
	badSw.SwitchRadix = 0
	if (Spec{Kind: Switched, Switched: &badSw}).Validate() == nil {
		t.Error("zero switch radix validated")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := Spec{Kind: RDMA}.Normalized()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Errorf("round trip changed identity: %q -> %q", orig.String(), back.String())
	}
}

func TestClusterSpecValidate(t *testing.T) {
	good := ClusterSpec{Nodes: 2, ProcsPerNode: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	for _, cs := range []ClusterSpec{
		{Nodes: 0, ProcsPerNode: 1},
		{Nodes: 2, ProcsPerNode: 0},
		{Nodes: 2, ProcsPerNode: 1, MC: MCParams{Latency: -1}},
		{Nodes: 2, ProcsPerNode: 1, Net: Spec{Kind: "ethernet"}},
	} {
		if cs.Validate() == nil {
			t.Errorf("bad spec %+v validated", cs)
		}
	}
}

func TestClusterSpecBuildEachKind(t *testing.T) {
	for _, kind := range Kinds {
		cs := ClusterSpec{Nodes: 4, ProcsPerNode: 2, Net: Spec{Kind: kind}}
		eng, err := sim.NewEngine(cs.EngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		net, err := cs.Build(eng)
		if err != nil {
			t.Fatalf("Build(%s): %v", kind, err)
		}
		if net.Kind() != kind {
			t.Errorf("Build(%s) returned kind %q", kind, net.Kind())
		}
	}
}

func TestClusterSpecZeroMCDefaultsToFirstGeneration(t *testing.T) {
	cs := ClusterSpec{Nodes: 2, ProcsPerNode: 1}
	eng, err := sim.NewEngine(cs.EngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := cs.Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.(*mcNet).Params(); got != MCFirstGeneration() {
		t.Errorf("zero MC params built %+v, want the first-generation preset", got)
	}
}
