package interconnect

import (
	"fmt"

	"repro/internal/sim"
)

// Spec selects an interconnect model and its parameters in configuration
// (core.Config, variants.Options, dsmrun/dsmbench flags, results JSON). The
// zero value selects the Memory Channel — the reference model — so every
// legacy configuration keeps meaning exactly what it meant before the
// interconnect became pluggable.
//
// Memory Channel parameters deliberately do NOT live here: they flow through
// the existing MC channel (core.Config.MC / variants.Options.MC), keeping
// one home per knob and keeping legacy cache keys and serialized options
// byte-identical. The non-default kinds carry their parameters as optional
// pointers; nil means the kind's preset, so "rdma" and "rdma with explicit
// default parameters" normalize to the same canonical identity.
type Spec struct {
	// Kind selects the model; empty means MemoryChannel.
	Kind Kind `json:"kind"`
	// RDMA overrides the RDMA parameters (nil: the DefaultRDMA preset).
	// Only meaningful when Kind is RDMA.
	RDMA *RDMAParams `json:"rdma,omitempty"`
	// Switched overrides the switched-fabric parameters (nil: the
	// DefaultSwitched preset). Only meaningful when Kind is Switched.
	Switched *SwitchedParams `json:"switched,omitempty"`
}

// ParseKind maps a flag value to a Kind ("" and "mc" mean the Memory
// Channel).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "mc", "memchan":
		return MemoryChannel, nil
	case "rdma":
		return RDMA, nil
	case "switched":
		return Switched, nil
	}
	return "", fmt.Errorf("interconnect: unknown kind %q (have memchan, rdma, switched)", s)
}

// IsMemoryChannel reports whether the spec (after normalization) selects
// the reference Memory Channel model.
func (s Spec) IsMemoryChannel() bool {
	return s.Kind == "" || s.Kind == MemoryChannel
}

// Normalized returns the spec in canonical form: the kind is named
// explicitly, the selected kind's parameters are materialized from their
// preset when absent, and parameters of unselected kinds are dropped. Two
// specs that normalize equally select the same model.
func (s Spec) Normalized() Spec {
	out := Spec{Kind: s.Kind}
	if s.IsMemoryChannel() {
		out.Kind = MemoryChannel
		return out
	}
	switch s.Kind {
	case RDMA:
		p := DefaultRDMA()
		if s.RDMA != nil {
			p = *s.RDMA
		}
		out.RDMA = &p
	case Switched:
		p := DefaultSwitched()
		if s.Switched != nil {
			p = *s.Switched
		}
		out.Switched = &p
	}
	return out
}

// Validate reports whether the spec names a known kind with usable
// parameters. Memory Channel parameter validation happens where those
// parameters live (ClusterSpec / core.Config).
func (s Spec) Validate() error {
	n := s.Normalized()
	switch n.Kind {
	case MemoryChannel:
		return nil
	case RDMA:
		return n.RDMA.Validate()
	case Switched:
		return n.Switched.Validate()
	}
	return fmt.Errorf("interconnect: unknown kind %q", s.Kind)
}

// String renders the normalized spec for canonical run keys: stable,
// parameter-complete, and free of pointer addresses.
func (s Spec) String() string {
	n := s.Normalized()
	switch n.Kind {
	case RDMA:
		return fmt.Sprintf("%s:%+v", n.Kind, *n.RDMA)
	case Switched:
		return fmt.Sprintf("%s:%+v", n.Kind, *n.Switched)
	}
	return string(n.Kind)
}

// ClusterSpec is the single validated description of a simulated cluster:
// its shape (nodes x processors per node, where ProcsPerNode counts every
// engine processor, including a dedicated protocol processor if the variant
// adds one) and its interconnect. It replaces the old positional
// memchan.New(eng, params) construction: every backend is built here, after
// one validation pass.
type ClusterSpec struct {
	// Nodes and ProcsPerNode give the engine shape.
	Nodes        int
	ProcsPerNode int
	// MC configures the Memory Channel model (used when Net selects it; the
	// zero value means the MCFirstGeneration preset).
	MC MCParams
	// Net selects the interconnect (zero value: Memory Channel).
	Net Spec
}

// mcParams returns the Memory Channel parameters with the zero value
// defaulted to the first-generation preset.
func (cs ClusterSpec) mcParams() MCParams {
	if cs.MC == (MCParams{}) {
		return MCFirstGeneration()
	}
	return cs.MC
}

// Validate reports whether the cluster shape and the selected
// interconnect's parameters are usable.
func (cs ClusterSpec) Validate() error {
	if cs.Nodes <= 0 || cs.ProcsPerNode <= 0 {
		return fmt.Errorf("interconnect: bad cluster shape %dx%d", cs.Nodes, cs.ProcsPerNode)
	}
	if cs.Net.Normalized().IsMemoryChannel() {
		return cs.mcParams().Validate()
	}
	return cs.Net.Validate()
}

// EngineConfig returns the simulation-engine configuration for this shape.
func (cs ClusterSpec) EngineConfig() sim.Config {
	return sim.Config{Nodes: cs.Nodes, ProcsPerNode: cs.ProcsPerNode}
}

// Build constructs the selected interconnect for an engine created from
// this spec (or any engine with the same cluster shape).
func (cs ClusterSpec) Build(eng *sim.Engine) (Interconnect, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	n := cs.Net.Normalized()
	switch n.Kind {
	case MemoryChannel:
		return newMemoryChannel(eng, cs.mcParams())
	case RDMA:
		return newRDMA(eng, *n.RDMA)
	case Switched:
		return newSwitched(eng, *n.Switched)
	}
	return nil, fmt.Errorf("interconnect: unknown kind %q", cs.Net.Kind)
}
