package interconnect

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func testCluster(t *testing.T, nodes, ppn int) (*sim.Engine, *mcNet) {
	t.Helper()
	cs := ClusterSpec{Nodes: nodes, ProcsPerNode: ppn}
	eng, err := sim.NewEngine(cs.EngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := cs.Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net.(*mcNet)
}

func TestParamsValidate(t *testing.T) {
	if err := MCFirstGeneration().Validate(); err != nil {
		t.Errorf("MCFirstGeneration invalid: %v", err)
	}
	if err := MCSecondGeneration().Validate(); err != nil {
		t.Errorf("MCSecondGeneration invalid: %v", err)
	}
	bad := MCFirstGeneration()
	bad.Latency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
	bad = MCFirstGeneration()
	bad.LinkBandwidth = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestSecondGenerationScaling(t *testing.T) {
	d, s := MCFirstGeneration(), MCSecondGeneration()
	if s.Latency != d.Latency/2 {
		t.Errorf("latency = %d, want half of %d", s.Latency, d.Latency)
	}
	if s.LinkBandwidth != d.LinkBandwidth*10 {
		t.Errorf("link bw = %d, want 10x", s.LinkBandwidth)
	}
}

func TestTrafficClassString(t *testing.T) {
	for tc, want := range map[TrafficClass]string{
		TrafficDoubling: "doubling", TrafficPage: "page", TrafficMeta: "meta",
		TrafficSync: "sync", TrafficMessage: "message", NumTrafficClasses: "unknown",
	} {
		if got := tc.String(); got != want {
			t.Errorf("TrafficClass(%d).String() = %q, want %q", tc, got, want)
		}
	}
}

func TestMCKindAndCaps(t *testing.T) {
	_, net := testCluster(t, 2, 1)
	if net.Kind() != MemoryChannel {
		t.Errorf("Kind = %q", net.Kind())
	}
	caps := net.Caps()
	if caps.RemoteReads {
		t.Error("Memory Channel claims remote reads")
	}
	if !caps.TotalWriteOrder {
		t.Error("Memory Channel does not claim total write order")
	}
}

func TestTransferLatencyAndBandwidth(t *testing.T) {
	eng, net := testCluster(t, 2, 1)
	params := net.Params()
	e := eng
	e.Go(e.Proc(0), func(p *sim.Proc) {
		arrival := net.Transfer(p, 1, 8192, TrafficPage)
		wantXfer := durOn(8192, params.LinkBandwidth)
		want := p.Now() + wantXfer + params.Latency
		if arrival != want {
			t.Errorf("arrival = %d, want %d", arrival, want)
		}
		if p.Now() != params.WriteCost {
			t.Errorf("sender advanced to %d, want only issue cost %d", p.Now(), params.WriteCost)
		}
		// A second transfer queues behind the first on the link.
		arrival2 := net.Transfer(p, 1, 8192, TrafficPage)
		if arrival2 < arrival+wantXfer {
			t.Errorf("second transfer arrival %d does not queue behind first %d", arrival2, arrival)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := net.TrafficBytes(TrafficPage); got != 16384 {
		t.Errorf("page traffic = %d, want 16384", got)
	}
	if net.Transfers() != 2 {
		t.Errorf("transfers = %d, want 2", net.Transfers())
	}
	if net.TotalTraffic() != 16384 {
		t.Errorf("total traffic = %d", net.TotalTraffic())
	}
}

func TestAggregateBandwidthContention(t *testing.T) {
	eng, net := testCluster(t, 4, 1)
	const bytes = 64 * 1024
	var arrivals []sim.Time
	// Two transfers on disjoint node pairs still contend for aggregate
	// bandwidth.
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		arrivals = append(arrivals, net.Transfer(p, 1, bytes, TrafficPage))
	})
	eng.Go(eng.Proc(2), func(p *sim.Proc) {
		p.Advance(1) // deterministic ordering: this transfer goes second
		p.Yield()
		arrivals = append(arrivals, net.Transfer(p, 3, bytes, TrafficPage))
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	aggDur := durOn(bytes, net.Params().AggregateBandwidth)
	if arrivals[1]-arrivals[0] < aggDur/2 {
		t.Errorf("second transfer (%d) not delayed by aggregate occupancy after first (%d)", arrivals[1], arrivals[0])
	}
}

func TestWriteThroughStallsOnFullBuffer(t *testing.T) {
	eng, net := testCluster(t, 2, 1)
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		// Issue far more bytes than the write buffer holds with no time
		// passing: the writer must stall to drain.
		start := p.Now()
		for i := 0; i < 1000; i++ {
			net.WriteThrough(p, 1, 8)
		}
		if p.Now() == start {
			t.Error("writer never stalled despite full write buffer")
		}
		// Fence waits for full drain plus latency.
		f := net.FenceTime(p)
		if f < p.Now()+net.Params().Latency {
			t.Errorf("fence %d earlier than now+latency", f)
		}
		if net.DoubledBytes(p) != 8000 {
			t.Errorf("doubled bytes = %d", net.DoubledBytes(p))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.TrafficBytes(TrafficDoubling) != 8000 {
		t.Errorf("doubling traffic = %d", net.TrafficBytes(TrafficDoubling))
	}
}

func TestFenceIdleIsJustLatency(t *testing.T) {
	eng, net := testCluster(t, 2, 1)
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		net.WriteThrough(p, 1, 8)
		p.Advance(1 * sim.Millisecond) // long after drain
		if f := net.FenceTime(p); f != p.Now()+net.Params().Latency {
			t.Errorf("fence = %d, want now+latency", f)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWordVisibilityWindow(t *testing.T) {
	eng, net := testCluster(t, 2, 2)
	w := net.NewWordArray("test", 4, TrafficMeta)
	// Writer: proc 0 (node 0). Same-node reader: proc 1. Remote: proc 2.
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		w.Write(p, 0, 42)
	})
	eng.Go(eng.Proc(1), func(p *sim.Proc) {
		p.Advance(1 * sim.Microsecond)
		p.Yield()
		if v := w.Read(p, 0); v != 42 {
			t.Errorf("same-node read inside window = %d, want 42 (local receive region)", v)
		}
	})
	eng.Go(eng.Proc(2), func(p *sim.Proc) {
		p.Advance(1 * sim.Microsecond)
		p.Yield()
		if v := w.Read(p, 0); v != 0 {
			t.Errorf("remote read inside window = %d, want 0", v)
		}
		p.Advance(10 * sim.Microsecond) // past 5.2us latency
		if v := w.Read(p, 0); v != 42 {
			t.Errorf("remote read after window = %d, want 42", v)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLoopbackHidesFromWriterNode(t *testing.T) {
	eng, net := testCluster(t, 2, 2)
	w := net.NewWordArray("lock", 1, TrafficSync)
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		w.WriteLoopback(p, 0, 7)
		if v := w.Read(p, 0); v != 0 {
			t.Errorf("loopback write visible immediately on own node: %d", v)
		}
		p.Advance(net.Params().Latency + 1)
		if v := w.Read(p, 0); v != 7 {
			t.Errorf("loopback write not visible after latency: %d", v)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpinUntil(t *testing.T) {
	eng, net := testCluster(t, 2, 1)
	w := net.NewWordArray("flag", 1, TrafficSync)
	var sawAt sim.Time
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		v := w.SpinUntil(p, 0, func(v int64) bool { return v == 1 })
		if v != 1 {
			t.Errorf("SpinUntil returned %d", v)
		}
		sawAt = p.Now()
	})
	eng.Go(eng.Proc(1), func(p *sim.Proc) {
		p.Advance(100 * sim.Microsecond)
		p.Yield()
		w.Write(p, 0, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Spinner must see the flag only after write time + latency, within the
	// max spin backoff.
	lo := 100*sim.Microsecond + net.Params().Latency
	if sawAt < lo || sawAt > lo+2*spinStepMax {
		t.Errorf("spinner saw flag at %d, want within [%d, %d]", sawAt, lo, lo+2*spinStepMax)
	}
}

func TestSpinUntilLivelockPanics(t *testing.T) {
	eng, net := testCluster(t, 1, 1)
	w := net.NewWordArray("stuck", 1, TrafficSync)
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		w.SpinUntil(p, 0, func(v int64) bool { return false })
	})
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "without progress") {
		t.Fatalf("Run = %v, want spin livelock panic", err)
	}
}

func TestInterruptDelivery(t *testing.T) {
	eng, net := testCluster(t, 2, 1)
	target := eng.Proc(1)
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		net.Interrupt(p, target, 5, "sig")
	})
	eng.Go(target, func(p *sim.Proc) {
		m := p.Recv("interrupt")
		if m.Kind != 5 || m.Data.(string) != "sig" {
			t.Errorf("got %+v", m)
		}
		want := net.Params().InterruptSendCost + net.Params().InterruptLatency
		if p.Now() != want {
			t.Errorf("interrupt delivered at %d, want %d", p.Now(), want)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Interrupts() != 1 {
		t.Errorf("interrupts = %d", net.Interrupts())
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	cs := ClusterSpec{Nodes: 1, ProcsPerNode: 1, MC: MCParams{Latency: -1}}
	eng, err := sim.NewEngine(cs.EngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Build(eng); err == nil {
		t.Fatal("Build accepted bad MC params")
	}
}

func TestWordArrayLen(t *testing.T) {
	_, net := testCluster(t, 1, 1)
	if got := net.NewWordArray("x", 17, TrafficSync).Len(); got != 17 {
		t.Errorf("Len = %d", got)
	}
}

func TestDurOn(t *testing.T) {
	if d := durOn(0, 30e6); d != 0 {
		t.Errorf("durOn(0) = %d", d)
	}
	if d := durOn(-5, 30e6); d != 0 {
		t.Errorf("durOn(-5) = %d", d)
	}
	// 30 MB at 30 MB/s = 1 s
	if d := durOn(30e6, 30e6); d != sim.Second {
		t.Errorf("durOn(30e6) = %d, want 1s", d)
	}
}

// TestAccountTraffic covers the metadata accounting hook used by Cashmere's
// directory broadcasts.
func TestAccountTraffic(t *testing.T) {
	_, net := testCluster(t, 1, 1)
	net.AccountTraffic(TrafficMeta, 24)
	net.AccountTraffic(TrafficMeta, 8)
	if got := net.TrafficBytes(TrafficMeta); got != 32 {
		t.Errorf("meta traffic = %d, want 32", got)
	}
	if net.TotalTraffic() != 32 {
		t.Errorf("total = %d", net.TotalTraffic())
	}
}

// TestWordVisibilityTwoWritesWindow documents the single-previous-value
// approximation: a reader inside the window of the second write sees the
// first write's value.
func TestWordVisibilityTwoWritesWindow(t *testing.T) {
	eng, net := testCluster(t, 2, 1)
	w := net.NewWordArray("w", 1, TrafficSync)
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		w.Write(p, 0, 1)
		p.Advance(20 * sim.Microsecond) // first write fully visible
		w.Write(p, 0, 2)
	})
	eng.Go(eng.Proc(1), func(p *sim.Proc) {
		p.SleepUntil(22 * sim.Microsecond) // inside the second write's window
		if v := w.Read(p, 0); v != 1 {
			t.Errorf("read %d inside second window, want previous value 1", v)
		}
		p.SleepUntil(40 * sim.Microsecond)
		if v := w.Read(p, 0); v != 2 {
			t.Errorf("read %d after window, want 2", v)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMinCrossNodeLatency checks the declared parallel-simulation lookahead:
// it must be the smallest latency any cross-node interaction can carry, and
// every modeled cross-node arrival must respect it.
func TestMinCrossNodeLatency(t *testing.T) {
	if got, want := MCFirstGeneration().MinCrossNodeLatency(), sim.Time(5200); got != want {
		t.Errorf("MCFirstGeneration MinCrossNodeLatency = %d, want %d", got, want)
	}
	if got, want := MCSecondGeneration().MinCrossNodeLatency(), sim.Time(2600); got != want {
		t.Errorf("MCSecondGeneration MinCrossNodeLatency = %d, want %d", got, want)
	}
	fast := MCFirstGeneration()
	fast.InterruptLatency = 100 // hypothetical: interrupts faster than writes
	if got, want := fast.MinCrossNodeLatency(), sim.Time(100); got != want {
		t.Errorf("fast-interrupt MinCrossNodeLatency = %d, want %d", got, want)
	}

	// Property: a cross-node transfer issued at time s arrives no earlier
	// than s + MinCrossNodeLatency, no matter how small the payload.
	eng, net := testCluster(t, 2, 1)
	la := net.Params().MinCrossNodeLatency()
	eng.Go(eng.Proc(0), func(p *sim.Proc) {
		issue := p.Now()
		arrival := net.Transfer(p, 1, 1, TrafficMessage)
		if arrival < issue+la {
			t.Errorf("1-byte transfer arrived at %d, before issue %d + lookahead %d", arrival, issue, la)
		}
		net.Interrupt(p, eng.Proc(1), 1, nil)
	})
	var intrAt sim.Time
	eng.Go(eng.Proc(1), func(p *sim.Proc) {
		m := p.Recv("interrupt")
		intrAt = m.At
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if intrAt < la {
		t.Errorf("interrupt arrived at %d, inside the %d lookahead", intrAt, la)
	}
}
