// Switched backend: a two-level leaf/spine fabric in the style of the
// rack-scale disaggregated-memory simulators in the related work. Where the
// Memory Channel's hub makes every node pair equidistant (and its aggregate
// bandwidth flat in node count), the switched model makes topology matter:
//
//   - Per-hop latency: nodes attach to leaf switches of SwitchRadix ports;
//     a transfer crosses two switch hops when source and destination share a
//     leaf and four hops (leaf, spine, leaf) when they do not, each hop
//     adding HopLatency on top of the fixed endpoint overhead.
//   - Link contention: each node's access link and each leaf's uplink to
//     the spine are occupancy horizons; cross-leaf traffic contends on both
//     leaves' uplinks, so locality is visible in completion times.
//   - No remote reads: like the Memory Channel, the fabric only moves
//     writes; protocols keep using their message-based fetch paths.
//
// Broadcast regions (WordArray) use the fabric diameter as their visibility
// horizon: a write is declared remotely visible only once it would have
// reached the farthest node, which preserves the total write ordering the
// lock and directory algorithms assume (a closer node never legally observes
// two writes in a different order than a farther one).
package interconnect

import (
	"fmt"

	"repro/internal/sim"
)

// SwitchedParams are the switched-fabric timing and capacity parameters.
// Zero values are invalid; use the DefaultSwitched preset.
type SwitchedParams struct {
	// SwitchRadix is the number of nodes per leaf switch.
	SwitchRadix int
	// WireLatency is the fixed endpoint overhead per transfer (NIC plus
	// serialization at the edges).
	WireLatency sim.Time
	// HopLatency is the per-switch traversal latency.
	HopLatency sim.Time
	// WriteCost is the processor-side cost of issuing one write to the
	// fabric adapter.
	WriteCost sim.Time
	// LinkBandwidth is each node's access-link bandwidth in bytes/second.
	LinkBandwidth int64
	// UplinkBandwidth is each leaf switch's uplink bandwidth to the spine in
	// bytes/second; cross-leaf traffic serializes on both leaves' uplinks.
	UplinkBandwidth int64
	// InterruptSendCost is the sender-side cost of an inter-node signal.
	InterruptSendCost sim.Time
	// InterruptLatency is the end-to-end inter-node signal latency.
	InterruptLatency sim.Time
	// WriteBufferBytes is the write-buffer depth feeding the adapter.
	WriteBufferBytes int64
}

// DefaultSwitched is the switched-fabric preset: Memory-Channel-era link
// speeds behind an 8-port leaf, with a 4x uplink so the spine is not an
// automatic bottleneck.
func DefaultSwitched() SwitchedParams {
	return SwitchedParams{
		SwitchRadix:       8,
		WireLatency:       2 * sim.Microsecond,
		HopLatency:        500,
		WriteCost:         250,
		LinkBandwidth:     60e6,
		UplinkBandwidth:   240e6,
		InterruptSendCost: 5 * sim.Microsecond,
		InterruptLatency:  200 * sim.Microsecond,
		WriteBufferBytes:  1024,
	}
}

// MinCrossNodeLatency returns the smallest cross-node latency the
// parameters can produce: the same-leaf (two-hop) path, or the interrupt
// latency if that is somehow smaller.
func (p SwitchedParams) MinCrossNodeLatency() sim.Time {
	min := p.WireLatency + 2*p.HopLatency
	if p.InterruptLatency < min {
		min = p.InterruptLatency
	}
	return min
}

// Validate reports whether the parameters are usable.
func (p SwitchedParams) Validate() error {
	if p.SwitchRadix <= 0 {
		return fmt.Errorf("interconnect: non-positive switch radix %d", p.SwitchRadix)
	}
	if p.WireLatency <= 0 || p.HopLatency <= 0 || p.WriteCost <= 0 ||
		p.InterruptSendCost <= 0 || p.InterruptLatency <= 0 {
		return fmt.Errorf("interconnect: non-positive switched-fabric timing parameter: %+v", p)
	}
	if p.LinkBandwidth <= 0 || p.UplinkBandwidth <= 0 || p.WriteBufferBytes <= 0 {
		return fmt.Errorf("interconnect: non-positive switched-fabric capacity parameter: %+v", p)
	}
	return nil
}

// switchNet is the switched-fabric instance for one simulated cluster.
// Construct it through ClusterSpec.Build.
type switchNet struct {
	stats
	params SwitchedParams
	nodes  int

	// linkFree[n] is the time node n's access link is next free;
	// uplinkFree[l] the same for leaf l's uplink to the spine.
	linkFree   []sim.Time
	uplinkFree []sim.Time

	pipe []pipeState
}

// newSwitched creates a switched fabric for the engine's cluster.
func newSwitched(eng *sim.Engine, params SwitchedParams) (*switchNet, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	nodes := eng.Config().Nodes
	leaves := (nodes + params.SwitchRadix - 1) / params.SwitchRadix
	if leaves == 0 {
		leaves = 1
	}
	return &switchNet{
		params:     params,
		nodes:      nodes,
		linkFree:   make([]sim.Time, nodes),
		uplinkFree: make([]sim.Time, leaves),
		pipe:       make([]pipeState, eng.NumProcs()),
	}, nil
}

// Kind implements Interconnect.
func (n *switchNet) Kind() Kind { return Switched }

// Caps implements Interconnect: remote writes only, total ordering (via the
// diameter visibility horizon, see the package comment above).
func (n *switchNet) Caps() Caps {
	return Caps{RemoteReads: false, RemoteWrites: true, TotalWriteOrder: true}
}

// Params returns the network parameters.
func (n *switchNet) Params() SwitchedParams { return n.params }

func (n *switchNet) leaf(node int) int { return node / n.params.SwitchRadix }

// pathLatency returns the src->dst wire-plus-hop latency.
func (n *switchNet) pathLatency(src, dst int) sim.Time {
	hops := sim.Time(2)
	if n.leaf(src) != n.leaf(dst) {
		hops = 4
	}
	return n.params.WireLatency + hops*n.params.HopLatency
}

// diameter returns the worst-case path latency in this cluster: the horizon
// broadcast writes use so that visibility (and thus observed write order) is
// uniform across nodes.
func (n *switchNet) diameter() sim.Time {
	hops := sim.Time(2)
	if n.nodes > n.params.SwitchRadix {
		hops = 4
	}
	return n.params.WireLatency + hops*n.params.HopLatency
}

// MinCrossNodeLatency implements Interconnect.
func (n *switchNet) MinCrossNodeLatency() sim.Time { return n.params.MinCrossNodeLatency() }

// InterruptSendCost implements Interconnect.
func (n *switchNet) InterruptSendCost() sim.Time { return n.params.InterruptSendCost }

// InterruptLatency implements Interconnect.
func (n *switchNet) InterruptLatency() sim.Time { return n.params.InterruptLatency }

// Transfer implements Interconnect: occupancy on both access links (and on
// both leaf uplinks for cross-leaf traffic) plus the per-hop path latency.
func (n *switchNet) Transfer(p *sim.Proc, dst int, bytes int64, tc TrafficClass) sim.Time {
	p.Advance(n.params.WriteCost)
	src := p.Node
	start := p.Now()
	if n.linkFree[src] > start {
		start = n.linkFree[src]
	}
	if dst != src && n.linkFree[dst] > start {
		start = n.linkFree[dst]
	}
	crossLeaf := n.leaf(src) != n.leaf(dst)
	if crossLeaf {
		if up := n.uplinkFree[n.leaf(src)]; up > start {
			start = up
		}
		if up := n.uplinkFree[n.leaf(dst)]; up > start {
			start = up
		}
	}
	linkDur := durOn(bytes, n.params.LinkBandwidth)
	n.linkFree[src] = start + linkDur
	if dst != src {
		n.linkFree[dst] = start + linkDur
	}
	if crossLeaf {
		upDur := durOn(bytes, n.params.UplinkBandwidth)
		n.uplinkFree[n.leaf(src)] = start + upDur
		n.uplinkFree[n.leaf(dst)] = start + upDur
	}
	n.bytesByClass[tc] += bytes
	n.transfers++
	return start + linkDur + n.pathLatency(src, dst)
}

// RemoteRead implements Interconnect: the switched fabric, like the Memory
// Channel, only moves writes.
func (n *switchNet) RemoteRead(p *sim.Proc, src int, bytes int64, tc TrafficClass) sim.Time {
	panic("interconnect: the switched fabric has no remote reads (Caps().RemoteReads is false)")
}

// WriteThrough implements Interconnect: doubled writes drain through the
// node's access link.
func (n *switchNet) WriteThrough(p *sim.Proc, home int, bytes int64) {
	ps := &n.pipe[p.ID]
	if ps.drainAt < p.Now() {
		ps.drainAt = p.Now()
	}
	ps.drainAt += durOn(bytes, n.params.LinkBandwidth)
	ps.bytes += bytes
	n.bytesByClass[TrafficDoubling] += bytes
	if backlog := ps.drainAt - p.Now(); backlog > durOn(n.params.WriteBufferBytes, n.params.LinkBandwidth) {
		p.AdvanceTo(ps.drainAt - durOn(n.params.WriteBufferBytes, n.params.LinkBandwidth))
	}
}

// FenceTime implements Interconnect: drain plus the fabric diameter, since
// a release must cover writes headed to the farthest home node.
func (n *switchNet) FenceTime(p *sim.Proc) sim.Time {
	d := n.pipe[p.ID].drainAt
	if d < p.Now() {
		d = p.Now()
	}
	return d + n.diameter()
}

// DoubledBytes returns the total write-through bytes issued by processor p.
func (n *switchNet) DoubledBytes(p *sim.Proc) int64 { return n.pipe[p.ID].bytes }

// Interrupt implements Interconnect.
func (n *switchNet) Interrupt(p *sim.Proc, target *sim.Proc, kind int, data any) {
	p.Advance(n.params.InterruptSendCost)
	n.interrupts++
	target.Deliver(p.NewMsg(p.Now()+n.params.InterruptLatency, kind, data))
}

// NewWordArray implements Interconnect: broadcast words become remotely
// visible at the fabric diameter (see the package comment).
func (n *switchNet) NewWordArray(name string, nwords int, tc TrafficClass) *WordArray {
	return newWordArray(&n.stats, n.params.WriteCost, n.diameter(), name, nwords, tc)
}
