// RDMA backend: a one-sided remote-memory-access model in the style of the
// user-level DSM work the paper's related-work section points toward (VIA /
// InfiniBand-generation NICs). Three properties distinguish it from the
// Memory Channel:
//
//   - True remote reads: RemoteRead fetches a remote node's memory with no
//     involvement of any processor there (Caps.RemoteReads). Cashmere uses
//     it to replace the page-fetch request/reply with a single one-sided
//     read when the backend allows it.
//   - Much lower latency: ~1.3 µs one-sided write visibility versus the
//     Memory Channel's 5.2 µs, and interrupt (completion-event) delivery in
//     tens of microseconds rather than a millisecond.
//   - Per-queue-pair occupancy: each (src, dst) node pair serializes on its
//     own queue pair, and each node's NIC has its own link bandwidth —
//     there is no cluster-wide shared hub, so aggregate bandwidth scales
//     with node count instead of being flat.
package interconnect

import (
	"fmt"

	"repro/internal/sim"
)

// RDMAParams are the RDMA model's timing and capacity parameters. Zero
// values are invalid; use the DefaultRDMA preset.
type RDMAParams struct {
	// Latency is the one-sided remote-write visibility latency: a posted
	// write becomes visible in the destination node's memory this long after
	// it leaves the queue pair.
	Latency sim.Time
	// ReadLatency is the one-sided read completion latency (request plus
	// response wire time; a full round trip, so roughly twice Latency).
	ReadLatency sim.Time
	// PostCost is the processor-side cost of posting one work request and
	// ringing the doorbell.
	PostCost sim.Time
	// QPBandwidth is the per-queue-pair bandwidth in bytes per second:
	// transfers between the same (src, dst) node pair serialize on it.
	QPBandwidth int64
	// NICBandwidth is the per-node adapter bandwidth in bytes per second;
	// all traffic in or out of one node serializes on it.
	NICBandwidth int64
	// InterruptSendCost is the sender-side cost of raising a completion
	// event on the target.
	InterruptSendCost sim.Time
	// InterruptLatency is the end-to-end completion-event delivery latency
	// (event queue plus user-level upcall; no kernel signal path).
	InterruptLatency sim.Time
	// WriteBufferBytes is the posted-but-undrained write budget; the
	// write-through pipe stalls the writer beyond it.
	WriteBufferBytes int64
}

// DefaultRDMA is the RDMA preset: an early-2000s user-level NIC — two
// orders of magnitude less latency than kernel UDP, per-pair queueing, and
// no shared hub.
func DefaultRDMA() RDMAParams {
	return RDMAParams{
		Latency:           1300, // 1.3 µs one-sided write
		ReadLatency:       3 * sim.Microsecond,
		PostCost:          100,
		QPBandwidth:       160e6,
		NICBandwidth:      640e6,
		InterruptSendCost: 1 * sim.Microsecond,
		InterruptLatency:  30 * sim.Microsecond,
		WriteBufferBytes:  4096,
	}
}

// MinCrossNodeLatency returns the smallest cross-node latency the
// parameters can produce (see Interconnect).
func (p RDMAParams) MinCrossNodeLatency() sim.Time {
	min := p.Latency
	if p.InterruptLatency < min {
		min = p.InterruptLatency
	}
	return min
}

// Validate reports whether the parameters are usable.
func (p RDMAParams) Validate() error {
	if p.Latency <= 0 || p.ReadLatency <= 0 || p.PostCost <= 0 ||
		p.InterruptSendCost <= 0 || p.InterruptLatency <= 0 {
		return fmt.Errorf("interconnect: non-positive RDMA timing parameter: %+v", p)
	}
	if p.QPBandwidth <= 0 || p.NICBandwidth <= 0 || p.WriteBufferBytes <= 0 {
		return fmt.Errorf("interconnect: non-positive RDMA capacity parameter: %+v", p)
	}
	return nil
}

// rdmaNet is the RDMA instance for one simulated cluster. Construct it
// through ClusterSpec.Build.
type rdmaNet struct {
	stats
	params RDMAParams
	nodes  int

	// qpFree[src*nodes+dst] is the time the (src, dst) queue pair is next
	// free; nicFree[n] the same for node n's adapter.
	qpFree  []sim.Time
	nicFree []sim.Time

	pipe []pipeState
}

// newRDMA creates an RDMA fabric for the engine's cluster.
func newRDMA(eng *sim.Engine, params RDMAParams) (*rdmaNet, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	nodes := eng.Config().Nodes
	return &rdmaNet{
		params:  params,
		nodes:   nodes,
		qpFree:  make([]sim.Time, nodes*nodes),
		nicFree: make([]sim.Time, nodes),
		pipe:    make([]pipeState, eng.NumProcs()),
	}, nil
}

// Kind implements Interconnect.
func (n *rdmaNet) Kind() Kind { return RDMA }

// Caps implements Interconnect: one-sided remote reads are the point of
// this model; ordering within a queue pair plus the simulator's serialized
// write execution give total write ordering.
func (n *rdmaNet) Caps() Caps {
	return Caps{RemoteReads: true, RemoteWrites: true, TotalWriteOrder: true}
}

// Params returns the network parameters.
func (n *rdmaNet) Params() RDMAParams { return n.params }

// MinCrossNodeLatency implements Interconnect.
func (n *rdmaNet) MinCrossNodeLatency() sim.Time { return n.params.MinCrossNodeLatency() }

// InterruptSendCost implements Interconnect.
func (n *rdmaNet) InterruptSendCost() sim.Time { return n.params.InterruptSendCost }

// InterruptLatency implements Interconnect.
func (n *rdmaNet) InterruptLatency() sim.Time { return n.params.InterruptLatency }

// occupy charges one bulk movement between the caller's node and node peer:
// the data serializes on the (local, peer) queue pair and occupies both
// NICs. It returns the start time plus the queue-pair transfer duration
// (the moment the last byte leaves the pair).
func (n *rdmaNet) occupy(p *sim.Proc, peer int, bytes int64) sim.Time {
	local := p.Node
	qp := &n.qpFree[local*n.nodes+peer]
	start := p.Now()
	if *qp > start {
		start = *qp
	}
	if n.nicFree[local] > start {
		start = n.nicFree[local]
	}
	if peer != local && n.nicFree[peer] > start {
		start = n.nicFree[peer]
	}
	qpDur := durOn(bytes, n.params.QPBandwidth)
	nicDur := durOn(bytes, n.params.NICBandwidth)
	*qp = start + qpDur
	n.nicFree[local] = start + nicDur
	if peer != local {
		n.nicFree[peer] = start + nicDur
	}
	return start + qpDur
}

// Transfer implements Interconnect: a one-sided remote write.
func (n *rdmaNet) Transfer(p *sim.Proc, dst int, bytes int64, tc TrafficClass) sim.Time {
	p.Advance(n.params.PostCost)
	done := n.occupy(p, dst, bytes)
	n.bytesByClass[tc] += bytes
	n.transfers++
	return done + n.params.Latency
}

// RemoteRead implements Interconnect: a one-sided read of node src's memory
// with no remote processor involvement. The returned completion time
// includes the full round trip.
func (n *rdmaNet) RemoteRead(p *sim.Proc, src int, bytes int64, tc TrafficClass) sim.Time {
	p.Advance(n.params.PostCost)
	done := n.occupy(p, src, bytes)
	n.bytesByClass[tc] += bytes
	n.transfers++
	return done + n.params.ReadLatency
}

// WriteThrough implements Interconnect: doubled writes drain through the
// NIC at adapter bandwidth.
func (n *rdmaNet) WriteThrough(p *sim.Proc, home int, bytes int64) {
	ps := &n.pipe[p.ID]
	if ps.drainAt < p.Now() {
		ps.drainAt = p.Now()
	}
	ps.drainAt += durOn(bytes, n.params.NICBandwidth)
	ps.bytes += bytes
	n.bytesByClass[TrafficDoubling] += bytes
	if backlog := ps.drainAt - p.Now(); backlog > durOn(n.params.WriteBufferBytes, n.params.NICBandwidth) {
		p.AdvanceTo(ps.drainAt - durOn(n.params.WriteBufferBytes, n.params.NICBandwidth))
	}
}

// FenceTime implements Interconnect (drain plus latency).
func (n *rdmaNet) FenceTime(p *sim.Proc) sim.Time {
	d := n.pipe[p.ID].drainAt
	if d < p.Now() {
		d = p.Now()
	}
	return d + n.params.Latency
}

// DoubledBytes returns the total write-through bytes issued by processor p.
func (n *rdmaNet) DoubledBytes(p *sim.Proc) int64 { return n.pipe[p.ID].bytes }

// Interrupt implements Interconnect: a completion event on the target's
// event queue.
func (n *rdmaNet) Interrupt(p *sim.Proc, target *sim.Proc, kind int, data any) {
	p.Advance(n.params.InterruptSendCost)
	n.interrupts++
	target.Deliver(p.NewMsg(p.Now()+n.params.InterruptLatency, kind, data))
}

// NewWordArray implements Interconnect.
func (n *rdmaNet) NewWordArray(name string, nwords int, tc TrafficClass) *WordArray {
	return newWordArray(&n.stats, n.params.PostCost, n.params.Latency, name, nwords, tc)
}
