// Memory Channel backend: DEC's Memory Channel network (paper §3.1), the
// reference Interconnect implementation.
//
// The model reproduces the properties the DSM protocols actually depend on:
//
//   - Remote writes only: a node can write into another node's memory through
//     transmit-mapped regions, but cannot read remote memory. Reads are always
//     local; data becomes locally readable only after it has been written to a
//     receive-mapped region on the reader's node.
//   - Latency: a process-to-process write becomes visible at remote receive
//     regions 5.2 µs after it is issued.
//   - Total write ordering: two writes to the same region appear in the same
//     order in every receive region. In the simulator this falls out of the
//     baton-passing scheduler: writes are executed one at a time in virtual
//     time order, and a per-word visibility horizon hides a write from remote
//     readers until it has "arrived".
//   - Bandwidth: per-link transfer bandwidth (~30 MB/s, limited by the 32-bit
//     PCI bus) and aggregate bandwidth (~32 MB/s with the first-generation
//     driver) are modelled as occupancy horizons; bulk transfers and the
//     write-through pipe queue behind them.
//   - Inter-node interrupts (imc_kill): cheap for the sender (~5 µs), but
//     with an end-to-end delivery cost of ~1 ms because the signal is only
//     filtered up when the receiving process enters the kernel (§3.2).
//
// Approximations (documented in DESIGN.md): word values keep one previous
// version for remote readers inside the visibility window rather than a full
// history, and the write-through pipe charges per-link bandwidth without
// aggregate contention (bulk transfers charge both).
package interconnect

import (
	"fmt"

	"repro/internal/sim"
)

// MCParams are the Memory Channel timing and capacity parameters. Zero
// values are invalid; use the MCFirstGeneration preset (as measured in the
// paper) or MCSecondGeneration for the paper's projection.
type MCParams struct {
	// Latency is the process-to-process write latency (paper: 5.2 µs).
	Latency sim.Time
	// WriteCost is the processor-side cost of issuing one PIO write to a
	// transmit region (store to I/O space over PCI).
	WriteCost sim.Time
	// LinkBandwidth is the per-link transfer bandwidth in bytes per second
	// (paper: ~30 MB/s, limited by the 32-bit PCI bus).
	LinkBandwidth int64
	// AggregateBandwidth is the cluster-wide bandwidth in bytes per second
	// (paper: ~32 MB/s with the early driver).
	AggregateBandwidth int64
	// InterruptSendCost is the sender-side cost of imc_kill (paper: 5 µs).
	InterruptSendCost sim.Time
	// InterruptLatency is the end-to-end inter-node signal latency
	// (paper: ~1 ms, dominated by kernel filtering on the receiver).
	InterruptLatency sim.Time
	// WriteBufferBytes is the depth of the processor's write buffer feeding
	// the MC adapter; the write-through pipe stalls the writer when more
	// than this many bytes are still undrained.
	WriteBufferBytes int64
}

// MCFirstGeneration models the first-generation Memory Channel measured in
// the paper.
func MCFirstGeneration() MCParams {
	return MCParams{
		Latency:            5200, // 5.2 µs
		WriteCost:          250,  // PIO store over 32-bit PCI
		LinkBandwidth:      30e6,
		AggregateBandwidth: 32e6,
		InterruptSendCost:  5 * sim.Microsecond,
		InterruptLatency:   1 * sim.Millisecond,
		WriteBufferBytes:   512,
	}
}

// MCSecondGeneration models the paper's §1 projection for the follow-on
// network: "something like half the latency, and an order of magnitude more
// bandwidth".
func MCSecondGeneration() MCParams {
	p := MCFirstGeneration()
	p.Latency /= 2
	p.LinkBandwidth *= 10
	p.AggregateBandwidth *= 10
	return p
}

// MinCrossNodeLatency returns the smallest virtual latency any cross-node
// interaction modeled by these parameters can carry: reflected writes and
// bulk transfers arrive no earlier than Latency after they are issued, and
// inter-node interrupts no earlier than InterruptLatency.
func (p MCParams) MinCrossNodeLatency() sim.Time {
	min := p.Latency
	if p.InterruptLatency < min {
		min = p.InterruptLatency
	}
	return min
}

// Validate reports whether the parameters are usable.
func (p MCParams) Validate() error {
	if p.Latency <= 0 || p.WriteCost <= 0 || p.InterruptSendCost <= 0 || p.InterruptLatency <= 0 {
		return fmt.Errorf("interconnect: non-positive Memory Channel timing parameter: %+v", p)
	}
	if p.LinkBandwidth <= 0 || p.AggregateBandwidth <= 0 || p.WriteBufferBytes <= 0 {
		return fmt.Errorf("interconnect: non-positive Memory Channel capacity parameter: %+v", p)
	}
	return nil
}

// mcNet is the Memory Channel instance for one simulated cluster. Construct
// it through ClusterSpec.Build.
type mcNet struct {
	stats
	params MCParams
	eng    *sim.Engine

	// linkFree[n] is the virtual time at which node n's adapter link is next
	// free; aggFree is the same for the shared hub.
	linkFree []sim.Time
	aggFree  sim.Time

	// pipe[p] is the write-through pipe state for processor p.
	pipe []pipeState
}

// newMemoryChannel creates a Memory Channel for the engine's cluster.
func newMemoryChannel(eng *sim.Engine, params MCParams) (*mcNet, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &mcNet{
		params:   params,
		eng:      eng,
		linkFree: make([]sim.Time, eng.Config().Nodes),
		pipe:     make([]pipeState, eng.NumProcs()),
	}, nil
}

// Kind implements Interconnect.
func (n *mcNet) Kind() Kind { return MemoryChannel }

// Caps implements Interconnect: no remote reads (paper §3.1), total write
// ordering.
func (n *mcNet) Caps() Caps {
	return Caps{RemoteReads: false, RemoteWrites: true, TotalWriteOrder: true}
}

// Params returns the network parameters.
func (n *mcNet) Params() MCParams { return n.params }

// MinCrossNodeLatency implements Interconnect.
func (n *mcNet) MinCrossNodeLatency() sim.Time { return n.params.MinCrossNodeLatency() }

// InterruptSendCost implements Interconnect.
func (n *mcNet) InterruptSendCost() sim.Time { return n.params.InterruptSendCost }

// InterruptLatency implements Interconnect.
func (n *mcNet) InterruptLatency() sim.Time { return n.params.InterruptLatency }

// Transfer implements Interconnect: the arrival time accounts for link and
// aggregate bandwidth occupancy plus the MC latency.
func (n *mcNet) Transfer(p *sim.Proc, dst int, bytes int64, tc TrafficClass) sim.Time {
	p.Advance(n.params.WriteCost)
	src := p.Node
	start := p.Now()
	if n.linkFree[src] > start {
		start = n.linkFree[src]
	}
	if n.aggFree > start {
		start = n.aggFree
	}
	linkDur := durOn(bytes, n.params.LinkBandwidth)
	aggDur := durOn(bytes, n.params.AggregateBandwidth)
	n.linkFree[src] = start + linkDur
	if dst != src {
		// The receiving link is occupied by the DMA into the receive region.
		if rcv := n.linkFree[dst]; rcv > start {
			// Receiver contention delays completion.
			start = rcv
			n.linkFree[src] = start + linkDur
		}
		n.linkFree[dst] = start + linkDur
	}
	n.aggFree = start + aggDur
	n.bytesByClass[tc] += bytes
	n.transfers++
	arrival := start + linkDur + n.params.Latency
	return arrival
}

// RemoteRead implements Interconnect: the Memory Channel has no remote
// reads. The protocols emulate them with messages (Cashmere asks a processor
// at the home node to write the data through, §2.1).
func (n *mcNet) RemoteRead(p *sim.Proc, src int, bytes int64, tc TrafficClass) sim.Time {
	panic("interconnect: the Memory Channel has no remote reads (Caps().RemoteReads is false)")
}

// WriteThrough implements Interconnect.
func (n *mcNet) WriteThrough(p *sim.Proc, home int, bytes int64) {
	ps := &n.pipe[p.ID]
	if ps.drainAt < p.Now() {
		ps.drainAt = p.Now()
	}
	ps.drainAt += durOn(bytes, n.params.LinkBandwidth)
	ps.bytes += bytes
	n.bytesByClass[TrafficDoubling] += bytes
	// Stall if the write buffer cannot absorb the backlog.
	if backlog := ps.drainAt - p.Now(); backlog > durOn(n.params.WriteBufferBytes, n.params.LinkBandwidth) {
		p.AdvanceTo(ps.drainAt - durOn(n.params.WriteBufferBytes, n.params.LinkBandwidth))
	}
}

// FenceTime implements Interconnect (drain plus latency).
func (n *mcNet) FenceTime(p *sim.Proc) sim.Time {
	d := n.pipe[p.ID].drainAt
	if d < p.Now() {
		d = p.Now()
	}
	return d + n.params.Latency
}

// DoubledBytes returns the total write-through bytes issued by processor p.
func (n *mcNet) DoubledBytes(p *sim.Proc) int64 { return n.pipe[p.ID].bytes }

// Interrupt implements Interconnect: an imc_kill-style inter-node signal.
func (n *mcNet) Interrupt(p *sim.Proc, target *sim.Proc, kind int, data any) {
	p.Advance(n.params.InterruptSendCost)
	n.interrupts++
	target.Deliver(p.NewMsg(p.Now()+n.params.InterruptLatency, kind, data))
}

// NewWordArray implements Interconnect.
func (n *mcNet) NewWordArray(name string, nwords int, tc TrafficClass) *WordArray {
	return newWordArray(&n.stats, n.params.WriteCost, n.params.Latency, name, nwords, tc)
}
