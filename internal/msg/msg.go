// Package msg implements the request/response messaging layer both DSM
// systems use for remote operations (paper §3.2, §3.4).
//
// A request directed at processor T becomes *eligible* for service at an
// arrival-plus-dispatch time that depends on the notification mechanism:
//
//   - Polling: eligible as soon as the data arrives; T services it at its
//     next poll point (applications are instrumented at the tops of loops).
//   - Interrupt (imc_kill): eligible one inter-node signal latency (~1 ms on
//     Digital Unix) after arrival; same-node signals cost ~69 µs.
//   - Kernel UDP with SIGIO: like interrupt, plus kernel protocol-stack
//     overhead on both sides.
//
// The simulator encodes eligibility in the message timestamp: a request's
// sim.Msg.At is the time the receiver may act on it, so the same dispatch
// code services all variants. Replies never need notification — the
// requester spins — so a reply's At is its data arrival time.
//
// While waiting for a reply, a processor services incoming requests (the
// paper makes TreadMarks' handlers re-entrant to avoid flow-control
// deadlock); Call's wait loop does the same.
package msg

import (
	"fmt"

	"repro/internal/interconnect"
	"repro/internal/sim"
)

// Mode selects the notification mechanism for requests.
type Mode int

const (
	// ModePoll: user-level MC buffers, polling instrumentation.
	ModePoll Mode = iota
	// ModeInterrupt: user-level MC buffers, imc_kill interrupts.
	ModeInterrupt
	// ModeUDP: DEC's kernel MC UDP with SIGIO interrupts.
	ModeUDP
)

func (m Mode) String() string {
	switch m {
	case ModePoll:
		return "poll"
	case ModeInterrupt:
		return "interrupt"
	case ModeUDP:
		return "udp"
	}
	return "invalid"
}

// Params are the messaging-layer cost parameters.
type Params struct {
	Mode Mode
	// IntraNodeLatency is the delivery latency between processes on the same
	// SMP node (message buffers in ordinary shared memory, §3.4).
	IntraNodeLatency sim.Time
	// PerMessageCost is the sender-side software overhead per message
	// (buffer management, flow-control flags) for user-level messaging.
	PerMessageCost sim.Time
	// UDPPerMessageCost is the additional kernel protocol-stack cost per
	// message, charged on both sides in ModeUDP.
	UDPPerMessageCost sim.Time
	// DispatchCost is the receiver-side cost of entering the request handler
	// from a poll point.
	DispatchCost sim.Time
	// LocalSignalCost is the cost of delivering a signal to a process on the
	// same node (paper §4.1: 69 µs).
	LocalSignalCost sim.Time
}

// DefaultParams returns messaging parameters for the given mode with the
// paper's measured constants.
func DefaultParams(mode Mode) Params {
	return Params{
		Mode:              mode,
		IntraNodeLatency:  1 * sim.Microsecond,
		PerMessageCost:    3 * sim.Microsecond,
		UDPPerMessageCost: 80 * sim.Microsecond,
		DispatchCost:      2 * sim.Microsecond,
		LocalSignalCost:   69 * sim.Microsecond,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.IntraNodeLatency <= 0 || p.PerMessageCost <= 0 || p.DispatchCost <= 0 ||
		p.LocalSignalCost <= 0 || p.UDPPerMessageCost < 0 {
		return fmt.Errorf("msg: non-positive parameter: %+v", p)
	}
	if p.Mode < ModePoll || p.Mode > ModeUDP {
		return fmt.Errorf("msg: invalid mode %d", p.Mode)
	}
	return nil
}

// Message kinds reserved by the layer. Protocol request kinds must be >= 0.
const (
	// KindReply carries a response to a Call.
	KindReply = -1
	// KindShutdown tells a parked service loop to exit.
	KindShutdown = -2
)

// Request is the payload of a protocol request message.
type Request struct {
	// Token correlates the eventual reply with the waiting Call.
	Token uint64
	// From is the requesting processor's id.
	From int
	// Data is the protocol-defined request body.
	Data any
}

// Reply is the payload of a KindReply message.
type Reply struct {
	Token uint64
	Data  any
}

// Handler services one protocol request. Implementations must send exactly
// one reply via Endpoint.Reply for requests sent with Call, and none for
// requests sent with Send.
type Handler func(m sim.Msg, req Request)

// Endpoint is one processor's attachment to the messaging layer.
type Endpoint struct {
	p       *sim.Proc
	net     interconnect.Interconnect
	params  Params
	handler Handler

	nextToken uint64
	shutdown  bool
	// stash holds replies that arrived while waiting for a different token
	// (parallel Calls in flight).
	stash map[uint64]any

	// Stats (paper Table 3 reports message counts and data volume).
	messagesSent int64
	bytesSent    int64
}

// NewEndpoint attaches processor p to the messaging layer.
func NewEndpoint(p *sim.Proc, net interconnect.Interconnect, params Params) (*Endpoint, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Endpoint{p: p, net: net, params: params}, nil
}

// SetHandler installs the protocol's request handler. It must be set before
// any request can arrive.
func (ep *Endpoint) SetHandler(h Handler) { ep.handler = h }

// Proc returns the endpoint's processor.
func (ep *Endpoint) Proc() *sim.Proc { return ep.p }

// MessagesSent returns the number of messages this endpoint has sent.
func (ep *Endpoint) MessagesSent() int64 { return ep.messagesSent }

// BytesSent returns the payload bytes this endpoint has sent.
func (ep *Endpoint) BytesSent() int64 { return ep.bytesSent }

// ShutdownRequested reports whether a KindShutdown message has been serviced.
func (ep *Endpoint) ShutdownRequested() bool { return ep.shutdown }

// send transmits a message of the given wire size to the target processor
// and returns the data arrival time. Sender-side costs are charged here.
func (ep *Endpoint) send(target *sim.Proc, bytes int64, tc interconnect.TrafficClass) sim.Time {
	ep.messagesSent++
	ep.bytesSent += bytes
	ep.p.Advance(ep.params.PerMessageCost)
	if ep.params.Mode == ModeUDP {
		ep.p.Advance(ep.params.UDPPerMessageCost)
	}
	if target.Node == ep.p.Node {
		return ep.p.Now() + ep.params.IntraNodeLatency
	}
	return ep.net.Transfer(ep.p, target.Node, bytes, tc)
}

// requestEligibility converts a data arrival time into the time the receiver
// may act on the request, per the notification mechanism.
func (ep *Endpoint) requestEligibility(target *sim.Proc, arrival sim.Time) sim.Time {
	switch ep.params.Mode {
	case ModePoll:
		return arrival
	case ModeInterrupt, ModeUDP:
		if target.Node == ep.p.Node {
			return arrival + ep.params.LocalSignalCost
		}
		// Remote signal: the sender-side imc_kill cost.
		ep.p.Advance(ep.net.InterruptSendCost())
		lat := ep.net.InterruptLatency()
		if ep.params.Mode == ModeUDP {
			lat += ep.params.UDPPerMessageCost // kernel receive path
		}
		return arrival + lat
	}
	panic("msg: invalid mode")
}

// Send transmits a one-way request (no reply expected) to the target.
func (ep *Endpoint) Send(target *Endpoint, kind int, data any, bytes int64) {
	if kind < 0 {
		panic(fmt.Sprintf("msg: protocol request kind %d must be >= 0", kind))
	}
	ep.p.Yield() // scheduling point before a globally visible action
	arrival := ep.send(target.p, bytes, interconnect.TrafficMessage)
	at := ep.requestEligibility(target.p, arrival)
	target.p.Deliver(ep.p.NewMsg(at, kind, Request{From: ep.p.ID, Data: data}))
}

// Call transmits a request and blocks until the matching reply arrives,
// servicing any requests that become eligible in the meantime (re-entrant
// wait, §3.4). It returns the reply payload.
func (ep *Endpoint) Call(target *Endpoint, kind int, data any, bytes int64) any {
	return ep.WaitReply(ep.CallStart(target, kind, data, bytes))
}

// CallStart transmits a request and returns a token for WaitReply, allowing
// several requests to be in flight at once (TreadMarks issues the diff
// requests for a page in parallel and then awaits all the replies).
func (ep *Endpoint) CallStart(target *Endpoint, kind int, data any, bytes int64) uint64 {
	if kind < 0 {
		panic(fmt.Sprintf("msg: protocol request kind %d must be >= 0", kind))
	}
	ep.nextToken++
	token := ep.nextToken
	ep.p.Yield()
	arrival := ep.send(target.p, bytes, interconnect.TrafficMessage)
	at := ep.requestEligibility(target.p, arrival)
	target.p.Deliver(ep.p.NewMsg(at, kind, Request{Token: token, From: ep.p.ID, Data: data}))
	return token
}

// WaitReply blocks until the reply with the given token arrives, servicing
// eligible requests while waiting. Replies for other outstanding tokens are
// stashed for their own WaitReply.
func (ep *Endpoint) WaitReply(token uint64) any {
	if r, ok := ep.stash[token]; ok {
		delete(ep.stash, token)
		return r
	}
	for {
		m := ep.p.Recv("awaiting message reply")
		switch m.Kind {
		case KindReply:
			r := m.Data.(Reply)
			if r.Token == token {
				return r.Data
			}
			if ep.stash == nil {
				ep.stash = make(map[uint64]any)
			}
			ep.stash[r.Token] = r.Data
		case KindShutdown:
			panic(fmt.Sprintf("msg: proc %d received shutdown while awaiting reply", ep.p.ID))
		default:
			ep.dispatch(m)
		}
	}
}

// Reply sends the response for a request received via Call. The replying
// processor charges the send; the requester sees the reply at data arrival
// (it is spinning, so no notification latency applies). Replies carry
// TrafficMessage accounting; use ReplyClass for bulk data.
func (ep *Endpoint) Reply(to int, req Request, data any, bytes int64) {
	ep.ReplyClass(to, req, data, bytes, interconnect.TrafficMessage)
}

// ReplyClass is Reply with an explicit Memory Channel traffic class, so that
// page and diff payloads are accounted as data traffic rather than protocol
// messages.
func (ep *Endpoint) ReplyClass(to int, req Request, data any, bytes int64, tc interconnect.TrafficClass) {
	target := ep.p.Engine().Proc(to)
	arrival := ep.send(target, bytes, tc)
	target.Deliver(ep.p.NewMsg(arrival, KindReply, Reply{Token: req.Token, Data: data}))
}

// dispatch runs the handler for one request message, charging the dispatch
// cost.
func (ep *Endpoint) dispatch(m sim.Msg) {
	if m.Kind == KindShutdown {
		ep.shutdown = true
		return
	}
	if ep.handler == nil {
		panic(fmt.Sprintf("msg: proc %d has no handler for kind %d", ep.p.ID, m.Kind))
	}
	ep.p.Advance(ep.params.DispatchCost)
	ep.handler(m, m.Data.(Request))
}

// PollVisible services all currently eligible requests without blocking.
// Poll points and compute-slice checkpoints call this.
func (ep *Endpoint) PollVisible() {
	for {
		m, ok := ep.p.TryRecv()
		if !ok {
			return
		}
		ep.dispatch(m)
	}
}

// ServeUntilShutdown services requests until a KindShutdown message is
// received. Dedicated protocol processors and finished application
// processors park here.
func (ep *Endpoint) ServeUntilShutdown() {
	for !ep.shutdown {
		m := ep.p.Recv("serving requests")
		ep.dispatch(m)
	}
}

// Shutdown delivers a KindShutdown message to the target, waking it from
// ServeUntilShutdown at the current virtual time.
func (ep *Endpoint) Shutdown(target *Endpoint) {
	target.p.Deliver(ep.p.NewMsg(ep.p.Now(), KindShutdown, nil))
}
