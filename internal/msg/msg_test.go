package msg

import (
	"testing"

	"repro/internal/interconnect"
	"repro/internal/sim"
)

const (
	kindEcho = iota
	kindOneWay
)

type harness struct {
	eng *sim.Engine
	net interconnect.Interconnect
	eps []*Endpoint
}

func newHarness(t *testing.T, nodes, ppn int, mode Mode) *harness {
	t.Helper()
	cs := interconnect.ClusterSpec{Nodes: nodes, ProcsPerNode: ppn}
	eng, err := sim.NewEngine(cs.EngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := cs.Build(eng)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{eng: eng, net: net}
	for _, p := range eng.Procs() {
		ep, err := NewEndpoint(p, net, DefaultParams(mode))
		if err != nil {
			t.Fatal(err)
		}
		h.eps = append(h.eps, ep)
	}
	return h
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{ModePoll: "poll", ModeInterrupt: "interrupt", ModeUDP: "udp", Mode(9): "invalid"} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	for _, m := range []Mode{ModePoll, ModeInterrupt, ModeUDP} {
		if err := DefaultParams(m).Validate(); err != nil {
			t.Errorf("DefaultParams(%v) invalid: %v", m, err)
		}
	}
	bad := DefaultParams(ModePoll)
	bad.DispatchCost = 0
	if bad.Validate() == nil {
		t.Error("zero dispatch cost accepted")
	}
	bad = DefaultParams(ModePoll)
	bad.Mode = Mode(42)
	if bad.Validate() == nil {
		t.Error("bad mode accepted")
	}
}

// echoServer installs a handler that replies with the request data plus one.
func echoServer(ep *Endpoint) {
	ep.SetHandler(func(m sim.Msg, req Request) {
		switch m.Kind {
		case kindEcho:
			ep.Reply(req.From, req, req.Data.(int)+1, 64)
		case kindOneWay:
			// no reply
		}
	})
}

// callRTT measures a single cross-node Call round trip in the given mode.
func callRTT(t *testing.T, mode Mode) (sim.Time, *harness) {
	t.Helper()
	h := newHarness(t, 2, 1, mode)
	client, server := h.eps[0], h.eps[1]
	echoServer(server)
	var rtt sim.Time
	h.eng.Go(client.Proc(), func(p *sim.Proc) {
		start := p.Now()
		got := client.Call(server, kindEcho, 41, 64)
		rtt = p.Now() - start
		if got.(int) != 42 {
			t.Errorf("Call returned %v", got)
		}
		client.Shutdown(server)
	})
	h.eng.Go(server.Proc(), func(p *sim.Proc) { server.ServeUntilShutdown() })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return rtt, h
}

func TestCallRoundTripPoll(t *testing.T) {
	rtt, h := callRTT(t, ModePoll)
	// Round trip in poll mode: two ~5.2us latencies plus transfer and
	// software costs; far below one interrupt latency.
	if rtt <= 2*h.net.MinCrossNodeLatency() {
		t.Errorf("rtt %d implausibly low", rtt)
	}
	if rtt >= h.net.InterruptLatency() {
		t.Errorf("poll-mode rtt %d should be far below interrupt latency", rtt)
	}
	if h.eps[0].MessagesSent() != 1 {
		t.Errorf("client messages = %d", h.eps[0].MessagesSent())
	}
	if h.eps[1].MessagesSent() != 1 {
		t.Errorf("server messages = %d (reply)", h.eps[1].MessagesSent())
	}
}

func TestCallInterruptLatencyDominates(t *testing.T) {
	rttPoll, _ := callRTT(t, ModePoll)
	rttInt, hInt := callRTT(t, ModeInterrupt)
	rttUDP, _ := callRTT(t, ModeUDP)
	if !(rttPoll < rttInt && rttInt < rttUDP) {
		t.Errorf("rtt ordering wrong: poll=%d int=%d udp=%d", rttPoll, rttInt, rttUDP)
	}
	if rttInt < hInt.net.InterruptLatency() {
		t.Errorf("interrupt rtt %d below interrupt latency", rttInt)
	}
}

func TestSameNodeCheaperThanCrossNode(t *testing.T) {
	var same, cross sim.Time
	{
		h := newHarness(t, 1, 2, ModeInterrupt)
		c, s := h.eps[0], h.eps[1]
		echoServer(s)
		h.eng.Go(c.Proc(), func(p *sim.Proc) {
			start := p.Now()
			c.Call(s, kindEcho, 1, 64)
			same = p.Now() - start
			c.Shutdown(s)
		})
		h.eng.Go(s.Proc(), func(p *sim.Proc) { s.ServeUntilShutdown() })
		if err := h.eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	{
		h := newHarness(t, 2, 1, ModeInterrupt)
		c, s := h.eps[0], h.eps[1]
		echoServer(s)
		h.eng.Go(c.Proc(), func(p *sim.Proc) {
			start := p.Now()
			c.Call(s, kindEcho, 1, 64)
			cross = p.Now() - start
			c.Shutdown(s)
		})
		h.eng.Go(s.Proc(), func(p *sim.Proc) { s.ServeUntilShutdown() })
		if err := h.eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if same >= cross {
		t.Errorf("same-node rtt %d not cheaper than cross-node %d", same, cross)
	}
}

// TestReentrantWait: A calls B while B calls A; both must service the peer's
// request while waiting for their own reply.
func TestReentrantWait(t *testing.T) {
	h := newHarness(t, 2, 1, ModePoll)
	a, b := h.eps[0], h.eps[1]
	for _, pair := range []struct{ self, peer *Endpoint }{{a, b}, {b, a}} {
		self, peer := pair.self, pair.peer
		self.SetHandler(func(m sim.Msg, req Request) {
			self.Reply(req.From, req, req.Data.(int)*2, 8)
		})
		_ = peer
	}
	results := make([]int, 2)
	h.eng.Go(a.Proc(), func(p *sim.Proc) {
		results[0] = a.Call(b, kindEcho, 10, 8).(int)
	})
	h.eng.Go(b.Proc(), func(p *sim.Proc) {
		results[1] = b.Call(a, kindEcho, 20, 8).(int)
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if results[0] != 20 || results[1] != 40 {
		t.Errorf("results = %v, want [20 40]", results)
	}
}

func TestSendOneWayAndPollVisible(t *testing.T) {
	h := newHarness(t, 2, 1, ModePoll)
	src, dst := h.eps[0], h.eps[1]
	var got []int
	dst.SetHandler(func(m sim.Msg, req Request) {
		got = append(got, req.Data.(int))
	})
	h.eng.Go(src.Proc(), func(p *sim.Proc) {
		src.Send(dst, kindOneWay, 1, 8)
		src.Send(dst, kindOneWay, 2, 8)
	})
	h.eng.Go(dst.Proc(), func(p *sim.Proc) {
		p.SleepUntil(1 * sim.Millisecond)
		dst.PollVisible()
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2] in order", got)
	}
}

func TestNegativeKindPanics(t *testing.T) {
	h := newHarness(t, 2, 1, ModePoll)
	h.eng.Go(h.eps[0].Proc(), func(p *sim.Proc) {
		h.eps[0].Send(h.eps[1], -5, nil, 8)
	})
	if err := h.eng.Run(); err == nil {
		t.Fatal("negative kind accepted")
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	h := newHarness(t, 2, 1, ModePoll)
	h.eng.Go(h.eps[0].Proc(), func(p *sim.Proc) {
		h.eps[0].Send(h.eps[1], kindOneWay, nil, 8)
	})
	h.eng.Go(h.eps[1].Proc(), func(p *sim.Proc) {
		p.SleepUntil(sim.Millisecond)
		h.eps[1].PollVisible()
	})
	if err := h.eng.Run(); err == nil {
		t.Fatal("missing handler did not fail the run")
	}
}

func TestBytesAccounting(t *testing.T) {
	h := newHarness(t, 2, 1, ModePoll)
	c, s := h.eps[0], h.eps[1]
	echoServer(s)
	h.eng.Go(c.Proc(), func(p *sim.Proc) {
		c.Call(s, kindEcho, 1, 1000)
		c.Shutdown(s)
	})
	h.eng.Go(s.Proc(), func(p *sim.Proc) { s.ServeUntilShutdown() })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent() != 1000 {
		t.Errorf("client bytes = %d", c.BytesSent())
	}
	if s.BytesSent() != 64 {
		t.Errorf("server bytes = %d", s.BytesSent())
	}
	if h.net.TrafficBytes(interconnect.TrafficMessage) != 1064 {
		t.Errorf("MC message traffic = %d", h.net.TrafficBytes(interconnect.TrafficMessage))
	}
	if !s.ShutdownRequested() {
		t.Error("shutdown flag not set")
	}
}

// TestParallelCallsOutOfOrder: two in-flight calls whose replies arrive in
// reverse order must both resolve via the stash.
func TestParallelCallsOutOfOrder(t *testing.T) {
	h := newHarness(t, 3, 1, ModePoll)
	client, fast, slow := h.eps[0], h.eps[1], h.eps[2]
	// fast replies immediately; slow sleeps before replying.
	fast.SetHandler(func(m sim.Msg, req Request) {
		fast.Reply(req.From, req, "fast", 8)
	})
	slow.SetHandler(func(m sim.Msg, req Request) {
		slow.Proc().Sleep(2 * sim.Millisecond)
		slow.Reply(req.From, req, "slow", 8)
	})
	h.eng.Go(client.Proc(), func(p *sim.Proc) {
		tokSlow := client.CallStart(slow, kindEcho, nil, 8)
		tokFast := client.CallStart(fast, kindEcho, nil, 8)
		// Wait for the slow one first: the fast reply must be stashed.
		if got := client.WaitReply(tokSlow); got.(string) != "slow" {
			t.Errorf("slow reply = %v", got)
		}
		if got := client.WaitReply(tokFast); got.(string) != "fast" {
			t.Errorf("fast reply = %v", got)
		}
		client.Shutdown(fast)
		client.Shutdown(slow)
	})
	h.eng.Go(fast.Proc(), func(p *sim.Proc) { fast.ServeUntilShutdown() })
	h.eng.Go(slow.Proc(), func(p *sim.Proc) { slow.ServeUntilShutdown() })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitReplyStashFirst: a stashed reply is consumed without blocking.
func TestWaitReplyStashFirst(t *testing.T) {
	h := newHarness(t, 2, 1, ModePoll)
	c, s := h.eps[0], h.eps[1]
	echoServer(s)
	h.eng.Go(c.Proc(), func(p *sim.Proc) {
		t1 := c.CallStart(s, kindEcho, 1, 8)
		t2 := c.CallStart(s, kindEcho, 2, 8)
		// Both replies arrive while waiting for t2; t1 lands in the stash.
		if got := c.WaitReply(t2); got.(int) != 3 {
			t.Errorf("t2 = %v", got)
		}
		if got := c.WaitReply(t1); got.(int) != 2 {
			t.Errorf("t1 = %v", got)
		}
		c.Shutdown(s)
	})
	h.eng.Go(s.Proc(), func(p *sim.Proc) { s.ServeUntilShutdown() })
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
