package check

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/apps/fuzz"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/variants"
)

// Repro kinds.
const (
	KindDifferential = "differential"
	KindLitmus       = "litmus"
)

// Repro is a self-contained, replayable failure specification. The shrinker
// minimizes one and cmd/dsmcheck serializes it to JSON; `dsmcheck -replay`
// deserializes and re-runs it. Every run it describes is deterministic, so a
// repro either always reproduces or never does.
type Repro struct {
	// Kind selects the checker: KindDifferential or KindLitmus.
	Kind string
	// Fuzz is the generated-program configuration (differential kind).
	Fuzz fuzz.Config
	// Litmus is the litmus test name (litmus kind); Perm its role rotation.
	Litmus string `json:",omitempty"`
	Perm   int    `json:",omitempty"`
	// Variant is the protocol variant.
	Variant string
	// Nodes x PPN is the cluster shape.
	Nodes, PPN int
	// Schedule is the perturbation; the zero value replays the canonical
	// order.
	Schedule sim.Schedule
	// InjectDropDiffRuns re-arms the injected TreadMarks bug (self-test).
	InjectDropDiffRuns int `json:",omitempty"`
	// Reason records why the run failed when the repro was captured.
	Reason string `json:",omitempty"`
}

func (r Repro) shape() Shape { return Shape{Nodes: r.Nodes, PPN: r.PPN} }

// String is a compact one-line description.
func (r Repro) String() string {
	switch r.Kind {
	case KindLitmus:
		return fmt.Sprintf("litmus %s on %s %s, schedule seed %d",
			r.Litmus, r.Variant, r.shape(), r.Schedule.Seed)
	default:
		return fmt.Sprintf("fuzz{seed %d, %d rounds, %d elems, %d locks} on %s %s, schedule seed %d",
			r.Fuzz.Seed, r.Fuzz.Rounds, r.Fuzz.Elems, r.Fuzz.Locks,
			r.Variant, r.shape(), r.Schedule.Seed)
	}
}

// WriteFile serializes the repro as indented JSON.
func (r Repro) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro written by WriteFile.
func LoadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("check: parse %s: %w", path, err)
	}
	return r, nil
}

// Replay runs the repro once. It returns the failure reason, "" if the run
// passes, and an error only for malformed repro specifications.
func Replay(r Repro) (string, error) {
	switch r.Kind {
	case KindDifferential:
		if r.Fuzz.Rounds < 1 || r.Fuzz.Elems < 64 || r.Fuzz.Locks < 1 {
			return "", fmt.Errorf("check: bad fuzz config %+v", r.Fuzz)
		}
		return diffReason(r.Fuzz, r.Variant, r.shape(), r.Schedule, r.InjectDropDiffRuns), nil
	case KindLitmus:
		for _, test := range Suite() {
			if test.Name != r.Litmus {
				continue
			}
			cfg, err := variants.Config(r.Variant, r.Nodes, r.PPN, variants.Options{Schedule: r.Schedule})
			if err != nil {
				return "", err
			}
			res, err := core.Run(cfg, test.New(r.Perm))
			if err != nil {
				return fmt.Sprintf("run failed: %v", err), nil
			}
			regs, err := test.outcome(res.Checks)
			if err != nil {
				return err.Error(), nil
			}
			if test.Forbidden(regs) {
				return fmt.Sprintf("forbidden outcome %s", test.Format(regs)), nil
			}
			return "", nil
		}
		return "", fmt.Errorf("check: unknown litmus test %q", r.Litmus)
	default:
		return "", fmt.Errorf("check: unknown repro kind %q", r.Kind)
	}
}

// reseedWidth is how many schedule seeds the shrinker searches per shrinking
// candidate: the original seed first (the same program often fails under the
// same perturbation stream), then a small neighborhood, since a structurally
// smaller program needs a different ordering to hit the same protocol path.
const reseedWidth = 8

// Shrink minimizes a reproducing failure by greedily bisecting the program
// parameters and cluster shape, re-searching the schedule-seed neighborhood
// after each structural change. budget caps the total number of replays
// (<= 0 means a default of 400). It returns the minimized repro and the
// number of replays spent. Shrinking requires the input to reproduce.
func Shrink(r Repro, budget int) (Repro, int, error) {
	if budget <= 0 {
		budget = 400
	}
	spent := 0
	replay := func(c Repro) (string, bool) {
		if spent >= budget {
			return "", false
		}
		spent++
		reason, err := Replay(c)
		if err != nil {
			return "", false
		}
		return reason, reason != ""
	}
	reason, fails := replay(r)
	if !fails {
		return r, spent, fmt.Errorf("check: repro does not reproduce: %s", r)
	}
	r.Reason = reason

	// accept tries a structural candidate across the seed neighborhood.
	accept := func(c Repro) (Repro, bool) {
		seeds := []uint64{c.Schedule.Seed}
		if c.Schedule.Enabled() {
			for k := uint64(1); k < reseedWidth; k++ {
				seeds = append(seeds, c.Schedule.Seed+k)
			}
		}
		for _, seed := range seeds {
			cand := c
			cand.Schedule.Seed = seed
			if reason, bad := replay(cand); bad {
				cand.Reason = reason
				return cand, true
			}
		}
		return c, false
	}

	for spent < budget {
		improved := false
		for _, cand := range shrinkCandidates(r) {
			if got, ok := accept(cand); ok {
				r = got
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return r, spent, nil
}

// shrinkCandidates proposes structurally smaller variants of the repro, most
// aggressive first. Every candidate stays within the checkers' legal
// parameter space (fuzz needs Rounds >= 1, Elems >= 64, Locks >= 1; a DSM
// run needs >= 2 processors).
func shrinkCandidates(r Repro) []Repro {
	var out []Repro
	add := func(mutate func(*Repro)) {
		c := r
		mutate(&c)
		if c != r {
			out = append(out, c)
		}
	}
	// Shape first: fewer processors shrinks every later replay.
	if r.shape().Procs() > 2 {
		add(func(c *Repro) { c.Nodes, c.PPN = 2, 1 })
	}
	if r.PPN > 1 {
		add(func(c *Repro) { c.PPN = 1 })
	}
	if r.Kind == KindLitmus {
		return out
	}
	if h := r.Fuzz.Rounds / 2; h >= 1 && h < r.Fuzz.Rounds {
		add(func(c *Repro) { c.Fuzz.Rounds = h })
	}
	if r.Fuzz.Rounds > 1 {
		add(func(c *Repro) { c.Fuzz.Rounds-- })
	}
	if h := r.Fuzz.Elems / 2; h >= 64 && h < r.Fuzz.Elems {
		add(func(c *Repro) { c.Fuzz.Elems = h })
	}
	if r.Fuzz.Locks > 1 {
		add(func(c *Repro) { c.Fuzz.Locks = r.Fuzz.Locks / 2 })
		add(func(c *Repro) { c.Fuzz.Locks-- })
	}
	return out
}
