package check

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apps/fuzz"
)

// TestLitmusAcceptance is the tentpole acceptance bar: across at least 200
// perturbed schedules per (test, protocol), every forbidden outcome is
// absent and every permitted-with-sync must-observe outcome appears at
// least once.
func TestLitmusAcceptance(t *testing.T) {
	report, err := RunLitmus(Params{Schedules: 200})
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 2 * 200; report.Runs != want {
		t.Fatalf("ran %d simulations, want %d", report.Runs, want)
	}
	for _, row := range report.Rows {
		for _, v := range row.Violations {
			t.Errorf("%s/%s: %s", row.Test, row.Variant, v)
		}
		for _, m := range row.Missing {
			t.Errorf("%s/%s: %s", row.Test, row.Variant, m)
		}
	}
	if report.FirstViolation != nil {
		t.Errorf("violation repro recorded for a healthy sweep: %s", report.FirstViolation)
	}
}

// TestLitmusDeterministicReport: the sweep aggregation must not depend on
// worker interleaving — same parameters, same report, including with a
// single-threaded pool.
func TestLitmusDeterministicReport(t *testing.T) {
	a, err := RunLitmus(Params{Schedules: 12, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLitmus(Params{Schedules: 12, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("reports differ across worker counts:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSuiteShape: the suite is the advertised eight tests — each of the four
// shapes in a synchronized and an unsynchronized variant.
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d tests, want 8", len(suite))
	}
	seen := map[string]bool{}
	for _, test := range suite {
		if seen[test.Name] {
			t.Errorf("duplicate test name %q", test.Name)
		}
		seen[test.Name] = true
		if test.Roles != len(test.Registers) && test.Roles != 2 {
			t.Errorf("%s: %d roles with %d registers", test.Name, test.Roles, len(test.Registers))
		}
		if !test.Sync && len(test.MustObserve) > 0 {
			t.Errorf("%s: racy variant with must-observe outcomes (protocol-dependent visibility makes them unreliable)", test.Name)
		}
		if test.Sync && len(test.MustObserve) == 0 {
			t.Errorf("%s: synchronized variant without must-observe outcomes proves nothing about schedule diversity", test.Name)
		}
		for _, must := range test.MustObserve {
			if test.Forbidden(must) {
				t.Errorf("%s: must-observe outcome %s is also forbidden", test.Name, test.Format(must))
			}
		}
	}
}

// TestDifferentialClean: the real protocols pass the differential checker —
// every corpus program, every schedule, oracle-exact results.
func TestDifferentialClean(t *testing.T) {
	report, err := RunDifferential(Params{Schedules: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range report.Failures {
		t.Errorf("%s on %s %+v schedule seed %d: %s", f.Variant, f.Shape, f.Fuzz, f.Schedule.Seed, f.Reason)
	}
	// 4 corpus configs x 2 variants x (2 canonical + 12 perturbed).
	if want := 4 * 2 * 14; report.Runs != want {
		t.Errorf("ran %d simulations, want %d", report.Runs, want)
	}
}

// TestInjectedBugCaughtAndShrunk is the self-test acceptance bar: with the
// TreadMarks diff-loss bug armed, the differential checker must fail and the
// shrinker must reduce the failure to at most 2 rounds on at most 2
// processors.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	report, err := RunDifferential(Params{
		Schedules: 8, Variants: []string{"tmk_mc_poll"}, InjectDropDiffRuns: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Failed() {
		t.Fatalf("injected diff-loss bug survived %d differential runs undetected", report.Runs)
	}
	min, spent, err := Shrink(report.Failures[0].Repro(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if min.Fuzz.Rounds > 2 {
		t.Errorf("shrunk repro still has %d rounds, want <= 2", min.Fuzz.Rounds)
	}
	if procs := min.Nodes * min.PPN; procs > 2 {
		t.Errorf("shrunk repro still uses %d processors, want <= 2", procs)
	}
	if min.Reason == "" {
		t.Error("shrunk repro lost its failure reason")
	}
	t.Logf("shrunk to %s in %d replays: %s", min, spent, min.Reason)

	// The minimized repro must reproduce deterministically...
	reason, err := Replay(min)
	if err != nil {
		t.Fatal(err)
	}
	if reason != min.Reason {
		t.Errorf("replay reason %q, recorded reason %q", reason, min.Reason)
	}
	// ...and the same run with the bug disarmed must pass: the failure is
	// the injected fault, not the harness.
	fixed := min
	fixed.InjectDropDiffRuns = 0
	if reason, err := Replay(fixed); err != nil || reason != "" {
		t.Errorf("disarmed replay: reason %q, err %v; want a passing run", reason, err)
	}
}

// TestShrinkRejectsPassingRepro: shrinking a healthy run is an error, not a
// silent no-op.
func TestShrinkRejectsPassingRepro(t *testing.T) {
	healthy := Repro{
		Kind: KindDifferential, Variant: "csm_poll", Nodes: 2, PPN: 1,
		Fuzz: fuzz.Corpus()[0],
	}
	if _, _, err := Shrink(healthy, 0); err == nil {
		t.Error("Shrink accepted a repro that does not reproduce")
	}
}

// TestReproRoundTrip: WriteFile and LoadRepro preserve every field.
func TestReproRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repro.json")
	orig := Repro{
		Kind: KindLitmus, Litmus: "MP+sync", Perm: 1, Variant: "tmk_mc_poll",
		Nodes: 2, PPN: 2,
		Schedule:           Params{}.withDefaults().schedule(4),
		InjectDropDiffRuns: 2, Reason: "because",
	}
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip changed the repro:\n%+v\nvs\n%+v", got, orig)
	}
}

// TestLitmusReplay: a litmus repro replays through the same code path as the
// sweep; on a healthy protocol a permitted outcome replays as passing.
func TestLitmusReplay(t *testing.T) {
	r := Repro{
		Kind: KindLitmus, Litmus: "SB+sync", Variant: "csm_poll",
		Nodes: 2, PPN: 1, Schedule: Params{}.withDefaults().schedule(0),
	}
	reason, err := Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Errorf("healthy litmus replay failed: %s", reason)
	}
	r.Litmus = "no-such-test"
	if _, err := Replay(r); err == nil {
		t.Error("unknown litmus name accepted")
	}
}
