package check

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Litmus is one litmus test: a tiny program whose interesting behavior is the
// final register values of its reader roles, reported as checks "r0".."rN".
// Registers hold -1 when the test's logic never read the location.
type Litmus struct {
	// Name identifies the test, e.g. "MP+sync" or "SB".
	Name string
	// Doc is a one-line description for reports.
	Doc string
	// Roles is the number of participating processors; extra processors on
	// larger shapes finish immediately.
	Roles int
	// Registers are the reported check names, in order.
	Registers []string
	// Sync reports whether the accesses are protected by acquire/release
	// synchronization (locks). Unsynchronized variants are deliberately racy:
	// release consistency permits stale values there, and the sweep asserts
	// only that no out-of-thin-air value appears.
	Sync bool
	// New builds the program. perm rotates the role-to-rank assignment
	// (rank q plays role (q+perm) mod Roles): protocol state has structural
	// rank asymmetries — lock managers and page homes live on low-numbered
	// nodes — so sweeping the rotation is what makes mirrored outcomes
	// (e.g. SB's r0=1 r1=0 vs r0=0 r1=1) reachable under both protocols.
	New func(perm int) *core.Program
	// Forbidden reports whether a register assignment violates the memory
	// model (release consistency for DRF programs; no-thin-air always).
	Forbidden func(r []int64) bool
	// MustObserve lists register assignments that a healthy sweep must each
	// observe at least once per protocol — the "permitted" side of the model:
	// a protocol that serializes everything would trivially avoid forbidden
	// outcomes, so the sweep also proves real schedule diversity.
	MustObserve [][]int64
}

// role maps a processor rank to its litmus role under a rotation, or -1 for
// processors beyond the participating roles (idle on larger shapes).
func role(rank, roles, perm int) int {
	if rank >= roles {
		return -1
	}
	return (rank + perm) % roles
}

// Format renders a register assignment, e.g. "r0=1 r1=0".
func (l Litmus) Format(r []int64) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = fmt.Sprintf("%s=%d", l.Registers[i], v)
	}
	return strings.Join(parts, " ")
}

// outcome extracts the register assignment from a run result.
func (l Litmus) outcome(checks map[string]float64) ([]int64, error) {
	r := make([]int64, len(l.Registers))
	for i, name := range l.Registers {
		v, ok := checks[name]
		if !ok {
			return nil, fmt.Errorf("%s: register %s never reported", l.Name, name)
		}
		r[i] = int64(v)
	}
	return r, nil
}

// thinAir reports whether any register holds a value no store ever wrote:
// every litmus location starts 0, is only ever stored 1, and unread registers
// hold -1.
func thinAir(r []int64) bool {
	for _, v := range r {
		if v != -1 && v != 0 && v != 1 {
			return true
		}
	}
	return false
}

// Suite returns the litmus tests: MP, SB, LB, and IRIW, each in a
// synchronized (DRF, lock-based acquire/release) and an unsynchronized
// (deliberately racy) variant.
func Suite() []Litmus {
	return []Litmus{
		mp(true), mp(false),
		sb(true), sb(false),
		lb(true), lb(false),
		iriw(true), iriw(false),
	}
}

func name(base string, sync bool) string {
	if sync {
		return base + "+sync"
	}
	return base
}

// mp is message passing: P0 writes data x then raises flag f; P1 reads the
// flag and, if raised, the data. Synchronized, observing the flag must imply
// observing the data (the paper's canonical use of release consistency).
func mp(sync bool) Litmus {
	l := Litmus{
		Name:      name("MP", sync),
		Doc:       "message passing: x=1; flag=1 || r0=flag; r1=x",
		Roles:     2,
		Registers: []string{"r0", "r1"},
		Sync:      sync,
		Forbidden: func(r []int64) bool {
			if thinAir(r) {
				return true
			}
			return sync && r[0] == 1 && r[1] != 1
		},
	}
	if sync {
		l.MustObserve = [][]int64{{0, -1}, {1, 1}}
	}
	l.New = func(perm int) *core.Program {
		lay := core.NewLayout()
		x := lay.I64Pages(1)
		f := lay.I64Pages(1)
		return &core.Program{
			Name:        l.Name,
			SharedBytes: lay.Size(),
			Locks:       1,
			Body: func(p *core.Proc) {
				switch role(p.Rank(), 2, perm) {
				case 0:
					x.Set(p, 0, 1)
					if sync {
						p.Lock(0)
					}
					f.Set(p, 0, 1)
					if sync {
						p.Unlock(0)
					}
				case 1:
					if sync {
						p.Lock(0)
					}
					r0 := f.At(p, 0)
					if sync {
						p.Unlock(0)
					}
					r1 := int64(-1)
					if !sync || r0 == 1 {
						// Synchronized readers only touch x after observing
						// the flag (keeping the program DRF); the racy
						// variant reads unconditionally.
						r1 = x.At(p, 0)
					}
					p.ReportCheck("r0", float64(r0))
					p.ReportCheck("r1", float64(r1))
				}
				p.Finish()
			},
		}
	}
	return l
}

// sb is store buffering: each processor stores its own location then loads
// the other's. Fully synchronized, both loads reading 0 is impossible.
func sb(sync bool) Litmus {
	l := Litmus{
		Name:      name("SB", sync),
		Doc:       "store buffering: x=1; r0=y || y=1; r1=x",
		Roles:     2,
		Registers: []string{"r0", "r1"},
		Sync:      sync,
		Forbidden: func(r []int64) bool {
			if thinAir(r) {
				return true
			}
			return sync && r[0] == 0 && r[1] == 0
		},
	}
	if sync {
		l.MustObserve = [][]int64{{0, 1}, {1, 0}}
	}
	l.New = func(perm int) *core.Program {
		lay := core.NewLayout()
		x := lay.I64Pages(1)
		y := lay.I64Pages(1)
		reg := []string{"r0", "r1"}
		return &core.Program{
			Name:        l.Name,
			SharedBytes: lay.Size(),
			Locks:       1,
			Body: func(p *core.Proc) {
				if me := role(p.Rank(), 2, perm); me >= 0 {
					mine, other := x, y
					if me == 1 {
						mine, other = y, x
					}
					if sync {
						p.Lock(0)
					}
					mine.Set(p, 0, 1)
					if sync {
						p.Unlock(0)
						p.Lock(0)
					}
					r := other.At(p, 0)
					if sync {
						p.Unlock(0)
					}
					p.ReportCheck(reg[me], float64(r))
				}
				p.Finish()
			},
		}
	}
	return l
}

// lb is load buffering: each processor loads the other's location then
// stores its own. Both loads reading 1 would require effects preceding
// causes; the operational simulator (no speculation) forbids it with or
// without synchronization.
func lb(sync bool) Litmus {
	l := Litmus{
		Name:      name("LB", sync),
		Doc:       "load buffering: r0=y; x=1 || r1=x; y=1",
		Roles:     2,
		Registers: []string{"r0", "r1"},
		Sync:      sync,
		Forbidden: func(r []int64) bool {
			if thinAir(r) {
				return true
			}
			// (1,1) is out-of-thin-air here regardless of synchronization:
			// each load precedes its processor's store in program order.
			return r[0] == 1 && r[1] == 1
		},
	}
	if sync {
		l.MustObserve = [][]int64{{0, 0}, {0, 1}, {1, 0}}
	}
	l.New = func(perm int) *core.Program {
		lay := core.NewLayout()
		x := lay.I64Pages(1)
		y := lay.I64Pages(1)
		reg := []string{"r0", "r1"}
		return &core.Program{
			Name:        l.Name,
			SharedBytes: lay.Size(),
			Locks:       1,
			Body: func(p *core.Proc) {
				if me := role(p.Rank(), 2, perm); me >= 0 {
					mine, other := x, y
					if me == 1 {
						mine, other = y, x
					}
					if sync {
						p.Lock(0)
					}
					r := other.At(p, 0)
					if sync {
						p.Unlock(0)
						p.Lock(0)
					}
					mine.Set(p, 0, 1)
					if sync {
						p.Unlock(0)
					}
					p.ReportCheck(reg[me], float64(r))
				}
				p.Finish()
			},
		}
	}
	return l
}

// iriw is independent reads of independent writes: two writers store to
// separate locations; two readers each load both in opposite orders.
// Synchronized, the readers must agree on the order of the writes.
func iriw(sync bool) Litmus {
	l := Litmus{
		Name:      name("IRIW", sync),
		Doc:       "independent reads of independent writes: x=1 || y=1 || r0=x; r1=y || r2=y; r3=x",
		Roles:     4,
		Registers: []string{"r0", "r1", "r2", "r3"},
		Sync:      sync,
		Forbidden: func(r []int64) bool {
			if thinAir(r) {
				return true
			}
			// Readers disagreeing on the write order: P2 saw x before y,
			// P3 saw y before x.
			return sync && r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0
		},
	}
	if sync {
		l.MustObserve = [][]int64{{0, 0, 0, 0}, {1, 1, 1, 1}}
	}
	l.New = func(perm int) *core.Program {
		lay := core.NewLayout()
		x := lay.I64Pages(1)
		y := lay.I64Pages(1)
		return &core.Program{
			Name:        l.Name,
			SharedBytes: lay.Size(),
			Locks:       1,
			Body: func(p *core.Proc) {
				read := func(a core.I64Array) int64 {
					if sync {
						p.Lock(0)
						defer p.Unlock(0)
					}
					return a.At(p, 0)
				}
				write := func(a core.I64Array) {
					if sync {
						p.Lock(0)
						defer p.Unlock(0)
					}
					a.Set(p, 0, 1)
				}
				switch role(p.Rank(), 4, perm) {
				case 0:
					write(x)
				case 1:
					write(y)
				case 2:
					p.ReportCheck("r0", float64(read(x)))
					p.ReportCheck("r1", float64(read(y)))
				case 3:
					p.ReportCheck("r2", float64(read(y)))
					p.ReportCheck("r3", float64(read(x)))
				}
				p.Finish()
			},
		}
	}
	return l
}
