// Package check is the schedule-space exploration harness behind cmd/dsmcheck.
// It drives the simulator's perturbation layer (sim.Schedule) to run the same
// program under many distinct — but individually bit-reproducible — event
// orderings, and layers three checkers on top:
//
//   - a memory-model litmus suite (litmus.go, sweep.go): classic two- and
//     four-processor shapes (MP, SB, LB, IRIW), each with and without
//     acquire/release synchronization, swept across schedules, protocols, and
//     cluster shapes; forbidden outcomes must never appear and key permitted
//     outcomes must each appear at least once;
//   - a differential checker (differential.go): the fuzz corpus of
//     data-race-free generated programs run under perturbed schedules, with
//     every reported check compared against the analytic
//     sequential-consistency oracle and against the canonical-schedule run;
//   - a shrinker (shrink.go): a failing (program, schedule) pair is minimized
//     by bisecting program parameters and cluster shape while re-searching a
//     small neighborhood of schedule seeds, producing a JSON repro that
//     cmd/dsmcheck can replay.
package check

import (
	"fmt"
	"runtime"

	"repro/internal/sim"
)

// Shape is a cluster configuration: Nodes x PPN compute processors.
type Shape struct {
	Nodes, PPN int
}

// Procs is the total compute processor count.
func (s Shape) Procs() int { return s.Nodes * s.PPN }

func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Nodes, s.PPN) }

// Params configure a sweep.
type Params struct {
	// Schedules is the number of perturbed schedules per (test, variant).
	Schedules int
	// BaseSeed is the first schedule seed; schedule i uses BaseSeed+i.
	// Zero means 1 (a schedule seed of zero is the canonical order).
	BaseSeed uint64
	// Jitter is the per-event cost jitter fraction (default 0.75; must stay
	// within every protocol's declared tolerance, currently 1.0).
	Jitter float64
	// Stagger is the maximum seed-derived start offset per processor
	// (default 3ms). Litmus outcomes need it: without a stagger the fixed
	// startup costs make the same role win every race on every seed.
	Stagger sim.Time
	// Variants are the protocol variants to sweep (default both polling
	// variants: csm_poll and tmk_mc_poll).
	Variants []string
	// Jobs is the worker-pool width (default GOMAXPROCS).
	Jobs int
	// InjectDropDiffRuns arms the TreadMarks injected diff-loss bug
	// (treadmarks.Config.TestDropDiffRuns) in every TreadMarks run of the
	// differential checker. Used by the self-test to prove the harness
	// detects and shrinks a real protocol fault.
	InjectDropDiffRuns int
}

// DefaultVariants are the two polling protocol variants — the paper's best
// configurations of Cashmere and TreadMarks, and the fastest to simulate.
func DefaultVariants() []string { return []string{"csm_poll", "tmk_mc_poll"} }

func (p Params) withDefaults() Params {
	if p.Schedules <= 0 {
		p.Schedules = 200
	}
	if p.BaseSeed == 0 {
		p.BaseSeed = 1
	}
	if p.Jitter == 0 {
		p.Jitter = 0.75
	}
	if p.Stagger == 0 {
		p.Stagger = 3 * sim.Millisecond
	}
	if len(p.Variants) == 0 {
		p.Variants = DefaultVariants()
	}
	if p.Jobs <= 0 {
		p.Jobs = runtime.GOMAXPROCS(0)
	}
	return p
}

// schedule returns the i-th perturbed schedule of the sweep.
func (p Params) schedule(i int) sim.Schedule {
	return sim.Schedule{
		Seed:       p.BaseSeed + uint64(i),
		CostJitter: p.Jitter,
		FlipTies:   true,
		Stagger:    p.Stagger,
	}
}
