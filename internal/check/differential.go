package check

import (
	"fmt"
	"sort"

	"repro/internal/apps/fuzz"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/treadmarks"
	"repro/internal/variants"
)

// diffShapes are the cluster shapes the differential checker sweeps.
func diffShapes() []Shape { return []Shape{{2, 1}, {2, 2}} }

// DiffFailure is one differential run that broke its oracle.
type DiffFailure struct {
	Fuzz     fuzz.Config
	Variant  string
	Shape    Shape
	Schedule sim.Schedule
	Reason   string
}

// Repro converts the failure into a replayable, shrinkable specification.
func (f DiffFailure) Repro(inject int) Repro {
	return Repro{
		Kind: KindDifferential, Fuzz: f.Fuzz, Variant: f.Variant,
		Nodes: f.Shape.Nodes, PPN: f.Shape.PPN, Schedule: f.Schedule,
		InjectDropDiffRuns: inject, Reason: f.Reason,
	}
}

// DiffReport is the differential sweep outcome.
type DiffReport struct {
	Runs     int
	Failures []DiffFailure
}

// Failed reports whether any run broke its oracle.
func (r *DiffReport) Failed() bool { return len(r.Failures) > 0 }

// diffJob is one perturbed differential run.
type diffJob struct {
	cfg      fuzz.Config
	variant  string
	shape    Shape
	schedIdx int // -1 = canonical (unperturbed) run
}

// RunDifferential runs every fuzz corpus program under perturbed schedules on
// each variant and shape, checking that the reported results match the
// analytic sequential-consistency oracle exactly. The generated programs are
// data-race-free, so under release consistency no legal schedule may change
// any answer; the programs' in-body sample checks additionally panic — which
// core.Run surfaces as an error — the moment any single read is stale.
func RunDifferential(p Params) (*DiffReport, error) {
	p = p.withDefaults()
	var jobs []diffJob
	for _, cfg := range fuzz.Corpus() {
		for _, variant := range p.Variants {
			// One canonical run per shape first: the oracle must hold there
			// before perturbed divergence means anything.
			for _, shape := range diffShapes() {
				jobs = append(jobs, diffJob{cfg, variant, shape, -1})
			}
			shapes := diffShapes()
			for i := 0; i < p.Schedules; i++ {
				jobs = append(jobs, diffJob{cfg, variant, shapes[i%len(shapes)], i})
			}
		}
	}
	failures := make([]string, len(jobs))
	runPool(p.Jobs, len(jobs), func(j int) {
		failures[j] = runDiffJob(p, jobs[j])
	})
	report := &DiffReport{Runs: len(jobs)}
	for j, reason := range failures {
		if reason == "" {
			continue
		}
		var sched sim.Schedule
		if jobs[j].schedIdx >= 0 {
			sched = p.schedule(jobs[j].schedIdx)
		}
		report.Failures = append(report.Failures, DiffFailure{
			Fuzz: jobs[j].cfg, Variant: jobs[j].variant, Shape: jobs[j].shape,
			Schedule: sched, Reason: reason,
		})
	}
	return report, nil
}

// runDiffJob executes one differential run; it returns "" on success and the
// failure reason otherwise.
func runDiffJob(p Params, job diffJob) string {
	var sched sim.Schedule
	if job.schedIdx >= 0 {
		sched = p.schedule(job.schedIdx)
	}
	return diffReason(job.cfg, job.variant, job.shape, sched, p.InjectDropDiffRuns)
}

// diffReason runs one fuzz configuration and compares it against the oracle.
// Shared by the sweep and by Replay so a repro reproduces the exact check.
func diffReason(c fuzz.Config, variant string, shape Shape, sched sim.Schedule, inject int) string {
	opts := variants.Options{Schedule: sched}
	if inject > 0 && !variants.IsCashmere(variant) && variant != variants.Sequential {
		opts.TreadMarks = treadmarks.Config{TestDropDiffRuns: inject}
	}
	cfg, err := variants.Config(variant, shape.Nodes, shape.PPN, opts)
	if err != nil {
		return fmt.Sprintf("config: %v", err)
	}
	res, err := core.Run(cfg, fuzz.New(c))
	if err != nil {
		// In-body oracle checks panic on the first stale read; core.Run
		// returns that panic as an error.
		return fmt.Sprintf("run failed: %v", err)
	}
	want := fuzz.AllExpectedChecks(c, shape.Procs())
	if len(res.Checks) != len(want) {
		return fmt.Sprintf("reported %d checks, oracle has %d", len(res.Checks), len(want))
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got, ok := res.Checks[name]
		if !ok {
			return fmt.Sprintf("check %q never reported", name)
		}
		if got != want[name] {
			return fmt.Sprintf("check %q = %v, oracle says %v", name, got, want[name])
		}
	}
	return ""
}
