package check

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/variants"
)

// litmusShapes returns the cluster shapes a test sweeps: cross-node placement
// and (for the protocols' SMP paths) co-located placement of the roles.
func litmusShapes(roles int) []Shape {
	if roles <= 2 {
		return []Shape{{2, 1}, {2, 2}}
	}
	return []Shape{{4, 1}, {2, 2}}
}

// OutcomeCount is one observed register assignment and how often it appeared.
type OutcomeCount struct {
	Outcome   string
	Count     int
	Forbidden bool
}

// LitmusRow aggregates one (test, variant) cell of the sweep.
type LitmusRow struct {
	Test    string
	Doc     string
	Sync    bool
	Variant string
	Runs    int
	// Outcomes is sorted by outcome string for deterministic reports.
	Outcomes []OutcomeCount
	// Violations describe forbidden outcomes that appeared (empty = healthy).
	Violations []string
	// Missing lists must-observe outcomes that never appeared.
	Missing []string
}

// Failed reports whether the row violates the memory model or lacks coverage.
func (r LitmusRow) Failed() bool { return len(r.Violations) > 0 || len(r.Missing) > 0 }

// LitmusReport is the full litmus sweep outcome.
type LitmusReport struct {
	Rows []LitmusRow
	Runs int
	// FirstViolation replays the first forbidden outcome (nil when healthy).
	FirstViolation *Repro `json:",omitempty"`
}

// Failed reports whether any row failed.
func (r *LitmusReport) Failed() bool {
	for _, row := range r.Rows {
		if row.Failed() {
			return true
		}
	}
	return false
}

// litmusJob is one simulation of the sweep.
type litmusJob struct {
	test     Litmus
	variant  string
	shape    Shape
	schedIdx int
	perm     int
}

// RunLitmus sweeps every litmus test across the configured variants, shapes,
// and perturbed schedules. Each individual run is deterministic given its
// (test, variant, shape, schedule seed); the report aggregation is
// deterministic too, independent of worker interleaving.
func RunLitmus(p Params) (*LitmusReport, error) {
	p = p.withDefaults()
	var jobs []litmusJob
	for _, test := range Suite() {
		for _, variant := range p.Variants {
			shapes := litmusShapes(test.Roles)
			for i := 0; i < p.Schedules; i++ {
				// Rotate the shape fastest and the role permutation slowest
				// so the sweep covers every (shape, rotation) combination.
				perm := (i / len(shapes)) % test.Roles
				jobs = append(jobs, litmusJob{test, variant, shapes[i%len(shapes)], i, perm})
			}
		}
	}
	regs := make([][]int64, len(jobs))
	errs := make([]error, len(jobs))
	runPool(p.Jobs, len(jobs), func(j int) {
		regs[j], errs[j] = runLitmusJob(p, jobs[j])
	})
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s seed %d: %w",
				jobs[j].test.Name, jobs[j].variant, jobs[j].shape, p.schedule(jobs[j].schedIdx).Seed, err)
		}
	}

	// Aggregate in job order (deterministic), then sort outcome tables.
	type cell struct {
		test     Litmus
		row      LitmusRow
		outcomes map[string]int
		forb     map[string]bool
	}
	var order []string
	var firstViolation *Repro
	cells := map[string]*cell{}
	for j, job := range jobs {
		key := job.test.Name + "/" + job.variant
		c, ok := cells[key]
		if !ok {
			c = &cell{
				test: job.test,
				row: LitmusRow{
					Test: job.test.Name, Doc: job.test.Doc,
					Sync: job.test.Sync, Variant: job.variant,
				},
				outcomes: map[string]int{},
				forb:     map[string]bool{},
			}
			cells[key] = c
			order = append(order, key)
		}
		out := job.test.Format(regs[j])
		c.row.Runs++
		c.outcomes[out]++
		if job.test.Forbidden(regs[j]) {
			c.forb[out] = true
			if len(c.row.Violations) < 8 {
				c.row.Violations = append(c.row.Violations,
					fmt.Sprintf("forbidden outcome %s (shape %s, schedule seed %d)",
						out, job.shape, p.schedule(job.schedIdx).Seed))
			}
			if firstViolation == nil {
				firstViolation = &Repro{
					Kind: KindLitmus, Litmus: job.test.Name, Perm: job.perm,
					Variant: job.variant, Nodes: job.shape.Nodes, PPN: job.shape.PPN,
					Schedule: p.schedule(job.schedIdx),
					Reason:   fmt.Sprintf("forbidden outcome %s", out),
				}
			}
		}
	}
	report := &LitmusReport{Runs: len(jobs), FirstViolation: firstViolation}
	for _, key := range order {
		c := cells[key]
		names := make([]string, 0, len(c.outcomes))
		for out := range c.outcomes {
			names = append(names, out)
		}
		sort.Strings(names)
		for _, out := range names {
			c.row.Outcomes = append(c.row.Outcomes, OutcomeCount{
				Outcome: out, Count: c.outcomes[out], Forbidden: c.forb[out],
			})
		}
		for _, must := range c.test.MustObserve {
			if c.outcomes[c.test.Format(must)] == 0 {
				c.row.Missing = append(c.row.Missing,
					fmt.Sprintf("required outcome %s never observed in %d schedules", c.test.Format(must), c.row.Runs))
			}
		}
		report.Rows = append(report.Rows, c.row)
	}
	return report, nil
}

// runLitmusJob executes one litmus simulation and extracts its registers.
func runLitmusJob(p Params, job litmusJob) ([]int64, error) {
	cfg, err := variants.Config(job.variant, job.shape.Nodes, job.shape.PPN, variants.Options{
		Schedule: p.schedule(job.schedIdx),
	})
	if err != nil {
		return nil, err
	}
	res, err := core.Run(cfg, job.test.New(job.perm))
	if err != nil {
		return nil, err
	}
	return job.test.outcome(res.Checks)
}

// runPool runs fn(0..n-1) on a fixed-width worker pool.
func runPool(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
