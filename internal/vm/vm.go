// Package vm provides the simulated virtual-memory substrate the DSM
// protocols run on: per-processor page tables with protection bits and local
// page frames.
//
// On the paper's platform this role is played by Digital Unix's VM hardware:
// protocols mprotect pages and catch SIGSEGV to run coherence actions. The Go
// runtime owns both mprotect and SIGSEGV, so here every shared access goes
// through an explicit protection check instead (see internal/core's
// accessors); a disallowed access synchronously invokes the protocol's fault
// handler, exactly as a page fault would. Protection-change and
// fault-delivery costs are charged by the protocol from the cost model, so
// the timing behaviour matches the paper's measured constants (§4.1).
package vm

import "fmt"

// PageShift is log2 of the page size. The paper's platform uses 8 KB pages
// (§4: "The underlying virtual memory page size is 8 Kbytes").
const PageShift = 13

// PageSize is the coherence granularity in bytes.
const PageSize = 1 << PageShift

// PageOf returns the page number containing byte address addr.
func PageOf(addr uint64) int { return int(addr >> PageShift) }

// PageBase returns the first byte address of page p.
func PageBase(page int) uint64 { return uint64(page) << PageShift }

// Offset returns addr's offset within its page.
func Offset(addr uint64) int { return int(addr & (PageSize - 1)) }

// Prot is a page protection level.
type Prot uint8

const (
	// ProtNone: any access faults (page invalid/unmapped).
	ProtNone Prot = iota
	// ProtRead: reads succeed, writes fault.
	ProtRead
	// ProtReadWrite: all accesses succeed.
	ProtReadWrite
)

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "none"
	case ProtRead:
		return "read"
	case ProtReadWrite:
		return "read-write"
	}
	return "invalid"
}

// CanRead reports whether a read is allowed.
func (p Prot) CanRead() bool { return p >= ProtRead }

// CanWrite reports whether a write is allowed.
func (p Prot) CanWrite() bool { return p == ProtReadWrite }

// Space is one processor's view of the shared address space: a page table
// with protections and local frames holding that processor's copy of each
// page's data.
type Space struct {
	prot   []Prot
	frames [][]byte
	// epoch counts mapping mutations (protection changes, frame drops and
	// allocations). Cached (page, prot, frame) translations — internal/core
	// keeps a small per-processor cache to skip the table walk on sequential
	// same-page accesses — are valid only while the epoch they were filled
	// at is still current.
	epoch uint64
}

// NewSpace creates a space covering numPages pages, all ProtNone and
// frameless.
func NewSpace(numPages int) *Space {
	if numPages < 0 {
		panic(fmt.Sprintf("vm: negative page count %d", numPages))
	}
	return &Space{
		prot:   make([]Prot, numPages),
		frames: make([][]byte, numPages),
	}
}

// NumPages returns the number of pages in the space.
func (s *Space) NumPages() int { return len(s.prot) }

// Prot returns the protection of page p.
func (s *Space) Prot(page int) Prot { return s.prot[page] }

// Epoch returns the mapping-mutation counter. Any SetProt, DropFrame, or
// frame allocation bumps it, invalidating all cached translations for this
// space.
func (s *Space) Epoch() uint64 { return s.epoch }

// SetProt changes the protection of page p. Cost accounting (the mprotect
// cost) is the caller's responsibility.
func (s *Space) SetProt(page int, prot Prot) {
	s.prot[page] = prot
	s.epoch++
}

// Frame returns page p's local frame, or nil if the page has never been
// mapped on this processor.
func (s *Space) Frame(page int) []byte { return s.frames[page] }

// EnsureFrame returns page p's local frame, allocating a zeroed one if
// needed.
func (s *Space) EnsureFrame(page int) []byte {
	if s.frames[page] == nil {
		s.frames[page] = make([]byte, PageSize)
		s.epoch++
	}
	return s.frames[page]
}

// DropFrame discards page p's local frame (full unmap, e.g. when TreadMarks
// invalidates a page whose contents will be refetched).
func (s *Space) DropFrame(page int) {
	s.frames[page] = nil
	s.epoch++
}

// Superpages: Digital Unix limits the number of distinct Memory Channel
// regions, so Cashmere groups pages into fixed-size superpages that must
// share a home node (§3.3). SuperpageOf maps a page to its superpage given
// the grouping factor.
func SuperpageOf(page, pagesPerSuper int) int {
	if pagesPerSuper <= 0 {
		panic(fmt.Sprintf("vm: pagesPerSuper %d", pagesPerSuper))
	}
	return page / pagesPerSuper
}
