package vm

import (
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	cases := []struct {
		addr uint64
		page int
		off  int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{8191, 0, 8191},
		{8192, 1, 0},
		{8192*5 + 100, 5, 100},
	}
	for _, c := range cases {
		if got := PageOf(c.addr); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.addr, got, c.page)
		}
		if got := Offset(c.addr); got != c.off {
			t.Errorf("Offset(%d) = %d, want %d", c.addr, got, c.off)
		}
	}
	if PageBase(3) != 3*8192 {
		t.Errorf("PageBase(3) = %d", PageBase(3))
	}
}

// Property: PageBase(PageOf(a)) + Offset(a) == a for all addresses.
func TestAddressRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		a &= (1 << 40) - 1 // keep page index in int range
		return PageBase(PageOf(a))+uint64(Offset(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProtSemantics(t *testing.T) {
	if ProtNone.CanRead() || ProtNone.CanWrite() {
		t.Error("ProtNone allows access")
	}
	if !ProtRead.CanRead() || ProtRead.CanWrite() {
		t.Error("ProtRead wrong")
	}
	if !ProtReadWrite.CanRead() || !ProtReadWrite.CanWrite() {
		t.Error("ProtReadWrite wrong")
	}
	for p, want := range map[Prot]string{ProtNone: "none", ProtRead: "read", ProtReadWrite: "read-write", Prot(9): "invalid"} {
		if got := p.String(); got != want {
			t.Errorf("Prot(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestSpaceLifecycle(t *testing.T) {
	s := NewSpace(4)
	if s.NumPages() != 4 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
	for i := 0; i < 4; i++ {
		if s.Prot(i) != ProtNone {
			t.Errorf("page %d initial prot = %v", i, s.Prot(i))
		}
		if s.Frame(i) != nil {
			t.Errorf("page %d has initial frame", i)
		}
	}
	s.SetProt(2, ProtReadWrite)
	if s.Prot(2) != ProtReadWrite {
		t.Error("SetProt lost")
	}
	f := s.EnsureFrame(2)
	if len(f) != PageSize {
		t.Fatalf("frame size %d", len(f))
	}
	f[0] = 0xAB
	if g := s.EnsureFrame(2); &g[0] != &f[0] {
		t.Error("EnsureFrame reallocated an existing frame")
	}
	s.DropFrame(2)
	if s.Frame(2) != nil {
		t.Error("DropFrame kept frame")
	}
	if g := s.EnsureFrame(2); g[0] != 0 {
		t.Error("new frame not zeroed")
	}
}

func TestSuperpageOf(t *testing.T) {
	if SuperpageOf(0, 4) != 0 || SuperpageOf(3, 4) != 0 || SuperpageOf(4, 4) != 1 || SuperpageOf(11, 4) != 2 {
		t.Error("SuperpageOf wrong grouping")
	}
	defer func() {
		if recover() == nil {
			t.Error("SuperpageOf(_, 0) did not panic")
		}
	}()
	SuperpageOf(1, 0)
}

func TestNewSpaceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpace(-1) did not panic")
		}
	}()
	NewSpace(-1)
}

// Property: protection levels are totally ordered none < read < read-write
// in terms of allowed operations.
func TestProtMonotonicity(t *testing.T) {
	f := func(raw uint8) bool {
		p := Prot(raw % 3)
		if p.CanWrite() && !p.CanRead() {
			return false // write permission implies read permission
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEpochTracksMappingMutations checks that every mapping mutation — and
// only mapping mutations — bumps the epoch that validates cached
// translations.
func TestEpochTracksMappingMutations(t *testing.T) {
	s := NewSpace(4)
	e0 := s.Epoch()

	s.SetProt(2, ProtRead)
	if s.Epoch() != e0+1 {
		t.Fatalf("SetProt: epoch %d, want %d", s.Epoch(), e0+1)
	}
	s.EnsureFrame(2)
	if s.Epoch() != e0+2 {
		t.Fatalf("EnsureFrame alloc: epoch %d, want %d", s.Epoch(), e0+2)
	}
	// Re-ensuring an existing frame changes no mapping and must not
	// invalidate translations.
	s.EnsureFrame(2)
	if s.Epoch() != e0+2 {
		t.Fatalf("EnsureFrame existing: epoch %d, want %d", s.Epoch(), e0+2)
	}
	// Reads of the table never bump.
	_ = s.Prot(2)
	_ = s.Frame(2)
	if s.Epoch() != e0+2 {
		t.Fatalf("read accessors bumped epoch to %d", s.Epoch())
	}
	s.DropFrame(2)
	if s.Epoch() != e0+3 {
		t.Fatalf("DropFrame: epoch %d, want %d", s.Epoch(), e0+3)
	}
	// Writing through a frame mutates data, not the mapping: frame identity
	// is unchanged, so cached translations stay valid.
	fr := s.EnsureFrame(1)
	e1 := s.Epoch()
	fr[0] = 0xff
	if s.Epoch() != e1 {
		t.Fatalf("frame data write bumped epoch to %d", s.Epoch())
	}
}
