// Quickstart: a shared counter and a bulk-synchronous sum on a simulated
// 2-node, 4-processor cluster, run under both DSM protocols.
//
//	go run ./examples/quickstart
//
// This demonstrates the whole public surface in ~60 lines: build a Layout,
// define a Program with Init and Body, pick a protocol variant, Run, and
// inspect the Result.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/variants"
)

func main() {
	l := core.NewLayout()
	counter := l.I64Pages(1)   // lock-protected shared counter
	values := l.F64Pages(4096) // barrier-synchronized array

	prog := &core.Program{
		Name:        "quickstart",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    2,
		Init: func(w *core.ImageWriter) {
			for i := 0; i < values.N; i++ {
				values.Init(w, i, float64(i))
			}
		},
		Body: func(p *core.Proc) {
			// Every processor doubles its contiguous band of the array.
			n := values.N
			chunk := n / p.NumProcs()
			lo := p.Rank() * chunk
			for i := lo; i < lo+chunk; i++ {
				p.PollPoint()
				values.Set(p, i, 2*values.At(p, i))
			}
			p.Barrier(0)
			// ... and adds its band sum to a lock-protected counter.
			sum := 0.0
			for i := lo; i < lo+chunk; i++ {
				sum += values.At(p, i)
			}
			p.Lock(0)
			counter.Set(p, 0, counter.At(p, 0)+int64(sum))
			p.Unlock(0)
			p.Barrier(1)
			p.Finish()
			if p.Rank() == 0 {
				p.ReportCheck("total", float64(counter.At(p, 0)))
			}
		},
	}

	for _, variant := range []string{"csm_poll", "tmk_mc_poll"} {
		cfg, err := variants.Config(variant, 2, 2, variants.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s total=%v  time=%.3fms  faults=%d/%d  messages=%d\n",
			variant, res.Checks["total"], float64(res.Time)/1e6,
			res.Total.ReadFaults, res.Total.WriteFaults, res.Total.Messages)
	}
}
