// Sharing: a microscope on the three sharing patterns that differentiate
// Cashmere and TreadMarks in the paper — producer-consumer, migratory, and
// false sharing (multiple writers on one page). For each pattern it prints
// both protocols' fault/transfer/message behavior and timing side by side,
// the mechanics behind §4.3's application-level observations.
//
//	go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/variants"
)

func producerConsumer() *core.Program {
	l := core.NewLayout()
	arr := l.F64Pages(8192) // 8 pages
	return &core.Program{
		Name:        "producer-consumer",
		SharedBytes: l.Size(),
		Barriers:    2,
		Body: func(p *core.Proc) {
			for round := 0; round < 6; round++ {
				if p.Rank() == 0 {
					for i := 0; i < arr.N; i++ {
						arr.Set(p, i, float64(round*arr.N+i))
					}
				}
				p.Barrier(0)
				sum := 0.0
				for i := 0; i < arr.N; i++ {
					sum += arr.At(p, i)
				}
				p.Barrier(1)
			}
			p.Finish()
		},
	}
}

func migratory() *core.Program {
	l := core.NewLayout()
	obj := l.F64Pages(512) // one page bouncing between owners
	return &core.Program{
		Name:        "migratory",
		SharedBytes: l.Size(),
		Locks:       1,
		Barriers:    1,
		Body: func(p *core.Proc) {
			for round := 0; round < 12; round++ {
				p.Lock(0)
				for i := 0; i < obj.N; i += 8 {
					obj.Set(p, i, obj.At(p, i)+1)
				}
				p.Unlock(0)
				p.Compute(50 * sim.Microsecond)
			}
			p.Barrier(0)
			p.Finish()
		},
	}
}

func falseSharing() *core.Program {
	l := core.NewLayout()
	arr := l.F64Pages(1024) // exactly one page, written by all processors
	return &core.Program{
		Name:        "false-sharing",
		SharedBytes: l.Size(),
		Barriers:    1,
		Body: func(p *core.Proc) {
			n := arr.N
			chunk := n / p.NumProcs()
			lo := p.Rank() * chunk
			for round := 0; round < 8; round++ {
				for i := lo; i < lo+chunk; i++ {
					arr.Set(p, i, float64(round))
				}
				p.Barrier(0)
				// Everyone reads the whole page: multi-writer merge.
				s := 0.0
				for i := 0; i < n; i++ {
					s += arr.At(p, i)
				}
				p.Barrier(0)
			}
			p.Finish()
		},
	}
}

func main() {
	patterns := []func() *core.Program{producerConsumer, migratory, falseSharing}
	fmt.Printf("%-18s %-12s %10s %9s %9s %8s %8s %10s\n",
		"pattern", "variant", "time (ms)", "rfaults", "wfaults", "pages", "msgs", "data (KB)")
	for _, mk := range patterns {
		for _, v := range []string{"csm_poll", "tmk_mc_poll"} {
			cfg, err := variants.Config(v, 4, 1, variants.Options{})
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Run(cfg, mk())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %-12s %10.3f %9d %9d %8d %8d %10.1f\n",
				res.Program, v, float64(res.Time)/1e6,
				res.Total.ReadFaults, res.Total.WriteFaults,
				res.Total.PageTransfers+res.Total.PageFetches,
				res.Total.Messages, float64(res.Total.DataBytes)/1024)
		}
	}
	fmt.Println("\nExpected shapes (paper §4.3): Cashmere merges concurrent writes at the home")
	fmt.Println("node (fewer messages under false sharing); TreadMarks moves only diffs")
	fmt.Println("(less data when little of a page changes).")
}
