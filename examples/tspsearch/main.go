// Tspsearch: branch-and-bound TSP over DSM — the paper's lock-intensive,
// nondeterministic workload. Shows how execution time varies across
// protocols while the computed optimum is identical, and how the queue and
// best-tour locks drive protocol activity.
//
//	go run ./examples/tspsearch -cities 11 -procs 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/tsp"
	"repro/internal/core"
	"repro/internal/variants"
)

func main() {
	var (
		cities = flag.Int("cities", 11, "number of cities (4-20)")
		procs  = flag.Int("procs", 8, "compute processors")
		seed   = flag.Int64("seed", 42, "instance seed")
	)
	flag.Parse()

	cfg := tsp.Default()
	cfg.Cities = *cities
	cfg.Seed = *seed
	mk := func() *core.Program { return tsp.New(cfg) }

	seqCfg, err := variants.Config(variants.Sequential, 1, 1, variants.Options{})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := core.Run(seqCfg, mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSP with %d cities (seed %d): optimal tour length %.6f\n\n",
		*cities, *seed, seq.Checks["tourlen"])
	fmt.Printf("%-14s %12s %9s %9s %12s\n", "variant", "time (ms)", "speedup", "locks", "lock rate/s")

	layout, err := variants.LayoutFor(*procs)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants.Names {
		if !variants.Feasible(v, layout) {
			continue
		}
		c, err := variants.Config(v, layout.Nodes, layout.PerNode, variants.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(c, mk())
		if err != nil {
			log.Fatal(err)
		}
		if res.Checks["tourlen"] != seq.Checks["tourlen"] {
			log.Fatalf("%s: wrong optimum %v, want %v", v, res.Checks["tourlen"], seq.Checks["tourlen"])
		}
		secs := float64(res.Time) / 1e9
		fmt.Printf("%-14s %12.3f %9.2f %9d %12.0f\n",
			v, float64(res.Time)/1e6, float64(seq.Time)/float64(res.Time),
			res.Total.LockAcquires, float64(res.Total.LockAcquires)/secs)
	}
}
