// Sorheat: the paper's motivating scientific workload, red-black SOR heat
// diffusion, compared across all six protocol variants at a chosen scale.
//
//	go run ./examples/sorheat -procs 8 -rows 256 -cols 512 -iters 6
//
// Prints a per-variant summary: execution time, speedup over the unlinked
// sequential run, and the protocol activity behind it — the Figure 5 / Table
// 3 story for one application at one processor count.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps/sor"
	"repro/internal/core"
	"repro/internal/variants"
)

func main() {
	var (
		procs = flag.Int("procs", 8, "compute processors (paper layouts: 1,2,4,8,12,16,24,32)")
		rows  = flag.Int("rows", 256, "grid rows")
		cols  = flag.Int("cols", 512, "grid cols (even)")
		iters = flag.Int("iters", 6, "red+black iterations")
	)
	flag.Parse()

	cfg := sor.Config{Rows: *rows, Cols: *cols, Iters: *iters}
	mk := func() *core.Program { return sor.New(cfg) }

	seqCfg, err := variants.Config(variants.Sequential, 1, 1, variants.Options{})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := core.Run(seqCfg, mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOR %dx%d, %d iters; sequential time %.3f ms, checksum %.6f\n\n",
		*rows, *cols, *iters, float64(seq.Time)/1e6, seq.Checks["checksum"])
	fmt.Printf("%-14s %12s %9s %9s %9s %10s %10s\n",
		"variant", "time (ms)", "speedup", "rfaults", "wfaults", "pages", "msgs")

	layout, err := variants.LayoutFor(*procs)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants.Names {
		if !variants.Feasible(v, layout) {
			fmt.Printf("%-14s %12s\n", v, "n/a at this layout")
			continue
		}
		c, err := variants.Config(v, layout.Nodes, layout.PerNode, variants.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(c, mk())
		if err != nil {
			log.Fatal(err)
		}
		if res.Checks["checksum"] != seq.Checks["checksum"] {
			log.Fatalf("%s: checksum mismatch: %v != %v", v, res.Checks["checksum"], seq.Checks["checksum"])
		}
		fmt.Printf("%-14s %12.3f %9.2f %9d %9d %10d %10d\n",
			v, float64(res.Time)/1e6, float64(seq.Time)/float64(res.Time),
			res.Total.ReadFaults, res.Total.WriteFaults,
			res.Total.PageTransfers+res.Total.PageFetches, res.Total.Messages)
	}
}
