package repro

import (
	"os"
	"testing"

	"repro/internal/apps"
	"repro/internal/runner"
	"repro/internal/variants"
)

// TestCommittedResultsFile consumes the machine-readable results emitted by
// `dsmbench -json` (committed under results/): the schema must parse, every
// feasible spec must carry a full result, and — because simulations are
// bit-deterministic — re-running a spec from the file must reproduce its
// recorded virtual time exactly.
func TestCommittedResultsFile(t *testing.T) {
	f, err := os.Open("results/dsmbench_small_subset.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := runner.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != runner.SchemaVersion {
		t.Fatalf("schema %q, want %q", doc.Schema, runner.SchemaVersion)
	}
	if len(doc.Results) == 0 {
		t.Fatal("no results in committed file")
	}
	var seqTime int64
	for _, r := range doc.Results {
		if r.Key == "" {
			t.Fatal("result with empty key")
		}
		if r.Infeasible || r.Error != "" {
			continue
		}
		if r.Result == nil || r.Result.Time <= 0 {
			t.Fatalf("feasible spec %s lacks a usable result", r.Key)
		}
		if r.Spec.App == "SOR" && r.Spec.Variant == variants.Sequential && r.Spec.Size == apps.SizeSmall {
			seqTime = int64(r.Result.Time)
		}
	}
	if seqTime == 0 {
		t.Fatal("committed file lacks the SOR sequential baseline")
	}

	// Reproduce the baseline from the file's spec and compare times: the
	// committed trajectory stays valid as long as the model is unchanged.
	plan := runner.NewPlan()
	spec := runner.RunSpec{App: "SOR", Variant: variants.Sequential, Size: apps.SizeSmall}
	plan.Add(spec)
	rs, err := runner.Execute(plan, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Time) != seqTime {
		t.Fatalf("SOR sequential time %d differs from committed %d — regenerate results/dsmbench_small_subset.json (model changed?)", res.Time, seqTime)
	}
}
