# Splices the harness output files into EXPERIMENTS.md's placeholders.
# Usage: python3 results/finalize.py
import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
exp = (root / "EXPERIMENTS.md").read_text()


def block(*names):
    out = []
    for n in names:
        out.append((root / "results" / n).read_text().strip())
    return "```\n" + "\n\n".join(out) + "\n```"


exp = exp.replace("PLACEHOLDER_TABLE1", block("table1.txt"))
exp = exp.replace("PLACEHOLDER_TABLE2", block("table2.txt"))
exp = exp.replace(
    "PLACEHOLDER_FIG5",
    block(
        "fig5_SOR.txt",
        "fig5_LU.txt",
        "fig5_Water.txt",
        "fig5_TSP.txt",
        "fig5_Gauss.txt",
        "fig5_Ilink.txt",
        "fig5_Em3d.txt",
        "fig5_Barnes.txt",
    ),
)
exp = exp.replace("PLACEHOLDER_FIG6", block("fig6.txt"))
exp = exp.replace("PLACEHOLDER_TABLE3", block("table3.txt"))
exp = exp.replace("PLACEHOLDER_ABLATIONS", block("ablations.txt"))
(root / "EXPERIMENTS.md").write_text(exp)
print("EXPERIMENTS.md finalized")
